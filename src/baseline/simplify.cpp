#include "baseline/simplify.hpp"

#include <functional>
#include <set>

namespace xr::baseline {

std::string_view to_string(Quantity q) {
    switch (q) {
        case Quantity::kOne: return "1";
        case Quantity::kOptional: return "?";
        case Quantity::kMany: return "*";
    }
    return "?";
}

Quantity merge_mentions(Quantity, Quantity) {
    // Two independent mentions can co-occur, so the combined bound exceeds
    // one: VLDB'99 folds this to many.
    return Quantity::kMany;
}

Quantity weaken(Quantity q, dtd::Occurrence occ, bool in_choice) {
    if (dtd::is_repeatable(occ)) return Quantity::kMany;
    if (q == Quantity::kMany) return Quantity::kMany;
    if (dtd::is_optional(occ) || in_choice || q == Quantity::kOptional)
        return Quantity::kOptional;
    return Quantity::kOne;
}

Quantity SimplifiedElement::quantity_of(std::string_view child) const {
    for (const auto& [name, q] : children)
        if (name == child) return q;
    return Quantity::kOptional;
}

const SimplifiedElement* SimplifiedDtd::element(std::string_view name) const {
    auto it = index.find(name);
    return it == index.end() ? nullptr : &elements[it->second];
}

std::map<std::string, std::vector<std::pair<std::string, Quantity>>>
SimplifiedDtd::parents() const {
    std::map<std::string, std::vector<std::pair<std::string, Quantity>>> out;
    for (const auto& e : elements)
        for (const auto& [child, q] : e.children) out[child].emplace_back(e.name, q);
    return out;
}

std::vector<std::string> SimplifiedDtd::recursive_elements() const {
    // An element is recursive iff it can reach itself.
    std::vector<std::string> out;
    for (const auto& e : elements) {
        std::set<std::string> seen;
        std::function<bool(const std::string&)> reaches =
            [&](const std::string& node) -> bool {
            const SimplifiedElement* decl = element(node);
            if (decl == nullptr) return false;
            for (const auto& [child, q] : decl->children) {
                (void)q;
                if (child == e.name) return true;
                if (seen.insert(child).second && reaches(child)) return true;
            }
            return false;
        };
        if (reaches(e.name)) out.push_back(e.name);
    }
    return out;
}

namespace {

void collect(const dtd::Particle& p, Quantity context, bool in_choice,
             std::map<std::string, Quantity>& acc,
             std::vector<std::string>& order) {
    if (p.is_element()) {
        Quantity q = weaken(context, p.occurrence, in_choice);
        auto it = acc.find(p.name);
        if (it == acc.end()) {
            acc.emplace(p.name, q);
            order.push_back(p.name);
        } else {
            it->second = merge_mentions(it->second, q);
        }
        return;
    }
    Quantity inner = weaken(context, p.occurrence, /*in_choice=*/false);
    bool choice = p.kind == dtd::ParticleKind::kChoice && p.children.size() > 1;
    for (const auto& c : p.children) collect(c, inner, choice, acc, order);
}

}  // namespace

SimplifiedDtd simplify(const dtd::Dtd& logical) {
    SimplifiedDtd out;
    for (const auto& decl : logical.elements()) {
        SimplifiedElement e;
        e.name = decl.name;
        e.attributes = decl.attributes;
        switch (decl.content.category) {
            case dtd::ContentCategory::kEmpty:
                break;
            case dtd::ContentCategory::kAny:
                e.any = true;
                e.has_text = true;
                break;
            case dtd::ContentCategory::kPCData:
                e.has_text = true;
                break;
            case dtd::ContentCategory::kMixed: {
                e.has_text = true;
                for (const auto& name : decl.content.mixed_names)
                    e.children.emplace_back(name, Quantity::kMany);
                break;
            }
            case dtd::ContentCategory::kChildren: {
                std::map<std::string, Quantity> acc;
                std::vector<std::string> order;
                collect(decl.content.particle, Quantity::kOne, false, acc, order);
                for (const auto& name : order) e.children.emplace_back(name, acc[name]);
                break;
            }
        }
        out.index[e.name] = out.elements.size();
        out.elements.push_back(std::move(e));
    }
    return out;
}

}  // namespace xr::baseline
