// DTD simplification per Shanmugasundaram et al., VLDB'99 ("Relational
// Databases for Querying XML Documents: Limitations and Opportunities") —
// the related work the paper compares against.
//
// Their transformations reduce every content model to a flat set of
// (child, quantity) facts with quantity ∈ {exactly-one, optional, many}:
// nested groups flatten, '+' weakens to '*', multiple mentions of the same
// child collapse to many.  Order is deliberately discarded — precisely the
// information loss the Lee-Mitchell-Zhang mapping preserves as metadata.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dtd/dtd.hpp"

namespace xr::baseline {

enum class Quantity { kOne, kOptional, kMany };

[[nodiscard]] std::string_view to_string(Quantity q);

/// Combine quantities when the same child is mentioned twice.
[[nodiscard]] Quantity merge_mentions(Quantity a, Quantity b);
/// Weaken a quantity by an enclosing occurrence context.
[[nodiscard]] Quantity weaken(Quantity q, dtd::Occurrence occ, bool in_choice);

struct SimplifiedElement {
    std::string name;
    bool has_text = false;  ///< PCDATA or mixed content
    bool any = false;       ///< ANY content
    std::vector<std::pair<std::string, Quantity>> children;  ///< deduped
    std::vector<dtd::AttributeDecl> attributes;

    [[nodiscard]] Quantity quantity_of(std::string_view child) const;
};

struct SimplifiedDtd {
    std::vector<SimplifiedElement> elements;  ///< declaration order
    std::map<std::string, std::size_t, std::less<>> index;

    [[nodiscard]] const SimplifiedElement* element(std::string_view name) const;
    /// Parents of each element (graph in-edges), with quantities.
    [[nodiscard]] std::map<std::string, std::vector<std::pair<std::string, Quantity>>>
    parents() const;
    /// Elements on a cycle of the element graph.
    [[nodiscard]] std::vector<std::string> recursive_elements() const;
};

[[nodiscard]] SimplifiedDtd simplify(const dtd::Dtd& logical);

}  // namespace xr::baseline
