#include "baseline/inline_schema.hpp"

#include <set>

namespace xr::baseline {

std::string_view to_string(InliningMode m) {
    switch (m) {
        case InliningMode::kBasic: return "basic";
        case InliningMode::kShared: return "shared";
        case InliningMode::kHybrid: return "hybrid";
    }
    return "?";
}

namespace {

using rdb::ValueType;

std::set<std::string> compute_tabled(const SimplifiedDtd& s, InliningMode mode) {
    std::set<std::string> tabled;
    auto parents = s.parents();

    std::set<std::string> recursive;
    for (const auto& r : s.recursive_elements()) recursive.insert(r);

    for (const auto& e : s.elements) {
        auto pit = parents.find(e.name);
        std::size_t in_degree = pit == parents.end() ? 0 : pit->second.size();
        bool set_valued = false;
        if (pit != parents.end()) {
            for (const auto& [parent, q] : pit->second) {
                (void)parent;
                if (q == Quantity::kMany) set_valued = true;
            }
        }
        bool is_root = in_degree == 0;
        bool is_recursive = recursive.contains(e.name);

        switch (mode) {
            case InliningMode::kBasic:
                tabled.insert(e.name);
                break;
            case InliningMode::kShared:
                if (is_root || in_degree >= 2 || set_valued || is_recursive)
                    tabled.insert(e.name);
                break;
            case InliningMode::kHybrid:
                // Multi-parent elements inline into each parent unless they
                // are set-valued or recursive.
                if (is_root || set_valued || is_recursive) tabled.insert(e.name);
                break;
        }
    }
    return tabled;
}

class Builder {
public:
    Builder(const SimplifiedDtd& s, InliningMode mode, InliningResult& out)
        : s_(s), mode_(mode), out_(out), tabled_(compute_tabled(s, mode)) {}

    void run() {
        for (const char* reserved :
             {"id", "doc", "parent_id", "parent_table", "value"})
            (void)reserved;

        auto parents = s_.parents();
        for (const auto& e : s_.elements) {
            if (!tabled_.contains(e.name)) {
                out_.table_of[e.name] = "";
                continue;
            }
            rel::TableSchema t;
            t.name = tables_.allocate(e.name);
            t.kind = rel::TableKind::kEntity;
            t.source = e.name;
            t.columns.push_back({"id", ValueType::kInteger, true, true,
                                 rel::ColumnRole::kPrimaryKey, "", ""});
            t.columns.push_back({"doc", ValueType::kInteger, true, false,
                                 rel::ColumnRole::kDocId, "", ""});
            bool is_root = !parents.contains(e.name);
            if (!is_root) {
                t.columns.push_back({"parent_id", ValueType::kInteger, false,
                                     false, rel::ColumnRole::kForeignKey, "", ""});
                t.columns.push_back({"parent_table", ValueType::kText, false,
                                     false, rel::ColumnRole::kMeta, "", ""});
                // Position among the parent's children (document order).
                t.columns.push_back({"ord", ValueType::kInteger, false, false,
                                     rel::ColumnRole::kOrdinal, "", ""});
            }

            rel::IdentifierPool columns;
            for (const char* reserved :
                 {"id", "doc", "parent_id", "parent_table", "ord"})
                columns.reserve(reserved);

            std::set<std::string> on_path{e.name};
            add_fields(t, columns, e, "", false, on_path);
            out_.columns_of[t.name] = std::move(current_columns_);
            current_columns_.clear();
            out_.table_of[e.name] = t.name;
            out_.schema.add_table(std::move(t));
        }
    }

private:
    const SimplifiedDtd& s_;
    InliningMode mode_;
    InliningResult& out_;
    std::set<std::string> tabled_;
    rel::IdentifierPool tables_;
    std::map<std::string, std::string> current_columns_;

    /// Inline the fields of `e` into table `t` under `prefix`.
    void add_fields(rel::TableSchema& t, rel::IdentifierPool& columns,
                    const SimplifiedElement& e, const std::string& prefix,
                    bool optional, std::set<std::string>& on_path) {
        for (const auto& a : e.attributes) {
            std::string path = prefix.empty() ? "@" + a.name
                                              : prefix + "/@" + a.name;
            std::string col = columns.allocate(
                prefix.empty() ? a.name : prefix + "_" + a.name);
            t.columns.push_back({col, ValueType::kText,
                                 !optional && a.required(), false,
                                 rel::ColumnRole::kAttribute, "", path});
            current_columns_[path] = col;
        }
        if (e.has_text) {
            std::string path = prefix;  // "" = the element's own text
            std::string col =
                columns.allocate(prefix.empty() ? "value" : prefix + "_value");
            t.columns.push_back({col, ValueType::kText, false, false,
                                 rel::ColumnRole::kText, "", path});
            current_columns_[path.empty() ? std::string("") : path] = col;
        }
        for (const auto& [child, q] : e.children) {
            if (q == Quantity::kMany) continue;  // set-valued: own relation
            const SimplifiedElement* cd = s_.element(child);
            if (cd == nullptr) continue;
            bool child_tabled = tabled_.contains(child);
            // Shared/hybrid: stop at tabled children.  Basic: inline through
            // tabled children too (each element also has its own relation),
            // but never through a cycle.
            if (child_tabled && mode_ != InliningMode::kBasic) continue;
            if (on_path.contains(child)) continue;
            on_path.insert(child);
            std::string child_prefix =
                prefix.empty() ? child : prefix + "/" + child;
            add_fields(t, columns, *cd, child_prefix,
                       optional || q == Quantity::kOptional, on_path);
            on_path.erase(child);
        }
    }
};

}  // namespace

std::size_t InliningResult::path_joins(
    const std::vector<std::string>& path) const {
    if (path.empty()) return 0;
    auto root = table_of.find(path[0]);
    if (root == table_of.end() || root->second.empty()) return path.size();
    std::string table = root->second;
    std::string prefix;
    std::size_t joins = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
        std::string candidate =
            prefix.empty() ? path[i] : prefix + "/" + path[i];
        // Step stays inside the current relation when some inlined column's
        // path begins with the candidate prefix (basic inlining answers many
        // paths from one wide relation — VLDB'99's headline advantage).
        bool inlined = false;
        auto cit = columns_of.find(table);
        if (cit != columns_of.end()) {
            for (const auto& [p, c] : cit->second) {
                (void)c;
                if (p.rfind(candidate, 0) == 0) {
                    inlined = true;
                    break;
                }
            }
        }
        if (inlined) {
            prefix = candidate;
            continue;
        }
        ++joins;
        auto tit = table_of.find(path[i]);
        if (tit != table_of.end() && !tit->second.empty()) {
            table = tit->second;
            prefix.clear();
        }
    }
    return joins;
}

InliningResult inline_dtd(const dtd::Dtd& logical, InliningMode mode) {
    InliningResult out;
    out.mode = mode;
    out.simplified = simplify(logical);
    Builder builder(out.simplified, mode, out);
    builder.run();
    return out;
}

}  // namespace xr::baseline
