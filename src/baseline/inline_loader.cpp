#include "baseline/inline_loader.hpp"

#include "common/strings.hpp"

namespace xr::baseline {

namespace {
using rdb::Value;

std::string joined(const std::vector<std::string>& path) {
    std::string out;
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (i != 0) out += "/";
        out += path[i];
    }
    return out;
}
}  // namespace

InlineLoader::InlineLoader(const InliningResult& result, rdb::Database& db)
    : result_(result), db_(db) {
    for (const auto& t : result_.schema.tables()) {
        rdb::Table& table = db_.create_table(t.to_table_def());
        if (t.column("parent_id") != nullptr) table.create_index("parent_id");
        storage_[t.source] = &table;
    }
}

std::int64_t InlineLoader::load(const xml::Document& doc) {
    if (doc.root() == nullptr)
        throw ValidationError("cannot load a document without a root element");
    std::int64_t doc_id = next_doc_++;
    std::vector<Frame> frames;
    std::vector<std::string> path;
    walk(*doc.root(), frames, path, doc_id, 0);
    ++stats_.documents;
    return doc_id;
}

void InlineLoader::walk(const xml::Element& e, std::vector<Frame>& frames,
                        std::vector<std::string>& path, std::int64_t doc,
                        std::size_t ord) {
    ++stats_.elements_visited;
    auto it = result_.table_of.find(e.name());
    bool tabled = it != result_.table_of.end() && !it->second.empty();

    if (tabled) {
        const rel::TableSchema* schema = result_.schema.table(it->second);
        Frame frame;
        frame.table = schema;
        frame.storage = storage_.at(e.name());
        frame.row = rdb::Row(schema->columns.size());
        // Ids are assigned eagerly (not by insert-time auto-increment) so
        // child frames can reference this row before it is inserted.
        frame.id = ++next_id_[frame.storage];
        frame.row[0] = Value(frame.id);
        int c;
        if ((c = schema->column_index("doc")) >= 0) frame.row[c] = Value(doc);
        if (!frames.empty()) {
            if ((c = schema->column_index("parent_id")) >= 0)
                frame.row[c] = Value(frames.back().id);
            if ((c = schema->column_index("parent_table")) >= 0)
                frame.row[c] = Value(frames.back().table->name);
            if ((c = schema->column_index("ord")) >= 0)
                frame.row[c] = Value(static_cast<std::int64_t>(ord));
        }

        std::vector<std::string> sub_path;  // paths relative to this frame
        frames.push_back(std::move(frame));
        fill(frames.back(), e, sub_path);

        const auto& children = e.child_elements();
        // Recurse with a fresh relative path rooted at this frame.
        std::vector<std::string> saved_path;
        saved_path.swap(path);
        for (std::size_t i = 0; i < children.size(); ++i)
            walk(*children[i], frames, path, doc, i);
        saved_path.swap(path);

        Frame done = std::move(frames.back());
        frames.pop_back();
        done.storage->insert(std::move(done.row));
        ++stats_.rows;
        return;
    }

    // Inlined element: contribute values to the enclosing frame.
    if (!frames.empty()) {
        path.push_back(e.name());
        fill(frames.back(), e, path);
        const auto& children = e.child_elements();
        for (std::size_t i = 0; i < children.size(); ++i)
            walk(*children[i], frames, path, doc, i);
        path.pop_back();
    }
}

void InlineLoader::fill(Frame& frame, const xml::Element& e,
                        const std::vector<std::string>& path) {
    auto cit = result_.columns_of.find(frame.table->name);
    if (cit == result_.columns_of.end()) return;
    const auto& columns = cit->second;
    std::string prefix = joined(path);

    for (const auto& a : e.attributes()) {
        std::string key = prefix.empty() ? "@" + a.name : prefix + "/@" + a.name;
        auto col = columns.find(key);
        if (col == columns.end()) continue;
        int idx = frame.table->column_index(col->second);
        if (idx >= 0) frame.row[idx] = Value(a.value);
    }
    std::string text = e.text();
    if (!trim(text).empty()) {
        auto col = columns.find(prefix);
        if (col != columns.end()) {
            int idx = frame.table->column_index(col->second);
            if (idx >= 0) frame.row[idx] = Value(std::move(text));
        }
    }
}

}  // namespace xr::baseline
