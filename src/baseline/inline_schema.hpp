// Basic / Shared / Hybrid inlining schema generation (VLDB'99), the
// comparison baselines the paper's related-work section calls for.
//
//   * Shared: a relation is created for roots, for elements with multiple
//     parents (in-degree ≥ 2), for set-valued elements (reached via '*'),
//     and for recursive elements; everything else inlines into its unique
//     parent's relation.
//   * Basic: every element gets a relation, each inlining all descendants
//     reachable without crossing a set-valued edge.
//   * Hybrid: like shared, but multi-parent elements that are neither
//     set-valued nor recursive inline into *each* parent (columns
//     duplicated per parent).
//
// Relations carry an auto-increment id, a doc column, and (except roots) a
// polymorphic parent reference (parent_id + parent_table), following the
// paper's parentCODE convention.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "baseline/simplify.hpp"
#include "rel/schema.hpp"

namespace xr::baseline {

enum class InliningMode { kBasic, kShared, kHybrid };

[[nodiscard]] std::string_view to_string(InliningMode m);

struct InliningResult {
    InliningMode mode = InliningMode::kShared;
    SimplifiedDtd simplified;
    rel::RelationalSchema schema;

    /// Element → its own relation's table name ("" if inlined everywhere).
    std::map<std::string, std::string> table_of;
    /// Per table: inlined path (e.g. "name/firstname") → column name.  The
    /// empty path maps to the element's own text column, "@x" to its
    /// attribute columns.
    std::map<std::string, std::map<std::string, std::string>> columns_of;

    [[nodiscard]] bool has_table(std::string_view element) const {
        auto it = table_of.find(std::string(element));
        return it != table_of.end() && !it->second.empty();
    }

    /// Number of relation boundaries a root-to-leaf path crosses — the
    /// join count a path query needs under this schema (the root table
    /// itself is not a join).
    [[nodiscard]] std::size_t path_joins(
        const std::vector<std::string>& path) const;
};

[[nodiscard]] InliningResult inline_dtd(const dtd::Dtd& logical,
                                        InliningMode mode);

}  // namespace xr::baseline
