// Generic loader for inlined (basic/shared/hybrid) schemas, so loading
// throughput and data volume can be compared against the paper's mapping
// on identical corpora.
#pragma once

#include <cstdint>
#include <map>

#include "baseline/inline_schema.hpp"
#include "rdb/database.hpp"
#include "xml/dom.hpp"

namespace xr::baseline {

struct InlineLoadStats {
    std::size_t documents = 0;
    std::size_t elements_visited = 0;
    std::size_t rows = 0;
};

class InlineLoader {
public:
    /// Creates the schema's tables inside `db` (names must be fresh).
    InlineLoader(const InliningResult& result, rdb::Database& db);

    /// Load one document; returns its doc id.
    std::int64_t load(const xml::Document& doc);

    [[nodiscard]] const InlineLoadStats& stats() const { return stats_; }

private:
    const InliningResult& result_;
    rdb::Database& db_;
    std::map<std::string, rdb::Table*> storage_;  ///< element → table
    std::map<rdb::Table*, std::int64_t> next_id_;
    std::int64_t next_doc_ = 1;
    InlineLoadStats stats_;

    struct Frame {
        const rel::TableSchema* table = nullptr;
        rdb::Table* storage = nullptr;
        rdb::Row row;
        std::int64_t id = 0;
    };

    void walk(const xml::Element& e, std::vector<Frame>& frames,
              std::vector<std::string>& path, std::int64_t doc,
              std::size_t ord);
    void fill(Frame& frame, const xml::Element& e,
              const std::vector<std::string>& path);
};

}  // namespace xr::baseline
