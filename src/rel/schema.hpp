// Relational schema model with XML provenance.
//
// The translation of the ER model (xr::mapping) produces this schema; it
// records not just tables and columns but *why* each exists (which entity,
// relationship or attribute it came from), because the data loader and the
// path-query→SQL translator both navigate by provenance.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "rdb/table.hpp"

namespace xr::rel {

enum class ColumnRole {
    kPrimaryKey,  ///< surrogate key
    kDocId,       ///< document of origin (corpus loading)
    kForeignKey,  ///< reference to another table's pk
    kOrdinal,     ///< data ordering (paper Section 3, Ordering)
    kAttribute,   ///< XML attribute or distilled #PCDATA subelement
    kText,        ///< character data of a PCDATA/mixed element
    kRawXml,      ///< serialized subtree of an ANY element
    kIdValue,     ///< unresolved ID/IDREF token text
    kLabel,       ///< structural interval label (pre / post / level)
    kMeta,        ///< metadata table payload
};

struct Column {
    std::string name;
    rdb::ValueType type = rdb::ValueType::kText;
    bool not_null = false;
    bool primary_key = false;
    ColumnRole role = ColumnRole::kAttribute;
    std::string references;  ///< table name, for kForeignKey
    std::string source;      ///< ER attribute / member name this column carries
};

enum class TableKind {
    kEntity,           ///< one per ER entity
    kNestedRel,        ///< NESTED relationship
    kGroupRel,         ///< NESTED_GROUP relationship (group instances)
    kGroupMemberLink,  ///< repeatable member of a group
    kReferenceRel,     ///< REFERENCE relationship (IDREF rows)
    kIdRegistry,       ///< global ID → (entity, pk) registry
    kTextSegments,     ///< mixed-content text segments (exact interleaving)
    kOverflow,         ///< unmapped subtrees kept as raw XML (lenient loads)
    kMetadata,         ///< xrel_* metadata tables
};

[[nodiscard]] std::string_view to_string(TableKind k);

struct TableSchema {
    std::string name;
    TableKind kind = TableKind::kEntity;
    std::string source;   ///< entity / relationship name
    std::string source2;  ///< member name, for kGroupMemberLink
    std::vector<Column> columns;

    [[nodiscard]] const Column* column(std::string_view name) const;
    [[nodiscard]] int column_index(std::string_view name) const;
    /// First column playing `role` (pk, doc, ord are unique per table).
    [[nodiscard]] const Column* column_by_role(ColumnRole role) const;
    /// Column whose `source` matches (attribute lookup).
    [[nodiscard]] const Column* column_by_source(std::string_view source) const;

    [[nodiscard]] rdb::TableDef to_table_def() const;
    [[nodiscard]] std::string ddl() const;
};

class RelationalSchema {
public:
    TableSchema& add_table(TableSchema table);

    [[nodiscard]] const TableSchema* table(std::string_view name) const;
    [[nodiscard]] const std::vector<TableSchema>& tables() const { return tables_; }

    /// Table generated for an ER entity / relationship.
    [[nodiscard]] const TableSchema* table_for(TableKind kind,
                                               std::string_view source) const;
    [[nodiscard]] const TableSchema* entity_table(std::string_view entity) const;
    [[nodiscard]] const TableSchema* link_table(std::string_view group_rel,
                                                std::string_view member) const;

    [[nodiscard]] std::size_t table_count(TableKind kind) const;
    [[nodiscard]] std::size_t column_count() const;
    /// Count of nullable non-key data columns (schema-comparison metric).
    [[nodiscard]] std::size_t nullable_column_count() const;

    /// CREATE TABLE statements for the whole schema.
    [[nodiscard]] std::string ddl() const;

private:
    std::vector<TableSchema> tables_;
};

/// Map an XML name to a safe SQL identifier (lowercase, [a-z0-9_], no
/// leading digit).  Collisions are the caller's concern (IdentifierPool).
[[nodiscard]] std::string sanitize_identifier(std::string_view name);

/// Allocates unique sanitized identifiers.
class IdentifierPool {
public:
    /// Returns a unique identifier derived from `name`.
    std::string allocate(std::string_view name);
    /// Reserve a name so allocate() never returns it.
    void reserve(std::string_view name);

private:
    std::map<std::string, int> used_;
};

}  // namespace xr::rel
