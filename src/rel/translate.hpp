// ER → relational translation (the classical step the paper delegates to
// [EN89], instantiated for the three relationship kinds of the mapping).
//
// Layout produced:
//   * entity E            → table e(pk, doc, <attributes...>, [pcdata|raw_xml])
//   * NESTED N(P→C)       → table n(pk, doc, parent_pk→P, child_pk→C, ord)
//   * NESTED_GROUP NG     → table ng(pk, doc, parent_pk→P, ord, <rel attrs>,
//                            <m_pk→M for each non-repeatable member>)
//                            + table ng_m(pk, doc, group_pk→NG, member_pk→M,
//                            ord) for each repeatable member
//   * REFERENCE r(S→...)  → table ref_r(pk, doc, source_pk→S, idref, ord,
//                            target_entity, target_pk)   [polymorphic target]
//   * ID registry         → table xrel_ids(pk, doc, idval, entity, entity_pk)
//   * metadata            → xrel_elements / xrel_attributes /
//                            xrel_relationships / xrel_schema_order /
//                            xrel_mapping   (content filled by materialize())
//
// Every relationship table carries an `ord` column — the paper's suggested
// mechanism for preserving data ordering ("an ordering column in a table to
// number the data rows").
#pragma once

#include "mapping/pipeline.hpp"
#include "rel/schema.hpp"

namespace xr::rel {

struct TranslateOptions {
    /// Add a `doc` column to every table (multi-document corpora).
    bool doc_column = true;
    /// Add `ord` data-ordering columns to relationship tables.
    bool ordinal_columns = true;
    /// Ablation: restrict `ord` columns to relationships that can actually
    /// repeat (occurrence '*' or '+').
    bool ordinal_only_where_repeatable = false;
    /// Emit the xrel_* metadata table definitions.
    bool metadata_tables = true;
    /// Add `(pre, post, level)` structural interval labels to every entity
    /// table (DESIGN.md §10) — the basis for descendant/ancestor interval
    /// containment joins.
    bool structural_labels = true;
};

[[nodiscard]] RelationalSchema translate(const mapping::MappingResult& mapping,
                                         const TranslateOptions& options = {});

/// Name of the global ID registry table.
inline constexpr const char* kIdRegistryTable = "xrel_ids";

/// Name of the mixed-content text-segment table (only created when the DTD
/// declares mixed content): each row is one text node, keyed by owner
/// entity row and ordered by the node index — so text/element interleaving
/// survives the relational trip exactly.
inline constexpr const char* kTextSegmentsTable = "xrel_text";

/// Name of the overflow table: subtrees a lenient load could not map are
/// stored as raw XML here (the STORED-style "overflow graph" the paper's
/// related-work section describes), so even document-centric inputs lose
/// nothing.
inline constexpr const char* kOverflowTable = "xrel_overflow";

}  // namespace xr::rel
