#include "rel/schema.hpp"

#include <cctype>
#include <set>

namespace xr::rel {

std::string_view to_string(TableKind k) {
    switch (k) {
        case TableKind::kEntity: return "entity";
        case TableKind::kNestedRel: return "nested";
        case TableKind::kGroupRel: return "nested_group";
        case TableKind::kGroupMemberLink: return "group_member";
        case TableKind::kReferenceRel: return "reference";
        case TableKind::kIdRegistry: return "id_registry";
        case TableKind::kTextSegments: return "text_segments";
        case TableKind::kOverflow: return "overflow";
        case TableKind::kMetadata: return "metadata";
    }
    return "?";
}

const Column* TableSchema::column(std::string_view name) const {
    for (const auto& c : columns)
        if (c.name == name) return &c;
    return nullptr;
}

int TableSchema::column_index(std::string_view name) const {
    for (std::size_t i = 0; i < columns.size(); ++i)
        if (columns[i].name == name) return static_cast<int>(i);
    return -1;
}

const Column* TableSchema::column_by_role(ColumnRole role) const {
    for (const auto& c : columns)
        if (c.role == role) return &c;
    return nullptr;
}

const Column* TableSchema::column_by_source(std::string_view source) const {
    for (const auto& c : columns)
        if (c.source == source) return &c;
    return nullptr;
}

rdb::TableDef TableSchema::to_table_def() const {
    rdb::TableDef def;
    def.name = name;
    for (const auto& c : columns)
        def.columns.push_back({c.name, c.type, c.not_null, c.primary_key});
    return def;
}

std::string TableSchema::ddl() const {
    std::string out = "CREATE TABLE " + name + " (\n";
    for (std::size_t i = 0; i < columns.size(); ++i) {
        const Column& c = columns[i];
        out += "    " + c.name + " " + std::string(rdb::to_string(c.type));
        if (c.primary_key) out += " PRIMARY KEY";
        if (c.not_null && !c.primary_key) out += " NOT NULL";
        if (c.role == ColumnRole::kForeignKey && !c.references.empty())
            out += " REFERENCES " + c.references + "(pk)";
        if (i + 1 != columns.size()) out += ",";
        out += "\n";
    }
    out += ");\n";
    return out;
}

TableSchema& RelationalSchema::add_table(TableSchema table) {
    if (this->table(table.name) != nullptr)
        throw SchemaError("duplicate table '" + table.name + "' in schema");
    tables_.push_back(std::move(table));
    return tables_.back();
}

const TableSchema* RelationalSchema::table(std::string_view name) const {
    for (const auto& t : tables_)
        if (t.name == name) return &t;
    return nullptr;
}

const TableSchema* RelationalSchema::table_for(TableKind kind,
                                               std::string_view source) const {
    for (const auto& t : tables_)
        if (t.kind == kind && t.source == source) return &t;
    return nullptr;
}

const TableSchema* RelationalSchema::entity_table(std::string_view entity) const {
    return table_for(TableKind::kEntity, entity);
}

const TableSchema* RelationalSchema::link_table(std::string_view group_rel,
                                                std::string_view member) const {
    for (const auto& t : tables_) {
        if (t.kind == TableKind::kGroupMemberLink && t.source == group_rel &&
            t.source2 == member)
            return &t;
    }
    return nullptr;
}

std::size_t RelationalSchema::table_count(TableKind kind) const {
    std::size_t n = 0;
    for (const auto& t : tables_)
        if (t.kind == kind) ++n;
    return n;
}

std::size_t RelationalSchema::column_count() const {
    std::size_t n = 0;
    for (const auto& t : tables_) n += t.columns.size();
    return n;
}

std::size_t RelationalSchema::nullable_column_count() const {
    std::size_t n = 0;
    for (const auto& t : tables_) {
        if (t.kind == TableKind::kMetadata) continue;
        for (const auto& c : t.columns)
            if (!c.primary_key && !c.not_null) ++n;
    }
    return n;
}

std::string RelationalSchema::ddl() const {
    std::string out;
    for (const auto& t : tables_) {
        out += t.ddl();
        out += "\n";
    }
    return out;
}

std::string sanitize_identifier(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        else
            out += '_';
    }
    if (out.empty()) out = "x";
    if (std::isdigit(static_cast<unsigned char>(out[0]))) out = "x" + out;
    // SQL keywords would force quoting in every generated query ('order' is
    // the common offender for e-commerce DTDs); suffix them instead.
    static const std::set<std::string, std::less<>> kSqlKeywords = {
        "select", "from",  "where", "join",   "inner",  "left",   "on",
        "and",    "or",    "not",   "as",     "order",  "by",     "group",
        "limit",  "asc",   "desc",  "insert", "into",   "values", "create",
        "table",  "index", "primary", "key",  "unique", "null",   "is",
        "like",   "count", "sum",   "min",    "max",    "avg",    "distinct",
        "integer", "real", "text",  "having", "references"};
    if (kSqlKeywords.contains(out)) out += "_";
    return out;
}

std::string IdentifierPool::allocate(std::string_view name) {
    std::string base = sanitize_identifier(name);
    auto [it, inserted] = used_.emplace(base, 0);
    if (inserted) return base;
    for (;;) {
        std::string candidate = base + "_" + std::to_string(++it->second);
        if (used_.emplace(candidate, 0).second) return candidate;
    }
}

void IdentifierPool::reserve(std::string_view name) {
    used_.emplace(sanitize_identifier(name), 0);
}

}  // namespace xr::rel
