// Instantiates a RelationalSchema inside a MiniRDB database: creates the
// tables, declares foreign keys, builds loader-critical indexes, and fills
// the xrel_* metadata tables from the mapping result (the paper's "metadata
// can be collected at the time of DTD to relational mapping and stored as
// relational tables").
#pragma once

#include "mapping/pipeline.hpp"
#include "rdb/database.hpp"
#include "rel/schema.hpp"

namespace xr::rel {

struct MaterializeOptions {
    /// Create secondary indexes on foreign-key columns and the ID registry.
    bool create_indexes = true;
    /// Index flavour for ID lookup (DESIGN.md ablation: hash vs ordered).
    rdb::IndexKind index_kind = rdb::IndexKind::kHash;
    /// Fill xrel_* metadata tables.
    bool populate_metadata = true;
};

void materialize(const RelationalSchema& schema,
                 const mapping::MappingResult& mapping, rdb::Database& db,
                 const MaterializeOptions& options = {});

}  // namespace xr::rel
