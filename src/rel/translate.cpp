#include "rel/translate.hpp"

namespace xr::rel {

namespace {

using rdb::ValueType;

Column pk_column() {
    return {"pk", ValueType::kInteger, true, true, ColumnRole::kPrimaryKey, "", ""};
}

Column doc_column() {
    return {"doc", ValueType::kInteger, true, false, ColumnRole::kDocId, "", ""};
}

Column ord_column() {
    return {"ord", ValueType::kInteger, false, false, ColumnRole::kOrdinal, "", ""};
}

Column label_column(std::string name) {
    return {std::move(name), ValueType::kInteger, false, false,
            ColumnRole::kLabel, "", ""};
}

Column fk_column(std::string name, std::string references, bool not_null,
                 std::string source) {
    return {std::move(name), ValueType::kInteger, not_null, false,
            ColumnRole::kForeignKey, std::move(references), std::move(source)};
}

class Translator {
public:
    Translator(const mapping::MappingResult& mapping,
               const TranslateOptions& options)
        : m_(mapping), options_(options) {}

    RelationalSchema run() {
        table_names_.reserve(kIdRegistryTable);
        table_names_.reserve(kTextSegmentsTable);
        table_names_.reserve(kOverflowTable);
        for (const char* name :
             {"xrel_elements", "xrel_attributes", "xrel_relationships",
              "xrel_schema_order", "xrel_mapping", "xrel_docs"})
            table_names_.reserve(name);

        for (const auto& e : m_.model.entities()) add_entity(e);
        for (const auto& r : m_.model.relationships()) {
            switch (r.kind) {
                case er::RelationshipKind::kNested: add_nested(r); break;
                case er::RelationshipKind::kNestedGroup: add_group(r); break;
                case er::RelationshipKind::kReference: add_reference(r); break;
            }
        }
        add_id_registry();
        add_text_segments();
        add_overflow();
        if (options_.metadata_tables) add_metadata_tables();
        return std::move(schema_);
    }

private:
    const mapping::MappingResult& m_;
    const TranslateOptions& options_;
    RelationalSchema schema_;
    IdentifierPool table_names_;

    void maybe_doc(TableSchema& t) {
        if (options_.doc_column) t.columns.push_back(doc_column());
    }

    void maybe_ord(TableSchema& t, bool repeatable) {
        if (!options_.ordinal_columns) return;
        if (options_.ordinal_only_where_repeatable && !repeatable) return;
        t.columns.push_back(ord_column());
    }

    void add_entity(const er::Entity& e) {
        TableSchema t;
        t.name = table_names_.allocate(e.name);
        t.kind = TableKind::kEntity;
        t.source = e.name;
        t.columns.push_back(pk_column());
        maybe_doc(t);

        IdentifierPool columns;
        for (const char* reserved :
             {"pk", "doc", "ord", "pcdata", "raw_xml", "pre", "post", "level"})
            columns.reserve(reserved);

        for (const auto& a : e.attributes) {
            Column c;
            c.name = columns.allocate(a.name);
            c.type = ValueType::kText;
            c.not_null = a.required;
            c.role = ColumnRole::kAttribute;
            c.source = a.name;
            t.columns.push_back(std::move(c));
        }
        if (e.origin == er::EntityOrigin::kAnyElement) {
            t.columns.push_back({"raw_xml", ValueType::kText, false, false,
                                 ColumnRole::kRawXml, "", ""});
        } else if (e.has_text) {
            t.columns.push_back({"pcdata", ValueType::kText, false, false,
                                 ColumnRole::kText, "", ""});
        }
        if (options_.structural_labels) {
            // Dietz interval labels: descendant(d, a) ⇔ a.pre < d.pre < a.post.
            t.columns.push_back(label_column("pre"));
            t.columns.push_back(label_column("post"));
            t.columns.push_back(label_column("level"));
        }
        schema_.add_table(std::move(t));
    }

    [[nodiscard]] std::string entity_table_name(const std::string& entity) const {
        const TableSchema* t = schema_.entity_table(entity);
        return t == nullptr ? std::string() : t->name;
    }

    void add_nested(const er::Relationship& r) {
        const std::string parent = entity_table_name(r.parent);
        if (parent.empty() || r.members.empty()) return;
        const std::string child = entity_table_name(r.members.front().entity);
        if (child.empty()) return;

        TableSchema t;
        t.name = table_names_.allocate(r.name);
        t.kind = TableKind::kNestedRel;
        t.source = r.name;
        t.columns.push_back(pk_column());
        maybe_doc(t);
        t.columns.push_back(fk_column("parent_pk", parent, true, r.parent));
        t.columns.push_back(
            fk_column("child_pk", child, true, r.members.front().entity));
        maybe_ord(t, dtd::is_repeatable(r.members.front().occurrence));
        schema_.add_table(std::move(t));
    }

    void add_group(const er::Relationship& r) {
        // The parent is an entity, or — for a group hoisted from inside
        // another group — the enclosing NESTED_GROUP relationship.
        std::string parent = entity_table_name(r.parent);
        if (parent.empty()) {
            const TableSchema* t =
                schema_.table_for(TableKind::kGroupRel, r.parent);
            if (t != nullptr) parent = t->name;
        }
        if (parent.empty()) return;

        TableSchema t;
        t.name = table_names_.allocate(r.name);
        t.kind = TableKind::kGroupRel;
        t.source = r.name;
        t.columns.push_back(pk_column());
        maybe_doc(t);
        t.columns.push_back(fk_column("parent_pk", parent, true, r.parent));
        maybe_ord(t, dtd::is_repeatable(r.occurrence));

        IdentifierPool columns;
        for (const char* reserved : {"pk", "doc", "ord", "parent_pk"})
            columns.reserve(reserved);

        for (const auto& a : r.attributes) {
            Column c;
            c.name = columns.allocate(a.name);
            c.type = ValueType::kText;
            c.not_null = a.required;
            c.role = ColumnRole::kAttribute;
            c.source = a.name;
            t.columns.push_back(std::move(c));
        }

        struct PendingLink {
            std::string member;
            std::string member_table;
        };
        std::vector<PendingLink> links;

        for (const auto& member : r.members) {
            const std::string member_table = entity_table_name(member.entity);
            if (member_table.empty()) continue;
            if (dtd::is_repeatable(member.occurrence)) {
                links.push_back({member.entity, member_table});
            } else {
                // Nullable unless the member is a mandatory sequence slot.
                bool required = !member.choice &&
                                member.occurrence == dtd::Occurrence::kOne;
                t.columns.push_back(fk_column(
                    columns.allocate(member.entity + "_pk"), member_table,
                    required, member.entity));
            }
        }
        const std::string group_table = t.name;
        schema_.add_table(std::move(t));

        for (const auto& link : links) {
            TableSchema lt;
            lt.name = table_names_.allocate(r.name + "_" + link.member);
            lt.kind = TableKind::kGroupMemberLink;
            lt.source = r.name;
            lt.source2 = link.member;
            lt.columns.push_back(pk_column());
            maybe_doc(lt);
            lt.columns.push_back(fk_column("group_pk", group_table, true, r.name));
            lt.columns.push_back(
                fk_column("member_pk", link.member_table, true, link.member));
            maybe_ord(lt, true);
            schema_.add_table(std::move(lt));
        }
    }

    void add_reference(const er::Relationship& r) {
        const std::string source = entity_table_name(r.parent);
        if (source.empty()) return;

        TableSchema t;
        t.name = table_names_.allocate("ref_" + r.name);
        t.kind = TableKind::kReferenceRel;
        t.source = r.name;
        t.columns.push_back(pk_column());
        maybe_doc(t);
        t.columns.push_back(fk_column("source_pk", source, true, r.parent));
        t.columns.push_back({"idref", ValueType::kText, true, false,
                             ColumnRole::kIdValue, "", ""});
        maybe_ord(t, dtd::is_repeatable(r.occurrence));
        // Polymorphic resolved target: any ID-bearing entity.
        t.columns.push_back({"target_entity", ValueType::kText, false, false,
                             ColumnRole::kMeta, "", ""});
        t.columns.push_back({"target_pk", ValueType::kInteger, false, false,
                             ColumnRole::kForeignKey, "", ""});
        schema_.add_table(std::move(t));
    }

    void add_id_registry() {
        bool needed = false;
        for (const auto& e : m_.model.entities()) {
            for (const auto& a : e.attributes)
                if (a.type == dtd::AttrType::kId) needed = true;
        }
        for (const auto& r : m_.model.relationships())
            if (r.kind == er::RelationshipKind::kReference) needed = true;
        if (!needed) return;

        TableSchema t;
        t.name = kIdRegistryTable;
        t.kind = TableKind::kIdRegistry;
        t.source = kIdRegistryTable;
        t.columns.push_back(pk_column());
        maybe_doc(t);
        t.columns.push_back({"idval", ValueType::kText, true, false,
                             ColumnRole::kIdValue, "", ""});
        t.columns.push_back({"entity", ValueType::kText, true, false,
                             ColumnRole::kMeta, "", ""});
        t.columns.push_back({"entity_pk", ValueType::kInteger, true, false,
                             ColumnRole::kForeignKey, "", ""});
        schema_.add_table(std::move(t));
    }

    void add_text_segments() {
        bool mixed = false;
        for (const auto& e : m_.converted.elements)
            if (e.residual == mapping::ResidualContent::kMixed) mixed = true;
        if (!mixed) return;

        TableSchema t;
        t.name = kTextSegmentsTable;
        t.kind = TableKind::kTextSegments;
        t.source = kTextSegmentsTable;
        t.columns.push_back(pk_column());
        maybe_doc(t);
        t.columns.push_back({"entity", ValueType::kText, true, false,
                             ColumnRole::kMeta, "", ""});
        t.columns.push_back({"parent_pk", ValueType::kInteger, true, false,
                             ColumnRole::kForeignKey, "", ""});
        maybe_ord(t, true);
        t.columns.push_back({"content", ValueType::kText, true, false,
                             ColumnRole::kText, "", ""});
        schema_.add_table(std::move(t));
    }

    void add_overflow() {
        TableSchema t;
        t.name = kOverflowTable;
        t.kind = TableKind::kOverflow;
        t.source = kOverflowTable;
        t.columns.push_back(pk_column());
        maybe_doc(t);
        t.columns.push_back({"parent_entity", ValueType::kText, true, false,
                             ColumnRole::kMeta, "", ""});
        t.columns.push_back({"parent_pk", ValueType::kInteger, true, false,
                             ColumnRole::kForeignKey, "", ""});
        maybe_ord(t, true);
        t.columns.push_back({"raw_xml", ValueType::kText, true, false,
                             ColumnRole::kRawXml, "", ""});
        schema_.add_table(std::move(t));
    }

    void add_metadata_tables() {
        auto meta_col = [](std::string name,
                           ValueType type = ValueType::kText) -> Column {
            return {std::move(name), type, false, false, ColumnRole::kMeta, "", ""};
        };
        auto add = [&](std::string name, std::vector<Column> cols) {
            TableSchema t;
            t.name = std::move(name);
            t.kind = TableKind::kMetadata;
            t.source = t.name;
            t.columns.push_back(pk_column());
            for (auto& c : cols) t.columns.push_back(std::move(c));
            schema_.add_table(std::move(t));
        };
        add("xrel_elements", {meta_col("name"), meta_col("residual")});
        add("xrel_attributes",
            {meta_col("element"), meta_col("attr"), meta_col("type"),
             meta_col("default_kind"), meta_col("default_value"),
             meta_col("distilled", ValueType::kInteger),
             meta_col("position", ValueType::kInteger)});
        add("xrel_relationships",
            {meta_col("name"), meta_col("kind"), meta_col("parent"),
             meta_col("member"), meta_col("occurrence"),
             meta_col("is_choice", ValueType::kInteger),
             meta_col("position", ValueType::kInteger)});
        add("xrel_schema_order",
            {meta_col("element"), meta_col("position", ValueType::kInteger),
             meta_col("child")});
        add("xrel_mapping",
            {meta_col("kind"), meta_col("source"), meta_col("target")});
        // Loaded-document registry: which entity row is each document's
        // root (filled by the loader; reconstruction starts here).
        add("xrel_docs", {meta_col("doc", ValueType::kInteger),
                          meta_col("root_entity"),
                          meta_col("root_pk", ValueType::kInteger),
                          meta_col("label_base", ValueType::kInteger),
                          meta_col("label_span", ValueType::kInteger)});
    }
};

}  // namespace

RelationalSchema translate(const mapping::MappingResult& mapping,
                           const TranslateOptions& options) {
    Translator translator(mapping, options);
    return translator.run();
}

}  // namespace xr::rel
