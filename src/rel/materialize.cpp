#include "rel/materialize.hpp"

#include "rel/translate.hpp"

namespace xr::rel {

namespace {

using rdb::Value;

void populate_metadata(const mapping::MappingResult& m, rdb::Database& db,
                       const RelationalSchema& schema) {
    if (rdb::Table* elements = db.table("xrel_elements")) {
        for (const auto& e : m.converted.elements) {
            elements->insert({Value::null(), Value(e.name),
                              Value(std::string(to_string(e.residual)))});
        }
    }

    if (rdb::Table* attrs = db.table("xrel_attributes")) {
        for (const auto& e : m.converted.elements) {
            for (const auto& a : e.attributes) {
                bool distilled = a.type == dtd::AttrType::kPCData;
                Value position = Value::null();
                for (const auto& d : m.metadata.distilled) {
                    if (d.element == e.name && d.attribute == a.name)
                        position = Value(static_cast<std::int64_t>(d.position));
                }
                attrs->insert({Value::null(), Value(e.name), Value(a.name),
                               Value(std::string(dtd::to_string(a.type))),
                               Value(std::string(dtd::to_string(a.default_kind))),
                               Value(a.default_value),
                               Value(static_cast<std::int64_t>(distilled)),
                               position});
            }
        }
    }

    if (rdb::Table* rels = db.table("xrel_relationships")) {
        for (const auto& r : m.model.relationships()) {
            for (const auto& member : r.members) {
                rels->insert(
                    {Value::null(), Value(r.name),
                     Value(std::string(er::to_string(r.kind))), Value(r.parent),
                     Value(member.entity),
                     Value(std::string(dtd::to_string(member.occurrence))),
                     Value(static_cast<std::int64_t>(member.choice)),
                     Value(static_cast<std::int64_t>(member.position))});
            }
        }
    }

    if (rdb::Table* order = db.table("xrel_schema_order")) {
        for (const auto& entry : m.metadata.schema_order) {
            for (std::size_t i = 0; i < entry.children_in_order.size(); ++i) {
                order->insert({Value::null(), Value(entry.element),
                               Value(static_cast<std::int64_t>(i)),
                               Value(entry.children_in_order[i])});
            }
        }
    }

    if (rdb::Table* map = db.table("xrel_mapping")) {
        for (const auto& t : schema.tables()) {
            if (t.kind == TableKind::kMetadata) continue;
            map->insert({Value::null(), Value(std::string(to_string(t.kind))),
                         Value(t.source2.empty() ? t.source
                                                 : t.source + "/" + t.source2),
                         Value(t.name)});
            for (const auto& c : t.columns) {
                if (c.role != ColumnRole::kAttribute) continue;
                map->insert({Value::null(), Value(std::string("attribute")),
                             Value(t.source + "/@" + c.source),
                             Value(t.name + "." + c.name)});
            }
        }
    }
}

}  // namespace

void materialize(const RelationalSchema& schema,
                 const mapping::MappingResult& mapping, rdb::Database& db,
                 const MaterializeOptions& options) {
    for (const auto& t : schema.tables()) {
        rdb::Table& table = db.create_table(t.to_table_def());
        for (const auto& c : t.columns) {
            if (c.role == ColumnRole::kForeignKey && !c.references.empty())
                db.add_foreign_key({t.name, c.name, c.references, "pk"});
        }
        if (!options.create_indexes) continue;
        switch (t.kind) {
            case TableKind::kNestedRel:
                table.create_index("parent_pk", options.index_kind);
                table.create_index("child_pk", options.index_kind);
                break;
            case TableKind::kGroupRel:
                table.create_index("parent_pk", options.index_kind);
                break;
            case TableKind::kGroupMemberLink:
                table.create_index("group_pk", options.index_kind);
                table.create_index("member_pk", options.index_kind);
                break;
            case TableKind::kReferenceRel:
                table.create_index("source_pk", options.index_kind);
                table.create_index("idref", options.index_kind);
                break;
            case TableKind::kIdRegistry:
                table.create_index("idval", options.index_kind);
                break;
            case TableKind::kTextSegments:
            case TableKind::kOverflow:
                table.create_index("parent_pk", options.index_kind);
                break;
            case TableKind::kEntity:
                // Structural index: interval containment joins binary-search
                // this sorted-by-pre index instead of scanning (DESIGN.md §10).
                if (t.column("pre") != nullptr)
                    table.create_index("pre", rdb::IndexKind::kOrdered);
                break;
            case TableKind::kMetadata:
                break;
        }
    }
    if (options.populate_metadata) populate_metadata(mapping, db, schema);
}

}  // namespace xr::rel
