// Named corpora used across examples, tests and benches.
//
//   * paper_dtd()  — Example 1 of the paper (books / articles / authors),
//     verbatim (with the published '#IMPLIES' typo corrected).
//   * orders_dtd() — a data-centric e-commerce DTD in the spirit of the
//     paper's motivation ("book orders"): regular, repetitive, machine
//     oriented.
//   * bibliography_corpus() / orders_corpus() — seeded document sets.
#pragma once

#include <memory>
#include <vector>

#include "dtd/dtd.hpp"
#include "gen/doc_gen.hpp"
#include "xml/dom.hpp"

namespace xr::gen {

/// DTD text of paper Example 1.
[[nodiscard]] const char* paper_dtd_text();
[[nodiscard]] dtd::Dtd paper_dtd();

/// The paper's own sample document fragment (Section 3, Ordering) — an
/// article-rooted document in the same spirit, used by the quickstart.
[[nodiscard]] const char* paper_sample_document();

[[nodiscard]] const char* orders_dtd_text();
[[nodiscard]] dtd::Dtd orders_dtd();

/// `count` article documents conforming to the paper DTD.
[[nodiscard]] std::vector<std::unique_ptr<xml::Document>> bibliography_corpus(
    std::size_t count, std::size_t elements_per_doc = 200,
    std::uint64_t seed = 7);

/// `count` order documents conforming to the orders DTD.
[[nodiscard]] std::vector<std::unique_ptr<xml::Document>> orders_corpus(
    std::size_t count, std::size_t elements_per_doc = 120,
    std::uint64_t seed = 11);

}  // namespace xr::gen
