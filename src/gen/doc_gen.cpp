#include "gen/doc_gen.hpp"

#include <algorithm>
#include <map>

#include "common/rng.hpp"

namespace xr::gen {

namespace {

using dtd::Occurrence;
using dtd::Particle;

constexpr std::size_t kInf = 1u << 20;

/// Minimal number of elements a particle / element must expand to —
/// computed as a fixpoint so recursive DTDs get finite answers where they
/// exist ((book|monograph)* can expand to nothing, so editor is finite).
class MinSize {
public:
    explicit MinSize(const dtd::Dtd& dtd) : dtd_(dtd) {
        for (const auto& e : dtd.elements()) size_[e.name] = kInf;
        for (int round = 0; round < 64; ++round) {
            bool changed = false;
            for (const auto& e : dtd.elements()) {
                std::size_t s = compute_element(e);
                if (s < size_[e.name]) {
                    size_[e.name] = s;
                    changed = true;
                }
            }
            if (!changed) break;
        }
    }

    [[nodiscard]] std::size_t element(const std::string& name) const {
        auto it = size_.find(name);
        return it == size_.end() ? 1 : it->second;
    }

    [[nodiscard]] std::size_t particle(const Particle& p) const {
        std::size_t base;
        switch (p.kind) {
            case dtd::ParticleKind::kElement:
                base = element(p.name);
                break;
            case dtd::ParticleKind::kSequence: {
                base = 0;
                for (const auto& c : p.children) base = sat_add(base, particle(c));
                break;
            }
            case dtd::ParticleKind::kChoice: {
                base = kInf;
                for (const auto& c : p.children)
                    base = std::min(base, particle(c));
                if (p.children.empty()) base = 0;
                break;
            }
            default:
                base = 0;
        }
        if (dtd::is_optional(p.occurrence)) return 0;
        return base;
    }

private:
    const dtd::Dtd& dtd_;
    std::map<std::string, std::size_t> size_;

    static std::size_t sat_add(std::size_t a, std::size_t b) {
        return std::min(kInf, a + b);
    }

    std::size_t compute_element(const dtd::ElementDecl& e) const {
        switch (e.content.category) {
            case dtd::ContentCategory::kEmpty:
            case dtd::ContentCategory::kAny:
            case dtd::ContentCategory::kPCData:
            case dtd::ContentCategory::kMixed:
                return 1;
            case dtd::ContentCategory::kChildren:
                return sat_add(1, particle(e.content.particle));
        }
        return 1;
    }
};

const char* kWords[] = {
    "xml",    "data",   "schema",  "model",  "query",   "table",  "index",
    "store",  "parse",  "element", "value",  "graph",   "entity", "relation",
    "order",  "system", "paper",   "mining", "business"};

class DocGenerator {
public:
    DocGenerator(const dtd::Dtd& dtd, const DocGenParams& params)
        : dtd_(dtd), params_(params), rng_(params.seed), min_(dtd) {}

    std::unique_ptr<xml::Document> run(const std::string& root) {
        auto doc = std::make_unique<xml::Document>();
        budget_ = params_.max_elements;
        const dtd::ElementDecl* decl = dtd_.element(root);
        if (decl == nullptr)
            throw SchemaError("cannot generate: no element '" + root + "'");
        xml::Element* root_el = doc->make_root(root);
        expand(*root_el, *decl, 0);
        fix_references(*doc);
        xml::DoctypeDecl doctype;
        doctype.root_name = root;
        doctype.system_id = root + ".dtd";
        doc->set_doctype(std::move(doctype));
        return doc;
    }

private:
    const dtd::Dtd& dtd_;
    const DocGenParams& params_;
    SplitMix64 rng_;
    MinSize min_;
    std::size_t budget_ = 0;
    std::size_t id_counter_ = 0;
    std::vector<std::string> ids_;
    std::vector<std::pair<xml::Element*, std::string>> pending_idrefs_;

    [[nodiscard]] bool tight(std::size_t need) const { return budget_ < need + 8; }

    std::string words() {
        std::string out;
        for (std::size_t i = 0; i < params_.words_per_text; ++i) {
            if (i != 0) out += ' ';
            out += kWords[rng_.below(std::size(kWords))];
        }
        return out;
    }

    void expand(xml::Element& e, const dtd::ElementDecl& decl,
                std::size_t depth) {
        if (budget_ > 0) --budget_;
        attributes(e, decl);
        switch (decl.content.category) {
            case dtd::ContentCategory::kEmpty:
                return;
            case dtd::ContentCategory::kAny:
            case dtd::ContentCategory::kPCData:
                e.append_text(words());
                return;
            case dtd::ContentCategory::kMixed: {
                e.append_text(words());
                // A little interleaving when budget allows.
                for (const auto& name : decl.content.mixed_names) {
                    if (tight(min_.element(name)) || !rng_.chance(0.5)) continue;
                    const dtd::ElementDecl* cd = dtd_.element(name);
                    if (cd == nullptr) continue;
                    expand(*e.append_element(name), *cd, depth + 1);
                    e.append_text(words());
                }
                return;
            }
            case dtd::ContentCategory::kChildren:
                expand_particle(e, decl.content.particle, depth);
                return;
        }
    }

    void attributes(xml::Element& e, const dtd::ElementDecl& decl) {
        for (const auto& a : decl.attributes) {
            using dtd::AttrDefaultKind;
            using dtd::AttrType;
            bool required = a.default_kind == AttrDefaultKind::kRequired;
            if (!required && a.default_kind == AttrDefaultKind::kImplied &&
                a.type != AttrType::kIdRef && a.type != AttrType::kIdRefs &&
                !rng_.chance(0.5))
                continue;
            switch (a.type) {
                case AttrType::kId: {
                    std::string id = "id" + std::to_string(++id_counter_);
                    ids_.push_back(id);
                    e.set_attribute(a.name, std::move(id));
                    break;
                }
                case AttrType::kIdRef:
                case AttrType::kIdRefs:
                    // Filled (or dropped) by the post-pass once the
                    // document's ID population is known.
                    pending_idrefs_.emplace_back(&e, a.name);
                    break;
                case AttrType::kEnumeration:
                case AttrType::kNotation:
                    if (!a.enumeration.empty())
                        e.set_attribute(
                            a.name,
                            a.enumeration[rng_.below(a.enumeration.size())]);
                    break;
                case AttrType::kNmToken:
                    e.set_attribute(a.name,
                                    kWords[rng_.below(std::size(kWords))]);
                    break;
                default:
                    if (a.default_kind == AttrDefaultKind::kFixed ||
                        (a.default_kind == AttrDefaultKind::kDefault &&
                         rng_.chance(0.5)))
                        e.set_attribute(a.name, a.default_value);
                    else
                        e.set_attribute(a.name, words());
                    break;
            }
        }
    }

    void expand_particle(xml::Element& parent, const Particle& p,
                         std::size_t depth) {
        std::size_t base_min = [&] {
            Particle once = p;
            once.occurrence = Occurrence::kOne;
            return min_.particle(once);
        }();

        std::size_t repetitions = 0;
        switch (p.occurrence) {
            case Occurrence::kOne:
                repetitions = 1;
                break;
            case Occurrence::kOptional:
                repetitions =
                    (!tight(base_min) && rng_.chance(params_.optional_probability))
                        ? 1
                        : 0;
                break;
            case Occurrence::kZeroOrMore:
            case Occurrence::kOneOrMore: {
                repetitions = p.occurrence == Occurrence::kOneOrMore ? 1 : 0;
                // Repetition is the size lever: with plenty of budget left,
                // continue more aggressively (and beyond max_repeat) so
                // documents actually approach max_elements.
                double fill = params_.max_elements == 0
                                  ? 0.0
                                  : static_cast<double>(budget_) /
                                        static_cast<double>(params_.max_elements);
                double cont =
                    std::max(params_.repeat_continue, std::min(0.95, fill));
                std::size_t unit = std::max<std::size_t>(base_min, 1);
                std::size_t cap =
                    std::max(params_.max_repeat, budget_ / (4 * unit));
                while (repetitions < cap &&
                       !tight((repetitions + 1) * unit) && rng_.chance(cont))
                    ++repetitions;
                if (p.occurrence == Occurrence::kZeroOrMore && repetitions == 0 &&
                    !tight(base_min) && rng_.chance(cont))
                    repetitions = 1;
                break;
            }
        }

        for (std::size_t r = 0; r < repetitions; ++r) {
            switch (p.kind) {
                case dtd::ParticleKind::kElement: {
                    const dtd::ElementDecl* decl = dtd_.element(p.name);
                    if (decl == nullptr) break;
                    // Skipping a required child would break validity; a DTD
                    // that forces unbounded depth is the caller's bug.
                    if (depth >= params_.max_depth)
                        throw SchemaError(
                            "document generation exceeded max_depth (does the "
                            "DTD require unbounded recursion?)");
                    expand(*parent.append_element(p.name), *decl, depth + 1);
                    break;
                }
                case dtd::ParticleKind::kSequence:
                    for (const auto& c : p.children)
                        expand_particle(parent, c, depth);
                    break;
                case dtd::ParticleKind::kChoice: {
                    if (p.children.empty()) break;
                    // Budget-pressured choices take the cheapest member.
                    const Particle* pick = nullptr;
                    if (tight(base_min + 4)) {
                        std::size_t best = kInf + 1;
                        for (const auto& c : p.children) {
                            std::size_t s = min_.particle(c);
                            if (s < best) {
                                best = s;
                                pick = &c;
                            }
                        }
                    } else {
                        pick = &p.children[rng_.below(p.children.size())];
                    }
                    if (pick != nullptr) expand_particle(parent, *pick, depth);
                    break;
                }
            }
        }
    }

    void fix_references(xml::Document&) {
        for (auto& [element, attr] : pending_idrefs_) {
            if (ids_.empty()) {
                element->remove_attribute(attr);
                continue;
            }
            element->set_attribute(attr, ids_[rng_.below(ids_.size())]);
        }
        pending_idrefs_.clear();
    }
};

}  // namespace

std::unique_ptr<xml::Document> generate_document(const dtd::Dtd& dtd,
                                                 const std::string& root,
                                                 const DocGenParams& params) {
    DocGenerator generator(dtd, params);
    return generator.run(root);
}

std::unique_ptr<xml::Document> generate_document(const dtd::Dtd& dtd,
                                                 const DocGenParams& params) {
    std::vector<std::string> roots = dtd.root_candidates();
    std::string root =
        !roots.empty() ? roots.front()
        : !dtd.elements().empty() ? dtd.elements().front().name
                                  : throw SchemaError("empty DTD");
    return generate_document(dtd, root, params);
}

}  // namespace xr::gen
