// DTD-conforming document generator.
//
// Instantiates content models recursively under an element budget; when
// the budget runs low the generator takes minimal expansions (skip
// optionals, zero repetitions, cheapest choice member) so documents stay
// valid even for recursive DTDs like the paper's book/editor/monograph
// cycle.  ID values are unique per document; IDREF attributes are filled
// in a post-pass from the document's own IDs (or omitted when implied and
// no target exists).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dtd/dtd.hpp"
#include "xml/dom.hpp"

namespace xr::gen {

struct DocGenParams {
    /// Soft cap on total elements per document.
    std::size_t max_elements = 1000;
    std::size_t max_depth = 64;
    /// Probability of materializing an optional particle.
    double optional_probability = 0.5;
    /// Continuation probability of '*' / '+' repetitions (geometric).
    double repeat_continue = 0.5;
    std::size_t max_repeat = 5;
    /// Words per generated text node.
    std::size_t words_per_text = 3;
    std::uint64_t seed = 1;
};

/// Generate a document rooted at `root` (must be declared in `dtd`).
[[nodiscard]] std::unique_ptr<xml::Document> generate_document(
    const dtd::Dtd& dtd, const std::string& root, const DocGenParams& params);

/// Generate a document rooted at the DTD's first root candidate (or its
/// first element when every element is referenced).
[[nodiscard]] std::unique_ptr<xml::Document> generate_document(
    const dtd::Dtd& dtd, const DocGenParams& params);

}  // namespace xr::gen
