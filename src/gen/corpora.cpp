#include "gen/corpora.hpp"

#include "dtd/parser.hpp"

namespace xr::gen {

const char* paper_dtd_text() {
    return R"(<!ELEMENT book (booktitle, (author* | editor))>
<!ELEMENT booktitle (#PCDATA)>
<!ELEMENT article (title, (author, affiliation?)+, contactauthor?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT contactauthor EMPTY>
<!ATTLIST contactauthor authorid IDREF #IMPLIED>
<!ELEMENT monograph (title, author, editor)>
<!ELEMENT editor ((book | monograph)*)>
<!ATTLIST editor name CDATA #REQUIRED>
<!ELEMENT author (name)>
<!ATTLIST author id ID #REQUIRED>
<!ELEMENT name (firstname?, lastname)>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT affiliation ANY>
)";
}

dtd::Dtd paper_dtd() { return dtd::parse_dtd(paper_dtd_text()); }

const char* paper_sample_document() {
    return R"(<article>
  <title>XML RDBMS</title>
  <author id="a1">
    <name><firstname>John</firstname><lastname>Smith</lastname></name>
  </author>
  <affiliation>GTE Laboratories</affiliation>
  <author id="a2">
    <name><firstname>Dave</firstname><lastname>Brown</lastname></name>
  </author>
  <contactauthor authorid="a1"/>
</article>
)";
}

const char* orders_dtd_text() {
    return R"(<!ELEMENT order (customer, shipping?, item+, note?)>
<!ATTLIST order id ID #REQUIRED
                status (pending | shipped | delivered) "pending">
<!ELEMENT customer (name, email?)>
<!ATTLIST customer cid CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT shipping (street, city, (zip | postcode))>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT zip (#PCDATA)>
<!ELEMENT postcode (#PCDATA)>
<!ELEMENT item (product, quantity, price)>
<!ATTLIST item sku CDATA #REQUIRED>
<!ELEMENT product (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT note (#PCDATA)>
)";
}

dtd::Dtd orders_dtd() { return dtd::parse_dtd(orders_dtd_text()); }

std::vector<std::unique_ptr<xml::Document>> bibliography_corpus(
    std::size_t count, std::size_t elements_per_doc, std::uint64_t seed) {
    dtd::Dtd dtd = paper_dtd();
    std::vector<std::unique_ptr<xml::Document>> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        DocGenParams params;
        params.max_elements = elements_per_doc;
        params.seed = seed + i;
        out.push_back(generate_document(dtd, "article", params));
    }
    return out;
}

std::vector<std::unique_ptr<xml::Document>> orders_corpus(
    std::size_t count, std::size_t elements_per_doc, std::uint64_t seed) {
    dtd::Dtd dtd = orders_dtd();
    std::vector<std::unique_ptr<xml::Document>> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        DocGenParams params;
        params.max_elements = elements_per_doc;
        params.seed = seed + i;
        out.push_back(generate_document(dtd, "order", params));
    }
    return out;
}

}  // namespace xr::gen
