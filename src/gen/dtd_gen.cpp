#include "gen/dtd_gen.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace xr::gen {

namespace {

using dtd::Occurrence;
using dtd::Particle;

Occurrence random_occurrence(SplitMix64& rng, const DtdGenParams& p) {
    if (rng.chance(p.repeat_probability))
        return rng.chance(0.5) ? Occurrence::kZeroOrMore : Occurrence::kOneOrMore;
    if (rng.chance(p.optional_probability)) return Occurrence::kOptional;
    return Occurrence::kOne;
}

}  // namespace

dtd::Dtd generate_dtd(const DtdGenParams& params) {
    SplitMix64 rng(params.seed);
    const std::size_t n = std::max<std::size_t>(params.element_count, 2);

    auto elem_name = [](std::size_t i) { return "e" + std::to_string(i); };

    // Leaves: the last pcdata_ratio fraction of elements hold text.
    std::size_t first_leaf =
        n - std::max<std::size_t>(1, static_cast<std::size_t>(
                                         static_cast<double>(n) * params.pcdata_ratio));
    first_leaf = std::max<std::size_t>(first_leaf, 1);

    // Every element i > 0 gets a primary parent < min(i, first_leaf) so the
    // whole DTD is reachable from e0 and internal nodes stay internal.
    std::vector<std::vector<std::size_t>> children(n);
    for (std::size_t i = 1; i < n; ++i) {
        std::size_t bound = std::min(i, first_leaf);
        std::size_t parent = bound == 0 ? 0 : static_cast<std::size_t>(
                                                  rng.below(bound));
        children[parent].push_back(i);
    }
    // Extra references to create shared elements (in-degree ≥ 2) — the case
    // that separates shared from hybrid inlining.
    for (std::size_t i = 2; i < n; ++i) {
        if (!rng.chance(0.15)) continue;
        std::size_t bound = std::min(i, first_leaf);
        std::size_t parent = static_cast<std::size_t>(rng.below(bound));
        auto& list = children[parent];
        if (std::find(list.begin(), list.end(), i) == list.end() &&
            list.size() < params.max_children * 2)
            list.push_back(i);
    }

    dtd::Dtd out;
    bool have_id = false;
    for (std::size_t i = 0; i < n; ++i) {
        dtd::ElementDecl decl;
        decl.name = elem_name(i);

        if (i >= first_leaf || children[i].empty()) {
            decl.content = dtd::ContentModel::pcdata();
        } else {
            // Build a content model over the children: consecutive members
            // are merged into nested groups with probability
            // group_probability.
            std::vector<Particle> members;
            std::size_t k = 0;
            const auto& kids = children[i];
            while (k < kids.size()) {
                bool group = kids.size() - k >= 2 &&
                             rng.chance(params.group_probability);
                if (group) {
                    std::size_t take = std::min<std::size_t>(
                        kids.size() - k,
                        2 + static_cast<std::size_t>(rng.below(2)));
                    std::vector<Particle> sub;
                    for (std::size_t j = 0; j < take; ++j)
                        sub.push_back(Particle::element(
                            elem_name(kids[k + j]),
                            random_occurrence(rng, params)));
                    Particle g = rng.chance(params.choice_probability)
                                     ? Particle::choice(std::move(sub))
                                     : Particle::sequence(std::move(sub));
                    g.occurrence = random_occurrence(rng, params);
                    members.push_back(std::move(g));
                    k += take;
                } else {
                    members.push_back(Particle::element(
                        elem_name(kids[k]), random_occurrence(rng, params)));
                    ++k;
                }
            }
            decl.content =
                dtd::ContentModel::children(Particle::sequence(std::move(members)));
        }

        // Attributes: expected count ≈ attributes_per_element, but capped
        // per-draw probability so a fraction of elements stay
        // attribute-less — those are the distillation candidates.
        std::size_t attr_count = 0;
        double expect = params.attributes_per_element;
        while (expect > 0 && rng.chance(std::min(expect, 0.7))) {
            dtd::AttributeDecl a;
            a.name = "a" + std::to_string(attr_count++);
            a.type = dtd::AttrType::kCData;
            a.default_kind = rng.chance(0.5) ? dtd::AttrDefaultKind::kRequired
                                             : dtd::AttrDefaultKind::kImplied;
            decl.attributes.push_back(std::move(a));
            expect -= 1.0;
        }
        if (rng.chance(params.id_probability)) {
            dtd::AttributeDecl a;
            a.name = "id";
            a.type = dtd::AttrType::kId;
            a.default_kind = dtd::AttrDefaultKind::kRequired;
            decl.attributes.push_back(std::move(a));
            have_id = true;
        }
        if (have_id && rng.chance(params.idref_probability)) {
            dtd::AttributeDecl a;
            a.name = "ref";
            a.type = dtd::AttrType::kIdRef;
            // Implied: the generator only fills it when a target ID exists.
            a.default_kind = dtd::AttrDefaultKind::kImplied;
            decl.attributes.push_back(std::move(a));
        }

        out.add_element(std::move(decl));
    }
    return out;
}

}  // namespace xr::gen
