// Random DTD generator for parameter sweeps.
//
// Produces acyclic DTDs with a single root (element e0), controllable
// size, grouping/choice density, occurrence indicators, and ID/IDREF
// attributes — the knobs the benchmark sweeps in EXPERIMENTS.md exercise.
// Generation is fully determined by the seed.
#pragma once

#include <cstdint>

#include "dtd/dtd.hpp"

namespace xr::gen {

struct DtdGenParams {
    std::size_t element_count = 20;
    /// Maximum direct members in a content model.
    std::size_t max_children = 4;
    /// Probability that a member is a nested group rather than a ref.
    double group_probability = 0.3;
    /// Probability a generated group is a choice (else sequence).
    double choice_probability = 0.4;
    double optional_probability = 0.25;  ///< '?'
    double repeat_probability = 0.25;    ///< '*' or '+'
    /// Fraction of elements that are #PCDATA leaves.
    double pcdata_ratio = 0.4;
    /// Expected CDATA attributes per element.
    double attributes_per_element = 1.0;
    /// Probability an element declares an ID attribute.
    double id_probability = 0.15;
    /// Probability an element declares an (implied) IDREF attribute.
    double idref_probability = 0.10;
    std::uint64_t seed = 1;
};

[[nodiscard]] dtd::Dtd generate_dtd(const DtdGenParams& params);

}  // namespace xr::gen
