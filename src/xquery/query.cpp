#include "xquery/query.hpp"

#include <cctype>

#include "common/cursor.hpp"

namespace xr::xquery {

namespace {

class QueryParser {
public:
    explicit QueryParser(std::string_view text) : cur_(text) {}

    PathQuery run() {
        PathQuery q;
        cur_.skip_space();
        if (cur_.consume("count")) {
            cur_.skip_space();
            if (!cur_.consume("(")) cur_.fail("expected '(' after count");
            q.count = true;
            q.steps = path();
            cur_.skip_space();
            if (!cur_.consume(")")) cur_.fail("expected ')' to close count");
        } else {
            q.steps = path();
        }
        cur_.skip_space();
        if (!cur_.at_end()) cur_.fail("trailing input after query");
        if (q.steps.empty()) cur_.fail("empty path");
        for (std::size_t i = 0; i + 1 < q.steps.size(); ++i) {
            if (q.steps[i].attribute || q.steps[i].text_fn)
                cur_.fail("@attribute / text() must be the final step");
        }
        return q;
    }

private:
    Cursor cur_;

    std::vector<Step> path() {
        std::vector<Step> steps;
        cur_.skip_space();
        if (!cur_.consume("/")) cur_.fail("path must start with '/'");
        bool descendant = cur_.consume("/");  // leading '//'
        for (;;) {
            Step s = step();
            s.descendant = descendant;
            steps.push_back(std::move(s));
            cur_.skip_space();
            if (!cur_.consume("/")) break;
            descendant = cur_.consume("/");
        }
        return steps;
    }

    Step step() {
        Step s;
        cur_.skip_space();
        if (cur_.consume("@")) {
            s.attribute = true;
            s.name = name("attribute name");
            return s;
        }
        if (cur_.lookahead("text()")) {
            cur_.consume("text()");
            s.text_fn = true;
            return s;
        }
        if (cur_.consume("*")) s.name = "*";
        else s.name = name("element name");
        cur_.skip_space();
        while (cur_.consume("[")) {
            s.predicates.push_back(predicate());
            cur_.skip_space();
            if (!cur_.consume("]")) cur_.fail("expected ']' to close predicate");
            cur_.skip_space();
        }
        return s;
    }

    Predicate predicate() {
        Predicate p;
        cur_.skip_space();
        if (std::isdigit(static_cast<unsigned char>(cur_.peek()))) {
            p.kind = Predicate::Kind::kPosition;
            std::string digits;
            while (std::isdigit(static_cast<unsigned char>(cur_.peek())))
                digits += cur_.advance();
            p.position = static_cast<std::size_t>(std::stoull(digits));
            if (p.position == 0) cur_.fail("positions are 1-based");
            return p;
        }
        if (cur_.lookahead("ancestor::")) {
            cur_.consume("ancestor::");
            p.kind = Predicate::Kind::kAncestor;
            p.path.elements.push_back(name("element name"));
            return p;
        }
        p.path = rel_path();
        cur_.skip_space();
        if (cur_.consume("!=")) p.op = "!=";
        else if (cur_.consume("=")) p.op = "=";
        else {
            p.kind = Predicate::Kind::kExists;
            return p;
        }
        p.kind = Predicate::Kind::kCompare;
        cur_.skip_space();
        char quote = cur_.peek();
        if (quote != '\'' && quote != '"')
            cur_.fail("expected quoted literal in predicate");
        cur_.advance();
        while (!cur_.at_end() && cur_.peek() != quote) p.literal += cur_.advance();
        if (!cur_.consume(std::string_view(&quote, 1)))
            cur_.fail("unterminated literal");
        return p;
    }

    RelPath rel_path() {
        RelPath rp;
        for (;;) {
            cur_.skip_space();
            if (cur_.consume("@")) {
                rp.attribute = name("attribute name");
                return rp;
            }
            if (cur_.lookahead("text()")) {
                cur_.consume("text()");
                rp.text = true;
                return rp;
            }
            rp.elements.push_back(name("element name"));
            if (!cur_.consume("/")) return rp;
        }
    }

    std::string name(const std::string& what) {
        std::string out;
        while (!cur_.at_end()) {
            char c = cur_.peek();
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                c == '-' || c == '_' || c == ':')
                out += cur_.advance();
            else
                break;
        }
        if (!is_xml_name(out)) cur_.fail("invalid " + what);
        return out;
    }
};

}  // namespace

std::string RelPath::to_string() const {
    std::string out;
    for (std::size_t i = 0; i < elements.size(); ++i) {
        if (i != 0) out += "/";
        out += elements[i];
    }
    if (!attribute.empty()) {
        if (!out.empty()) out += "/";
        out += "@" + attribute;
    }
    if (text) {
        if (!out.empty()) out += "/";
        out += "text()";
    }
    return out;
}

std::string Predicate::to_string() const {
    switch (kind) {
        case Kind::kPosition: return std::to_string(position);
        case Kind::kExists: return path.to_string();
        case Kind::kCompare:
            return path.to_string() + " " + op + " '" + literal + "'";
        case Kind::kAncestor:
            return "ancestor::" +
                   (path.elements.empty() ? "?" : path.elements.front());
    }
    return "?";
}

std::string Step::to_string() const {
    if (attribute) return "@" + name;
    if (text_fn) return "text()";
    std::string out = name;
    for (const auto& p : predicates) out += "[" + p.to_string() + "]";
    return out;
}

std::string PathQuery::to_string() const {
    std::string out;
    for (const auto& s : steps) out += (s.descendant ? "//" : "/") + s.to_string();
    if (count) out = "count(" + out + ")";
    return out;
}

bool PathQuery::yields_strings() const {
    if (steps.empty()) return false;
    return steps.back().attribute || steps.back().text_fn;
}

PathQuery parse_query(std::string_view text) {
    QueryParser parser(text);
    return parser.run();
}

}  // namespace xr::xquery
