// Result materialization: execute a translated path query and render the
// answer back as XML.
//
// This closes the loop the paper's Section 5 opens: an XML query arrives,
// is transformed into "meaningful SQL", runs against the relational store
// — and the answer leaves the system as XML again, with matched elements
// reconstructed (subtrees included) from the tables.
#pragma once

#include <memory>

#include "loader/reconstruct.hpp"
#include "rdb/database.hpp"
#include "xml/dom.hpp"
#include "xquery/sql_translate.hpp"

namespace xr::xquery {

/// Execute `translation` against `db` and wrap the results in a document:
///
///   * kNodes   → <results><article>…</article>…</results>, each matched
///                element reconstructed in full via `reconstructor`;
///   * kStrings → <results><value>…</value>…</results>;
///   * kCount   → <results count="N"/>.
[[nodiscard]] std::unique_ptr<xml::Document> materialize_results(
    rdb::Database& db, const Translation& translation,
    const loader::Reconstructor& reconstructor);

}  // namespace xr::xquery
