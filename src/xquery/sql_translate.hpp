// Path-query → SQL translation over the mapped relational schema —
// the paper's "how do we transform ... queries into meaningful SQL
// queries?" (Section 5, Query Processing).
//
// Translation navigates by mapping provenance: a path step becomes a join
// chain through NESTED / NESTED_GROUP / member-link tables; a step that was
// distilled into an attribute column becomes a column access on its owner
// table; predicates become WHERE conditions (existence predicates are
// enforced by the inner joins themselves).  Positional predicates have no
// relational equivalent here and raise QueryError — the documented
// limitation the paper's metadata discussion anticipates.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mapping/pipeline.hpp"
#include "rel/schema.hpp"
#include "xquery/query.hpp"

namespace xr::xquery {

struct Translation {
    std::string sql;
    enum class Yield {
        kNodes,    ///< SELECT DISTINCT <alias>.pk — one row per element
        kStrings,  ///< last column carries the attribute/text value
        kCount,    ///< single COUNT value
    };
    Yield yield = Yield::kNodes;
    /// Number of JOIN clauses — the query-shape metric for the benches.
    std::size_t join_count = 0;
    /// Entity whose rows the query selects (kNodes / kStrings) — result
    /// materialization reconstructs elements of this type from the pks.
    std::string target_entity;
};

class SqlTranslator {
public:
    SqlTranslator(const mapping::MappingResult& mapping,
                  const rel::RelationalSchema& schema);

    /// Translate a parsed query; throws xr::QueryError when the query has
    /// no relational equivalent (unknown names, positional predicates).
    [[nodiscard]] Translation translate(const PathQuery& query) const;

private:
    struct Hop {
        enum class Kind { kNested, kGroup, kMemberColumn, kMemberLink };
        Kind kind = Kind::kNested;
        std::string to;  ///< node name: entity or group-relationship
        const rel::TableSchema* rel_table = nullptr;
        std::string member_column;  ///< for kMemberColumn
        const rel::TableSchema* target_table = nullptr;  ///< entity table
    };

    const mapping::MappingResult& mapping_;
    const rel::RelationalSchema& schema_;
    std::map<std::string, std::vector<Hop>> edges_;
    /// node → (child element name → value column on the node's table)
    std::map<std::string, std::map<std::string, std::string>> distilled_;
    /// node name → its table (entity or group relationship)
    std::map<std::string, const rel::TableSchema*> node_tables_;
    /// (source entity, IDREF attribute) → its REFERENCE table; such
    /// attributes live in reference rows, not entity columns.
    std::map<std::pair<std::string, std::string>, const rel::TableSchema*>
        ref_tables_;

    [[nodiscard]] std::vector<const Hop*> find_path(const std::string& from,
                                                    const std::string& to) const;
};

}  // namespace xr::xquery
