// Path-query → SQL translation over the mapped relational schema —
// the paper's "how do we transform ... queries into meaningful SQL
// queries?" (Section 5, Query Processing).
//
// Translation navigates by mapping provenance: a path step becomes a join
// chain through NESTED / NESTED_GROUP / member-link tables; a step that was
// distilled into an attribute column becomes a column access on its owner
// table; predicates become WHERE conditions (existence predicates are
// enforced by the inner joins themselves).  Positional predicates have no
// relational equivalent here and raise QueryError — the documented
// limitation the paper's metadata discussion anticipates.
//
// Descendant ('//') steps and [ancestor::name] predicates translate via
// the structural (pre, post) interval labels (DESIGN.md §10): descendant
// containment is a single range join instead of a join chain.  The legacy
// expansion — unroll '//' into the unique NESTED join chain when one
// exists — stays available behind TranslateOptions::use_struct_index for
// differential testing and for schemas loaded without labels.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "mapping/pipeline.hpp"
#include "rel/schema.hpp"
#include "xquery/query.hpp"

namespace xr::xquery {

/// Per-translation knobs (the query service exposes them per session).
struct TranslateOptions {
    /// Use the structural (pre, post) interval labels for '//' steps and
    /// [ancestor::name] predicates.  When false, '//' falls back to the
    /// legacy unique-join-chain expansion and ancestor predicates raise
    /// QueryError — the pre-index behaviour, kept for differential tests.
    bool use_struct_index = true;
    /// Cooperative cancellation handle (DESIGN.md §11): polled inside the
    /// legacy '//' chain-expansion DFS, whose fan-out on pathological
    /// schemas is the one translation-time cost worth a deadline.  Does not
    /// participate in plan-cache keys (an inert token is the default).
    CancelToken cancel;
};

struct Translation {
    std::string sql;
    enum class Yield {
        kNodes,    ///< SELECT DISTINCT <alias>.pk — one row per element
        kStrings,  ///< last column carries the attribute/text value
        kCount,    ///< single COUNT value
    };
    Yield yield = Yield::kNodes;
    /// Number of JOIN clauses — the query-shape metric for the benches.
    std::size_t join_count = 0;
    /// Entity whose rows the query selects (kNodes / kStrings) — result
    /// materialization reconstructs elements of this type from the pks.
    std::string target_entity;
    /// True when any step or predicate used an interval containment plan.
    bool interval_plan = false;
    /// EXPLAIN-lite: one clause per non-trivial planning decision.
    std::string plan_notes;
};

class SqlTranslator {
public:
    SqlTranslator(const mapping::MappingResult& mapping,
                  const rel::RelationalSchema& schema);

    /// Translate a parsed query; throws xr::QueryError when the query has
    /// no relational equivalent (unknown names, positional predicates).
    [[nodiscard]] Translation translate(const PathQuery& query) const;
    [[nodiscard]] Translation translate(const PathQuery& query,
                                        const TranslateOptions& options) const;

private:
    struct Hop {
        enum class Kind { kNested, kGroup, kMemberColumn, kMemberLink };
        Kind kind = Kind::kNested;
        std::string to;  ///< node name: entity or group-relationship
        const rel::TableSchema* rel_table = nullptr;
        std::string member_column;  ///< for kMemberColumn
        const rel::TableSchema* target_table = nullptr;  ///< entity table
    };

    const mapping::MappingResult& mapping_;
    const rel::RelationalSchema& schema_;
    std::map<std::string, std::vector<Hop>> edges_;
    /// node → (child element name → value column on the node's table)
    std::map<std::string, std::map<std::string, std::string>> distilled_;
    /// node name → its table (entity or group relationship)
    std::map<std::string, const rel::TableSchema*> node_tables_;
    /// (source entity, IDREF attribute) → its REFERENCE table; such
    /// attributes live in reference rows, not entity columns.
    std::map<std::pair<std::string, std::string>, const rel::TableSchema*>
        ref_tables_;

    [[nodiscard]] std::vector<const Hop*> find_path(const std::string& from,
                                                    const std::string& to) const;
    /// Exhaustive hop-path enumeration for the legacy '//' expansion:
    /// element nodes may be intermediate (a descendant step skips levels).
    /// Stops after `max_paths`; sets *exhausted when the search hit a cycle
    /// or its expansion budget, in which case the result is a lower bound
    /// and the caller must treat the step as untranslatable.  `cancel` is
    /// polled every few DFS steps.
    [[nodiscard]] std::vector<std::vector<const Hop*>> find_descendant_paths(
        const std::string& from, const std::string& to, std::size_t max_paths,
        bool* exhausted, const CancelToken& cancel) const;
};

}  // namespace xr::xquery
