#include "xquery/plan_cache.hpp"

namespace xr::xquery {

Translation TranslationCache::get(const PathQuery& query) {
    return get(query, TranslateOptions{});
}

Translation TranslationCache::get(const PathQuery& query,
                                  const TranslateOptions& options,
                                  std::uint64_t stats_epoch) {
    std::string key = (options.use_struct_index ? "S:" : "L:") +
                      std::to_string(stats_epoch) + ":" + query.to_string();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->translation;
    }
    ++stats_.misses;
    Translation t = translator_.translate(query, options);  // may throw; not cached
    if (capacity_ == 0) return t;
    lru_.push_front(Entry{key, t});
    index_.emplace(std::move(key), lru_.begin());
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
    }
    return t;
}

PlanCacheStats TranslationCache::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t TranslationCache::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
}

void TranslationCache::clear() {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
}

}  // namespace xr::xquery
