// Direct DOM evaluation of path queries — the "querying the XML documents
// directly" side of the paper's Section 5 performance question.
#pragma once

#include <string>
#include <vector>

#include "xml/dom.hpp"
#include "xquery/query.hpp"

namespace xr::xquery {

struct DomResult {
    std::vector<const xml::Element*> nodes;  ///< element results
    std::vector<std::string> strings;        ///< attribute/text() results
    bool counted = false;
    std::size_t count = 0;

    /// Number of results regardless of flavour.
    [[nodiscard]] std::size_t size() const {
        if (counted) return count;
        return nodes.empty() ? strings.size() : nodes.size();
    }
};

/// Evaluate against a single document.
[[nodiscard]] DomResult evaluate(const xml::Document& doc, const PathQuery& query);

/// Evaluate against a corpus; results concatenate in corpus order.
[[nodiscard]] DomResult evaluate(
    const std::vector<const xml::Document*>& corpus, const PathQuery& query);

}  // namespace xr::xquery
