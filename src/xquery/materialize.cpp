#include "xquery/materialize.hpp"

#include "sql/executor.hpp"

namespace xr::xquery {

std::unique_ptr<xml::Document> materialize_results(
    rdb::Database& db, const Translation& translation,
    const loader::Reconstructor& reconstructor) {
    sql::ResultSet rs = sql::execute(db, translation.sql);

    auto doc = std::make_unique<xml::Document>();
    xml::Element* root = doc->make_root("results");

    switch (translation.yield) {
        case Translation::Yield::kCount:
            root->set_attribute("count", rs.scalar().to_string());
            break;
        case Translation::Yield::kStrings:
            // Last column carries the extracted value; NULLs are absent
            // attributes / empty matches and are skipped.
            for (const auto& row : rs.rows) {
                if (row.back().is_null()) continue;
                root->append_element("value")->append_text(
                    row.back().to_string());
            }
            break;
        case Translation::Yield::kNodes:
            // First column is the matched entity's pk.
            for (const auto& row : rs.rows) {
                root->append_child(reconstructor.reconstruct_element(
                    translation.target_entity, row.front().as_integer()));
            }
            break;
    }
    return doc;
}

}  // namespace xr::xquery
