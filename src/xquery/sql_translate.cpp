#include "xquery/sql_translate.hpp"

#include <deque>
#include <set>

#include "common/strings.hpp"

namespace xr::xquery {

SqlTranslator::SqlTranslator(const mapping::MappingResult& mapping,
                             const rel::RelationalSchema& schema)
    : mapping_(mapping), schema_(schema) {
    // Node tables.
    for (const auto& e : mapping_.converted.elements)
        node_tables_[e.name] = schema_.entity_table(e.name);
    for (const auto& g : mapping_.converted.nested_groups)
        node_tables_[g.name] = schema_.table_for(rel::TableKind::kGroupRel, g.name);

    // NESTED edges.
    for (const auto& n : mapping_.converted.nested) {
        const rel::TableSchema* rel_table =
            schema_.table_for(rel::TableKind::kNestedRel, n.name);
        const rel::TableSchema* target = schema_.entity_table(n.child);
        if (rel_table == nullptr || target == nullptr) continue;
        edges_[n.parent].push_back(
            {Hop::Kind::kNested, n.child, rel_table, "", target});
    }

    // NESTED_GROUP edges: parent → group node, group node → members.
    for (const auto& g : mapping_.converted.nested_groups) {
        const rel::TableSchema* group_table =
            schema_.table_for(rel::TableKind::kGroupRel, g.name);
        if (group_table == nullptr) continue;
        edges_[g.parent].push_back(
            {Hop::Kind::kGroup, g.name, group_table, "", nullptr});
        for (const auto& m : g.group.children) {
            if (!m.is_element() || g.is_virtual_member(m.name)) continue;
            const rel::TableSchema* target = schema_.entity_table(m.name);
            if (target == nullptr) continue;
            if (const rel::TableSchema* link = schema_.link_table(g.name, m.name)) {
                edges_[g.name].push_back(
                    {Hop::Kind::kMemberLink, m.name, link, "", target});
            } else if (const rel::Column* c = group_table->column_by_source(m.name)) {
                edges_[g.name].push_back(
                    {Hop::Kind::kMemberColumn, m.name, group_table, c->name,
                     target});
            }
        }
    }

    // REFERENCE tables: IDREF attributes were extracted from entities, so
    // @attr access on them joins the reference table instead.
    for (const auto& r : mapping_.converted.references) {
        const rel::TableSchema* entity = schema_.entity_table(r.source);
        if (entity == nullptr) continue;
        for (const std::string& cand :
             {r.attribute + "_" + r.source, r.attribute}) {
            const rel::TableSchema* t =
                schema_.table_for(rel::TableKind::kReferenceRel, cand);
            if (t == nullptr) continue;
            const rel::Column* sc = t->column("source_pk");
            if (sc != nullptr && sc->references == entity->name) {
                ref_tables_[{r.source, r.attribute}] = t;
                break;
            }
        }
    }

    // Distilled value columns per owner node.
    for (const auto& d : mapping_.metadata.distilled) {
        std::string node = d.element;
        const rel::TableSchema* table = nullptr;
        if (mapping_.metadata.group(node) != nullptr) {
            node = "N" + node;  // virtual element → its relationship node
            table = schema_.table_for(rel::TableKind::kGroupRel, node);
        } else {
            table = schema_.entity_table(node);
        }
        if (table == nullptr) continue;
        if (const rel::Column* c = table->column_by_source(d.attribute))
            distilled_[node][d.original_child] = c->name;
    }
}

std::vector<const SqlTranslator::Hop*> SqlTranslator::find_path(
    const std::string& from, const std::string& to) const {
    // BFS over edges; only group nodes may be intermediate (an element step
    // never passes through another element).
    struct State {
        std::string node;
        std::vector<const Hop*> path;
    };
    std::deque<State> queue;
    std::set<std::string> visited{from};
    queue.push_back({from, {}});
    while (!queue.empty()) {
        State state = std::move(queue.front());
        queue.pop_front();
        auto it = edges_.find(state.node);
        if (it == edges_.end()) continue;
        for (const Hop& hop : it->second) {
            if (hop.to == to && hop.kind != Hop::Kind::kGroup) {
                std::vector<const Hop*> path = state.path;
                path.push_back(&hop);
                return path;
            }
            if (hop.kind == Hop::Kind::kGroup && visited.insert(hop.to).second) {
                State next = state;
                next.node = hop.to;
                next.path.push_back(&hop);
                queue.push_back(std::move(next));
            }
        }
    }
    return {};
}

namespace {

/// Builder for the FROM/JOIN/WHERE clauses.
struct SqlBuilder {
    std::string from;
    std::vector<std::string> joins;
    std::vector<std::string> where;
    std::string group_by;
    std::string having;
    int alias_counter = 0;

    std::string alias() { return "t" + std::to_string(alias_counter++); }

    [[nodiscard]] std::string render(const std::string& select) const {
        std::string sql = "SELECT " + select + " FROM " + from;
        for (const auto& j : joins) sql += " " + j;
        for (std::size_t i = 0; i < where.size(); ++i)
            sql += (i == 0 ? " WHERE " : " AND ") + where[i];
        if (!group_by.empty()) sql += " GROUP BY " + group_by;
        if (!having.empty()) sql += " HAVING " + having;
        return sql;
    }
};

struct NodeCtx {
    std::string node;   ///< entity or group-relationship name
    std::string alias;  ///< SQL alias of its table
    const rel::TableSchema* table = nullptr;
    /// How this step was reached: the NESTED relationship table + alias
    /// (positional predicates count ord-predecessors over it).
    std::string via_nested_table;
    std::string via_nested_alias;
};

}  // namespace

Translation SqlTranslator::translate(const PathQuery& query) const {
    if (query.steps.empty()) throw QueryError("empty path query");
    const Step& root_step = query.steps.front();
    if (root_step.attribute || root_step.text_fn)
        throw QueryError("the root step must be an element");
    for (const auto& step : query.steps) {
        if (step.descendant)
            throw QueryError(
                "the descendant axis ('//') has no SQL translation in this "
                "dialect (it would need recursive queries)");
        if (step.name == "*")
            throw QueryError(
                "the '*' wildcard step has no SQL translation in this "
                "dialect (it would need a UNION over every child table)");
    }

    SqlBuilder sql;

    auto node_table = [&](const std::string& node) -> const rel::TableSchema* {
        auto it = node_tables_.find(node);
        if (it == node_tables_.end() || it->second == nullptr)
            throw QueryError("no relational mapping for '" + node + "'");
        return it->second;
    };

    // Navigate one element step from `ctx`, appending joins.
    auto navigate = [&](const NodeCtx& ctx,
                        const std::string& child) -> NodeCtx {
        std::vector<const Hop*> path = find_path(ctx.node, child);
        if (path.empty())
            throw QueryError("no relationship path from '" + ctx.node + "' to '" +
                             child + "'");
        NodeCtx current = ctx;
        for (const Hop* hop : path) {
            switch (hop->kind) {
                case Hop::Kind::kNested: {
                    std::string r = sql.alias();
                    sql.joins.push_back("JOIN " + hop->rel_table->name + " " + r +
                                        " ON " + r + ".parent_pk = " +
                                        current.alias + ".pk");
                    std::string c = sql.alias();
                    sql.joins.push_back("JOIN " + hop->target_table->name + " " +
                                        c + " ON " + c + ".pk = " + r +
                                        ".child_pk");
                    current = {hop->to, c, hop->target_table,
                               hop->rel_table->name, r};
                    break;
                }
                case Hop::Kind::kGroup: {
                    std::string g = sql.alias();
                    sql.joins.push_back("JOIN " + hop->rel_table->name + " " + g +
                                        " ON " + g + ".parent_pk = " +
                                        current.alias + ".pk");
                    current = {hop->to, g, hop->rel_table, "", ""};
                    break;
                }
                case Hop::Kind::kMemberColumn: {
                    std::string m = sql.alias();
                    sql.joins.push_back("JOIN " + hop->target_table->name + " " +
                                        m + " ON " + m + ".pk = " + current.alias +
                                        "." + hop->member_column);
                    current = {hop->to, m, hop->target_table, "", ""};
                    break;
                }
                case Hop::Kind::kMemberLink: {
                    std::string l = sql.alias();
                    sql.joins.push_back("JOIN " + hop->rel_table->name + " " + l +
                                        " ON " + l + ".group_pk = " +
                                        current.alias + ".pk");
                    std::string m = sql.alias();
                    sql.joins.push_back("JOIN " + hop->target_table->name + " " +
                                        m + " ON " + m + ".pk = " + l +
                                        ".member_pk");
                    current = {hop->to, m, hop->target_table, "", ""};
                    break;
                }
            }
        }
        return current;
    };

    // Attribute access on an entity context: a plain column, or — for an
    // IDREF attribute turned REFERENCE — a join against the reference table.
    auto attribute_expr = [&](const NodeCtx& ctx,
                              const std::string& attr) -> std::string {
        if (const rel::Column* c = ctx.table->column_by_source(attr))
            return ctx.alias + "." + c->name;
        auto rit = ref_tables_.find({ctx.node, attr});
        if (rit != ref_tables_.end()) {
            std::string r = sql.alias();
            sql.joins.push_back("JOIN " + rit->second->name + " " + r + " ON " +
                                r + ".source_pk = " + ctx.alias + ".pk");
            return r + ".idref";
        }
        throw QueryError("no attribute '" + attr + "' on '" + ctx.node + "'");
    };

    // Value expression of a relative path from `ctx` (for predicates and
    // final extraction); navigates as needed.
    auto value_expr = [&](NodeCtx ctx, const RelPath& path) -> std::string {
        // Walk all but the last element.
        std::size_t n = path.elements.size();
        std::size_t walk = n;
        bool need_value_from_last_element =
            path.attribute.empty() && !path.text && n > 0;
        if ((path.attribute.empty() && path.text) || !path.attribute.empty()) {
            // trailing @attr or text(): walk every element first.
            walk = n;
        } else if (need_value_from_last_element) {
            walk = n - 1;  // last element may be a distilled column
        }
        for (std::size_t i = 0; i < walk; ++i)
            ctx = navigate(ctx, path.elements[i]);

        if (!path.attribute.empty()) return attribute_expr(ctx, path.attribute);
        if (path.text) {
            const rel::Column* c =
                ctx.table->column_by_role(rel::ColumnRole::kText);
            if (c == nullptr)
                throw QueryError("'" + ctx.node + "' has no text content column");
            return ctx.alias + "." + c->name;
        }
        // Bare element path: distilled column on the owner, or the element
        // entity's text column.
        const std::string& last = path.elements.back();
        auto dit = distilled_.find(ctx.node);
        if (dit != distilled_.end()) {
            auto cit = dit->second.find(last);
            if (cit != dit->second.end()) return ctx.alias + "." + cit->second;
        }
        NodeCtx final_ctx = navigate(ctx, last);
        const rel::Column* c =
            final_ctx.table->column_by_role(rel::ColumnRole::kText);
        if (c == nullptr)
            throw QueryError("element '" + last +
                             "' carries no comparable value in the mapping");
        return final_ctx.alias + "." + c->name;
    };

    auto apply_predicates = [&](const NodeCtx& ctx, const Step& step) {
        for (const auto& pred : step.predicates) {
            switch (pred.kind) {
                case Predicate::Kind::kPosition: {
                    // The paper's ord columns make sibling positions
                    // relational: the n-th same-name child is the row with
                    // exactly n ord-predecessors under the same parent.
                    // Supported when the step arrived over a NESTED
                    // relationship table that carries an ord column.
                    if (ctx.via_nested_table.empty())
                        throw QueryError(
                            "positional predicate not translatable on '" +
                            ctx.node + "' (step is not a direct NESTED "
                            "relationship)");
                    if (!sql.group_by.empty())
                        throw QueryError(
                            "only one positional predicate per query is "
                            "translatable");
                    const rel::TableSchema* rel_table =
                        schema_.table(ctx.via_nested_table);
                    if (rel_table == nullptr ||
                        rel_table->column("ord") == nullptr)
                        throw QueryError(
                            "positional predicate needs ord columns "
                            "(ordinal_columns was disabled)");
                    std::string r2 = sql.alias();
                    sql.joins.push_back(
                        "JOIN " + ctx.via_nested_table + " " + r2 + " ON " +
                        r2 + ".parent_pk = " + ctx.via_nested_alias +
                        ".parent_pk AND " + r2 + ".ord <= " +
                        ctx.via_nested_alias + ".ord");
                    sql.group_by = ctx.alias + ".pk";
                    sql.having =
                        "COUNT(*) = " + std::to_string(pred.position);
                    break;
                }
                case Predicate::Kind::kExists: {
                    if (!pred.path.attribute.empty() &&
                        pred.path.elements.empty()) {
                        sql.where.push_back(attribute_expr(ctx, pred.path.attribute) +
                                            " IS NOT NULL");
                    } else if (pred.path.attribute.empty() && !pred.path.text &&
                               !pred.path.elements.empty()) {
                        // Bare element existence: inner joins are enough —
                        // unless the final element was distilled into a
                        // column, which exists iff non-NULL.
                        NodeCtx c = ctx;
                        for (std::size_t i = 0; i + 1 < pred.path.elements.size();
                             ++i)
                            c = navigate(c, pred.path.elements[i]);
                        const std::string& last = pred.path.elements.back();
                        auto dit = distilled_.find(c.node);
                        auto cit = dit != distilled_.end()
                                       ? dit->second.find(last)
                                       : decltype(dit->second.begin())();
                        if (dit != distilled_.end() &&
                            cit != dit->second.end()) {
                            sql.where.push_back(c.alias + "." + cit->second +
                                                " IS NOT NULL");
                        } else {
                            navigate(c, last);
                        }
                    } else {
                        std::string expr = value_expr(ctx, pred.path);
                        sql.where.push_back(expr + " IS NOT NULL");
                    }
                    break;
                }
                case Predicate::Kind::kCompare: {
                    std::string expr = value_expr(ctx, pred.path);
                    const char* op = pred.op == "=" ? " = " : " <> ";
                    sql.where.push_back(expr + op + sql_quote(pred.literal));
                    break;
                }
            }
        }
    };

    // Root.
    NodeCtx ctx{root_step.name, sql.alias(), node_table(root_step.name), "", ""};
    sql.from = ctx.table->name + " " + ctx.alias;
    apply_predicates(ctx, root_step);

    // Element steps.
    std::size_t i = 1;
    std::string final_value;  // set when the path ends in a value step
    for (; i < query.steps.size(); ++i) {
        const Step& step = query.steps[i];
        if (step.attribute) {
            final_value = attribute_expr(ctx, step.name);
            break;
        }
        if (step.text_fn) {
            const rel::Column* c =
                ctx.table->column_by_role(rel::ColumnRole::kText);
            if (c != nullptr) {
                final_value = ctx.alias + "." + c->name;
            } else {
                // The element may have been fully distilled; its text lives
                // in owner columns — not reachable once we are *at* the
                // element.  Report plainly.
                throw QueryError("'" + ctx.node + "' has no text content column");
            }
            break;
        }
        // Distilled final element step yields a value column directly.
        bool is_last = i + 1 == query.steps.size();
        if (is_last && step.predicates.empty()) {
            auto dit = distilled_.find(ctx.node);
            if (dit != distilled_.end()) {
                auto cit = dit->second.find(step.name);
                if (cit != dit->second.end()) {
                    final_value = ctx.alias + "." + cit->second;
                    break;
                }
            }
        }
        if (!sql.group_by.empty())
            throw QueryError(
                "positional predicate must be on the final element step");
        ctx = navigate(ctx, step.name);
        apply_predicates(ctx, step);
    }

    Translation out;
    out.target_entity = ctx.node;
    const bool grouped = !sql.group_by.empty();  // positional predicate used
    if (query.count) {
        out.yield = Translation::Yield::kCount;
        if (grouped)
            throw QueryError(
                "count() over a positional predicate would need nested "
                "aggregation");
        if (!final_value.empty()) {
            sql.where.push_back(final_value + " IS NOT NULL");
            out.sql = sql.render("COUNT(" + final_value + ")");
        } else {
            out.sql = sql.render("COUNT(DISTINCT " + ctx.alias + ".pk)");
        }
    } else if (!final_value.empty()) {
        out.yield = Translation::Yield::kStrings;
        // Grouping already deduplicates; otherwise DISTINCT does.
        out.sql = sql.render((grouped ? "" : "DISTINCT ") + ctx.alias + ".pk, " +
                             final_value);
    } else {
        out.yield = Translation::Yield::kNodes;
        out.sql = sql.render((grouped ? "" : "DISTINCT ") + ctx.alias + ".pk");
    }
    out.join_count = sql.joins.size();
    return out;
}

}  // namespace xr::xquery
