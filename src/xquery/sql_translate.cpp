#include "xquery/sql_translate.hpp"

#include <deque>
#include <set>

#include "common/strings.hpp"

namespace xr::xquery {

SqlTranslator::SqlTranslator(const mapping::MappingResult& mapping,
                             const rel::RelationalSchema& schema)
    : mapping_(mapping), schema_(schema) {
    // Node tables.
    for (const auto& e : mapping_.converted.elements)
        node_tables_[e.name] = schema_.entity_table(e.name);
    for (const auto& g : mapping_.converted.nested_groups)
        node_tables_[g.name] = schema_.table_for(rel::TableKind::kGroupRel, g.name);

    // NESTED edges.
    for (const auto& n : mapping_.converted.nested) {
        const rel::TableSchema* rel_table =
            schema_.table_for(rel::TableKind::kNestedRel, n.name);
        const rel::TableSchema* target = schema_.entity_table(n.child);
        if (rel_table == nullptr || target == nullptr) continue;
        edges_[n.parent].push_back(
            {Hop::Kind::kNested, n.child, rel_table, "", target});
    }

    // NESTED_GROUP edges: parent → group node, group node → members.
    for (const auto& g : mapping_.converted.nested_groups) {
        const rel::TableSchema* group_table =
            schema_.table_for(rel::TableKind::kGroupRel, g.name);
        if (group_table == nullptr) continue;
        edges_[g.parent].push_back(
            {Hop::Kind::kGroup, g.name, group_table, "", nullptr});
        for (const auto& m : g.group.children) {
            if (!m.is_element() || g.is_virtual_member(m.name)) continue;
            const rel::TableSchema* target = schema_.entity_table(m.name);
            if (target == nullptr) continue;
            if (const rel::TableSchema* link = schema_.link_table(g.name, m.name)) {
                edges_[g.name].push_back(
                    {Hop::Kind::kMemberLink, m.name, link, "", target});
            } else if (const rel::Column* c = group_table->column_by_source(m.name)) {
                edges_[g.name].push_back(
                    {Hop::Kind::kMemberColumn, m.name, group_table, c->name,
                     target});
            }
        }
    }

    // REFERENCE tables: IDREF attributes were extracted from entities, so
    // @attr access on them joins the reference table instead.
    for (const auto& r : mapping_.converted.references) {
        const rel::TableSchema* entity = schema_.entity_table(r.source);
        if (entity == nullptr) continue;
        for (const std::string& cand :
             {r.attribute + "_" + r.source, r.attribute}) {
            const rel::TableSchema* t =
                schema_.table_for(rel::TableKind::kReferenceRel, cand);
            if (t == nullptr) continue;
            const rel::Column* sc = t->column("source_pk");
            if (sc != nullptr && sc->references == entity->name) {
                ref_tables_[{r.source, r.attribute}] = t;
                break;
            }
        }
    }

    // Distilled value columns per owner node.
    for (const auto& d : mapping_.metadata.distilled) {
        std::string node = d.element;
        const rel::TableSchema* table = nullptr;
        if (mapping_.metadata.group(node) != nullptr) {
            node = "N" + node;  // virtual element → its relationship node
            table = schema_.table_for(rel::TableKind::kGroupRel, node);
        } else {
            table = schema_.entity_table(node);
        }
        if (table == nullptr) continue;
        if (const rel::Column* c = table->column_by_source(d.attribute))
            distilled_[node][d.original_child] = c->name;
    }
}

std::vector<const SqlTranslator::Hop*> SqlTranslator::find_path(
    const std::string& from, const std::string& to) const {
    // BFS over edges; only group nodes may be intermediate (an element step
    // never passes through another element).
    struct State {
        std::string node;
        std::vector<const Hop*> path;
    };
    std::deque<State> queue;
    std::set<std::string> visited{from};
    queue.push_back({from, {}});
    while (!queue.empty()) {
        State state = std::move(queue.front());
        queue.pop_front();
        auto it = edges_.find(state.node);
        if (it == edges_.end()) continue;
        for (const Hop& hop : it->second) {
            if (hop.to == to && hop.kind != Hop::Kind::kGroup) {
                std::vector<const Hop*> path = state.path;
                path.push_back(&hop);
                return path;
            }
            if (hop.kind == Hop::Kind::kGroup && visited.insert(hop.to).second) {
                State next = state;
                next.node = hop.to;
                next.path.push_back(&hop);
                queue.push_back(std::move(next));
            }
        }
    }
    return {};
}

std::vector<std::vector<const SqlTranslator::Hop*>>
SqlTranslator::find_descendant_paths(const std::string& from,
                                     const std::string& to,
                                     std::size_t max_paths, bool* exhausted,
                                     const CancelToken& cancel) const {
    // Depth-first over simple paths (no node revisited): a cycle reachable
    // on a from→to route would unroll into infinitely many join chains, so
    // the moment one is seen the search is marked exhausted — recursive
    // DTDs genuinely need recursive SQL, which this dialect does not have.
    // The expansion budget bounds pathological fan-out the same way, and a
    // deadline / cancel fires between steps so a deep-nesting schema cannot
    // pin a worker inside translation (DESIGN.md §11).
    *exhausted = false;
    std::vector<std::vector<const Hop*>> paths;
    std::vector<const Hop*> path;
    std::set<std::string> on_stack{from};
    std::size_t budget = 20000;
    auto dfs = [&](auto&& self, const std::string& node) -> void {
        if (paths.size() >= max_paths) return;
        if (budget == 0) {
            *exhausted = true;
            return;
        }
        if (budget % 64 == 0) cancel.check();
        --budget;
        auto it = edges_.find(node);
        if (it == edges_.end()) return;
        for (const Hop& hop : it->second) {
            if (!on_stack.insert(hop.to).second) {
                *exhausted = true;
                continue;
            }
            path.push_back(&hop);
            if (hop.to == to && hop.kind != Hop::Kind::kGroup)
                paths.push_back(path);
            self(self, hop.to);
            path.pop_back();
            on_stack.erase(hop.to);
            if (paths.size() >= max_paths) return;
        }
    };
    dfs(dfs, from);
    return paths;
}

namespace {

/// Builder for the FROM/JOIN/WHERE clauses.
struct SqlBuilder {
    std::string from;
    std::vector<std::string> joins;
    std::vector<std::string> where;
    std::string group_by;
    std::string having;
    int alias_counter = 0;

    std::string alias() { return "t" + std::to_string(alias_counter++); }

    [[nodiscard]] std::string render(const std::string& select) const {
        std::string sql = "SELECT " + select + " FROM " + from;
        for (const auto& j : joins) sql += " " + j;
        for (std::size_t i = 0; i < where.size(); ++i)
            sql += (i == 0 ? " WHERE " : " AND ") + where[i];
        if (!group_by.empty()) sql += " GROUP BY " + group_by;
        if (!having.empty()) sql += " HAVING " + having;
        return sql;
    }
};

struct NodeCtx {
    std::string node;   ///< entity or group-relationship name
    std::string alias;  ///< SQL alias of its table
    const rel::TableSchema* table = nullptr;
    /// How this step was reached: the NESTED relationship table + alias
    /// (positional predicates count ord-predecessors over it).
    std::string via_nested_table;
    std::string via_nested_alias;
};

}  // namespace

Translation SqlTranslator::translate(const PathQuery& query) const {
    return translate(query, TranslateOptions{});
}

Translation SqlTranslator::translate(const PathQuery& query,
                                     const TranslateOptions& options) const {
    options.cancel.check();
    if (query.steps.empty()) throw QueryError("empty path query");
    const Step& root_step = query.steps.front();
    if (root_step.attribute || root_step.text_fn)
        throw QueryError("the root step must be an element");
    for (const auto& step : query.steps) {
        if (step.name == "*")
            throw QueryError(
                "the '*' wildcard step has no SQL translation in this "
                "dialect (it would need a UNION over every child table)");
        if (step.descendant && (step.attribute || step.text_fn))
            throw QueryError(
                "the descendant axis ('//') is only translatable for "
                "element steps");
    }

    SqlBuilder sql;
    bool interval_plan = false;
    std::string plan_notes;
    auto note = [&](const std::string& clause) {
        if (!plan_notes.empty()) plan_notes += "; ";
        plan_notes += clause;
    };

    auto node_table = [&](const std::string& node) -> const rel::TableSchema* {
        auto it = node_tables_.find(node);
        if (it == node_tables_.end() || it->second == nullptr)
            throw QueryError("no relational mapping for '" + node + "'");
        return it->second;
    };

    // Structural-label plumbing (DESIGN.md §10).  Interval plans need the
    // (pre, post) label columns on both ends of the containment join, and
    // they count *rows*, so a target that was distilled anywhere in the
    // mapping (its instances became parent columns, not rows) would
    // silently under-count — reject it instead.
    auto has_labels = [](const rel::TableSchema* t) {
        const rel::Column* c = t->column("pre");
        return c != nullptr && c->role == rel::ColumnRole::kLabel &&
               t->column("post") != nullptr;
    };
    auto entity_target = [&](const std::string& name) -> const rel::TableSchema* {
        const rel::TableSchema* t = node_table(name);
        if (t->kind != rel::TableKind::kEntity)
            throw QueryError("'" + name + "' does not map to an entity table");
        for (const auto& d : mapping_.metadata.distilled)
            if (d.original_child == name)
                throw QueryError(
                    "'" + name + "' was distilled into a parent column "
                    "somewhere in the mapping; structural plans need "
                    "element rows");
        if (!has_labels(t))
            throw QueryError(
                "'" + name + "' carries no structural (pre, post) labels "
                "(structural_labels was disabled at mapping time)");
        return t;
    };

    // Navigate one element step from `ctx`, appending joins.
    auto emit_hops = [&](const NodeCtx& ctx,
                         const std::vector<const Hop*>& path) -> NodeCtx {
        NodeCtx current = ctx;
        for (const Hop* hop : path) {
            switch (hop->kind) {
                case Hop::Kind::kNested: {
                    std::string r = sql.alias();
                    sql.joins.push_back("JOIN " + hop->rel_table->name + " " + r +
                                        " ON " + r + ".parent_pk = " +
                                        current.alias + ".pk");
                    std::string c = sql.alias();
                    sql.joins.push_back("JOIN " + hop->target_table->name + " " +
                                        c + " ON " + c + ".pk = " + r +
                                        ".child_pk");
                    current = {hop->to, c, hop->target_table,
                               hop->rel_table->name, r};
                    break;
                }
                case Hop::Kind::kGroup: {
                    std::string g = sql.alias();
                    sql.joins.push_back("JOIN " + hop->rel_table->name + " " + g +
                                        " ON " + g + ".parent_pk = " +
                                        current.alias + ".pk");
                    current = {hop->to, g, hop->rel_table, "", ""};
                    break;
                }
                case Hop::Kind::kMemberColumn: {
                    std::string m = sql.alias();
                    sql.joins.push_back("JOIN " + hop->target_table->name + " " +
                                        m + " ON " + m + ".pk = " + current.alias +
                                        "." + hop->member_column);
                    current = {hop->to, m, hop->target_table, "", ""};
                    break;
                }
                case Hop::Kind::kMemberLink: {
                    std::string l = sql.alias();
                    sql.joins.push_back("JOIN " + hop->rel_table->name + " " + l +
                                        " ON " + l + ".group_pk = " +
                                        current.alias + ".pk");
                    std::string m = sql.alias();
                    sql.joins.push_back("JOIN " + hop->target_table->name + " " +
                                        m + " ON " + m + ".pk = " + l +
                                        ".member_pk");
                    current = {hop->to, m, hop->target_table, "", ""};
                    break;
                }
            }
        }
        return current;
    };

    auto navigate = [&](const NodeCtx& ctx,
                        const std::string& child) -> NodeCtx {
        std::vector<const Hop*> path = find_path(ctx.node, child);
        if (path.empty())
            throw QueryError("no relationship path from '" + ctx.node + "' to '" +
                             child + "'");
        return emit_hops(ctx, path);
    };

    // Navigate a descendant ('//') step from `ctx`.  With the structural
    // index this is one interval containment join — strict pre-enclosure,
    // valid across documents because per-document label ranges are
    // disjoint.  Without it, the legacy expansion unrolls the step into
    // the join chain when exactly one relationship path exists.
    auto navigate_descendant = [&](const NodeCtx& ctx,
                                   const std::string& name) -> NodeCtx {
        if (options.use_struct_index) {
            const rel::TableSchema* target = entity_target(name);
            if (!has_labels(ctx.table))
                throw QueryError(
                    "'" + ctx.node + "' carries no structural (pre, post) "
                    "labels ('//' needs an entity context)");
            std::string d = sql.alias();
            sql.joins.push_back("JOIN " + target->name + " " + d + " ON " + d +
                                ".pre > " + ctx.alias + ".pre AND " + d +
                                ".pre < " + ctx.alias + ".post");
            interval_plan = true;
            note("//" + name + ": interval containment join");
            return {name, d, target, "", ""};
        }
        bool exhausted = false;
        auto paths =
            find_descendant_paths(ctx.node, name, 2, &exhausted, options.cancel);
        if (paths.empty() && !exhausted)
            throw QueryError("no relationship path from '" + ctx.node +
                             "' to '" + name + "'");
        if (paths.size() != 1 || exhausted)
            throw QueryError(
                "'//" + name + "' from '" + ctx.node + "' has no unique "
                "join-chain expansion (structural index disabled)");
        note("//" + name + ": legacy join chain (" +
             std::to_string(paths.front().size()) + " hops)");
        return emit_hops(ctx, paths.front());
    };

    // Attribute access on an entity context: a plain column, or — for an
    // IDREF attribute turned REFERENCE — a join against the reference table.
    auto attribute_expr = [&](const NodeCtx& ctx,
                              const std::string& attr) -> std::string {
        if (const rel::Column* c = ctx.table->column_by_source(attr))
            return ctx.alias + "." + c->name;
        auto rit = ref_tables_.find({ctx.node, attr});
        if (rit != ref_tables_.end()) {
            std::string r = sql.alias();
            sql.joins.push_back("JOIN " + rit->second->name + " " + r + " ON " +
                                r + ".source_pk = " + ctx.alias + ".pk");
            return r + ".idref";
        }
        throw QueryError("no attribute '" + attr + "' on '" + ctx.node + "'");
    };

    // Value expression of a relative path from `ctx` (for predicates and
    // final extraction); navigates as needed.
    auto value_expr = [&](NodeCtx ctx, const RelPath& path) -> std::string {
        // Walk all but the last element.
        std::size_t n = path.elements.size();
        std::size_t walk = n;
        bool need_value_from_last_element =
            path.attribute.empty() && !path.text && n > 0;
        if ((path.attribute.empty() && path.text) || !path.attribute.empty()) {
            // trailing @attr or text(): walk every element first.
            walk = n;
        } else if (need_value_from_last_element) {
            walk = n - 1;  // last element may be a distilled column
        }
        for (std::size_t i = 0; i < walk; ++i)
            ctx = navigate(ctx, path.elements[i]);

        if (!path.attribute.empty()) return attribute_expr(ctx, path.attribute);
        if (path.text) {
            const rel::Column* c =
                ctx.table->column_by_role(rel::ColumnRole::kText);
            if (c == nullptr)
                throw QueryError("'" + ctx.node + "' has no text content column");
            return ctx.alias + "." + c->name;
        }
        // Bare element path: distilled column on the owner, or the element
        // entity's text column.
        const std::string& last = path.elements.back();
        auto dit = distilled_.find(ctx.node);
        if (dit != distilled_.end()) {
            auto cit = dit->second.find(last);
            if (cit != dit->second.end()) return ctx.alias + "." + cit->second;
        }
        NodeCtx final_ctx = navigate(ctx, last);
        const rel::Column* c =
            final_ctx.table->column_by_role(rel::ColumnRole::kText);
        if (c == nullptr)
            throw QueryError("element '" + last +
                             "' carries no comparable value in the mapping");
        return final_ctx.alias + "." + c->name;
    };

    auto apply_predicates = [&](const NodeCtx& ctx, const Step& step) {
        for (const auto& pred : step.predicates) {
            switch (pred.kind) {
                case Predicate::Kind::kPosition: {
                    // The paper's ord columns make sibling positions
                    // relational: the n-th same-name child is the row with
                    // exactly n ord-predecessors under the same parent.
                    // Supported when the step arrived over a NESTED
                    // relationship table that carries an ord column.
                    if (ctx.via_nested_table.empty())
                        throw QueryError(
                            "positional predicate not translatable on '" +
                            ctx.node + "' (step is not a direct NESTED "
                            "relationship)");
                    if (!sql.group_by.empty())
                        throw QueryError(
                            "only one positional predicate per query is "
                            "translatable");
                    const rel::TableSchema* rel_table =
                        schema_.table(ctx.via_nested_table);
                    if (rel_table == nullptr ||
                        rel_table->column("ord") == nullptr)
                        throw QueryError(
                            "positional predicate needs ord columns "
                            "(ordinal_columns was disabled)");
                    std::string r2 = sql.alias();
                    sql.joins.push_back(
                        "JOIN " + ctx.via_nested_table + " " + r2 + " ON " +
                        r2 + ".parent_pk = " + ctx.via_nested_alias +
                        ".parent_pk AND " + r2 + ".ord <= " +
                        ctx.via_nested_alias + ".ord");
                    sql.group_by = ctx.alias + ".pk";
                    sql.having =
                        "COUNT(*) = " + std::to_string(pred.position);
                    break;
                }
                case Predicate::Kind::kExists: {
                    if (!pred.path.attribute.empty() &&
                        pred.path.elements.empty()) {
                        sql.where.push_back(attribute_expr(ctx, pred.path.attribute) +
                                            " IS NOT NULL");
                    } else if (pred.path.attribute.empty() && !pred.path.text &&
                               !pred.path.elements.empty()) {
                        // Bare element existence: inner joins are enough —
                        // unless the final element was distilled into a
                        // column, which exists iff non-NULL.
                        NodeCtx c = ctx;
                        for (std::size_t i = 0; i + 1 < pred.path.elements.size();
                             ++i)
                            c = navigate(c, pred.path.elements[i]);
                        const std::string& last = pred.path.elements.back();
                        auto dit = distilled_.find(c.node);
                        auto cit = dit != distilled_.end()
                                       ? dit->second.find(last)
                                       : decltype(dit->second.begin())();
                        if (dit != distilled_.end() &&
                            cit != dit->second.end()) {
                            sql.where.push_back(c.alias + "." + cit->second +
                                                " IS NOT NULL");
                        } else {
                            navigate(c, last);
                        }
                    } else {
                        std::string expr = value_expr(ctx, pred.path);
                        sql.where.push_back(expr + " IS NOT NULL");
                    }
                    break;
                }
                case Predicate::Kind::kCompare: {
                    std::string expr = value_expr(ctx, pred.path);
                    const char* op = pred.op == "=" ? " = " : " <> ";
                    sql.where.push_back(expr + op + sql_quote(pred.literal));
                    break;
                }
                case Predicate::Kind::kAncestor: {
                    // [ancestor::name] by interval enclosure: an ancestor's
                    // interval strictly contains the context's pre label.
                    // Duplicate matches (same-name nested ancestors) are
                    // deduplicated by the DISTINCT / COUNT(DISTINCT) yields.
                    if (!options.use_struct_index)
                        throw QueryError(
                            "[ancestor::...] has no SQL translation without "
                            "the structural index");
                    const std::string& name = pred.path.elements.front();
                    const rel::TableSchema* anc = entity_target(name);
                    if (!has_labels(ctx.table))
                        throw QueryError(
                            "'" + ctx.node + "' carries no structural "
                            "(pre, post) labels ([ancestor::...] needs an "
                            "entity context)");
                    std::string a = sql.alias();
                    sql.joins.push_back("JOIN " + anc->name + " " + a + " ON " +
                                        a + ".pre < " + ctx.alias +
                                        ".pre AND " + ctx.alias + ".pre < " +
                                        a + ".post");
                    interval_plan = true;
                    note("[ancestor::" + name + "]: interval containment join");
                    break;
                }
            }
        }
    };

    // Root.  A root descendant step ('//x') selects every x element; with
    // the structural index that is simply the entity table itself — every
    // row IS an x element — so the plan is a bare table scan with no joins
    // at all.  The legacy expansion anchors at a document-root entity (no
    // incoming relationship edge) and unrolls the unique chain down to x.
    NodeCtx ctx;
    if (root_step.descendant) {
        if (options.use_struct_index) {
            const rel::TableSchema* target = entity_target(root_step.name);
            ctx = {root_step.name, sql.alias(), target, "", ""};
            sql.from = ctx.table->name + " " + ctx.alias;
            interval_plan = true;
            note("//" + root_step.name + ": entity table scan");
        } else {
            std::set<std::string> has_incoming;
            for (const auto& [node, hops] : edges_) {
                (void)node;
                for (const Hop& hop : hops) has_incoming.insert(hop.to);
            }
            std::vector<std::pair<std::string, std::vector<const Hop*>>>
                candidates;
            bool exhausted = false;
            for (const auto& [node, table] : node_tables_) {
                if (table == nullptr || table->kind != rel::TableKind::kEntity)
                    continue;
                if (has_incoming.count(node) != 0) continue;
                if (node == root_step.name) candidates.push_back({node, {}});
                bool ex = false;
                for (auto& p : find_descendant_paths(node, root_step.name, 2,
                                                     &ex, options.cancel))
                    candidates.push_back({node, std::move(p)});
                exhausted = exhausted || ex;
                if (candidates.size() > 1) break;
            }
            if (candidates.empty() && !exhausted)
                throw QueryError("no relationship path to '" + root_step.name +
                                 "' from any document root");
            if (candidates.size() != 1 || exhausted)
                throw QueryError(
                    "'//" + root_step.name + "' has no unique join-chain "
                    "expansion (structural index disabled)");
            ctx = {candidates.front().first, sql.alias(),
                   node_table(candidates.front().first), "", ""};
            sql.from = ctx.table->name + " " + ctx.alias;
            note("//" + root_step.name + ": legacy join chain (" +
                 std::to_string(candidates.front().second.size()) +
                 " hops from '" + ctx.node + "')");
            ctx = emit_hops(ctx, candidates.front().second);
        }
    } else {
        ctx = {root_step.name, sql.alias(), node_table(root_step.name), "", ""};
        sql.from = ctx.table->name + " " + ctx.alias;
    }
    apply_predicates(ctx, root_step);

    // Element steps.
    std::size_t i = 1;
    std::string final_value;  // set when the path ends in a value step
    for (; i < query.steps.size(); ++i) {
        const Step& step = query.steps[i];
        if (step.attribute) {
            final_value = attribute_expr(ctx, step.name);
            break;
        }
        if (step.text_fn) {
            const rel::Column* c =
                ctx.table->column_by_role(rel::ColumnRole::kText);
            if (c != nullptr) {
                final_value = ctx.alias + "." + c->name;
            } else {
                // The element may have been fully distilled; its text lives
                // in owner columns — not reachable once we are *at* the
                // element.  Report plainly.
                throw QueryError("'" + ctx.node + "' has no text content column");
            }
            break;
        }
        if (step.descendant) {
            if (!sql.group_by.empty())
                throw QueryError(
                    "positional predicate must be on the final element step");
            ctx = navigate_descendant(ctx, step.name);
            apply_predicates(ctx, step);
            continue;
        }
        // Distilled final element step yields a value column directly.
        bool is_last = i + 1 == query.steps.size();
        if (is_last && step.predicates.empty()) {
            auto dit = distilled_.find(ctx.node);
            if (dit != distilled_.end()) {
                auto cit = dit->second.find(step.name);
                if (cit != dit->second.end()) {
                    final_value = ctx.alias + "." + cit->second;
                    break;
                }
            }
        }
        if (!sql.group_by.empty())
            throw QueryError(
                "positional predicate must be on the final element step");
        ctx = navigate(ctx, step.name);
        apply_predicates(ctx, step);
    }

    Translation out;
    out.target_entity = ctx.node;
    const bool grouped = !sql.group_by.empty();  // positional predicate used
    // Joins are the only source of duplicate result rows (pks are unique
    // within a table), so a join-free plan — notably the '//x' entity table
    // scan — skips deduplication entirely.
    const bool dedup = !grouped && !sql.joins.empty();
    if (query.count) {
        out.yield = Translation::Yield::kCount;
        if (grouped)
            throw QueryError(
                "count() over a positional predicate would need nested "
                "aggregation");
        if (!final_value.empty()) {
            sql.where.push_back(final_value + " IS NOT NULL");
            out.sql = sql.render("COUNT(" + final_value + ")");
        } else if (dedup) {
            out.sql = sql.render("COUNT(DISTINCT " + ctx.alias + ".pk)");
        } else {
            out.sql = sql.render("COUNT(*)");
        }
    } else if (!final_value.empty()) {
        out.yield = Translation::Yield::kStrings;
        // Grouping already deduplicates; otherwise DISTINCT does.
        out.sql = sql.render((dedup ? "DISTINCT " : "") + ctx.alias + ".pk, " +
                             final_value);
    } else {
        out.yield = Translation::Yield::kNodes;
        out.sql = sql.render((dedup ? "DISTINCT " : "") + ctx.alias + ".pk");
    }
    out.join_count = sql.joins.size();
    out.interval_plan = interval_plan;
    out.plan_notes = plan_notes;
    return out;
}

}  // namespace xr::xquery
