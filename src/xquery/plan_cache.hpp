// LRU cache of path-query → SQL translations (DESIGN.md §9).
//
// Translation is pure — it depends only on the mapping and the relational
// schema, both frozen once a database is loaded — so a cached Translation
// never goes stale; the cache exists to amortize the join-path search that
// SqlTranslator::translate performs per query.  Keys are *normalized*
// query text (parse → to_string), so `/a[ x = 'y' ]/b` and
// `/a[x='y']/b` share one entry.
//
// Thread-safe: a single mutex guards the map, the recency list and the
// counters.  Translation happens under the lock — it is cheap relative
// to execution, and doing so keeps a thundering herd of first requests
// for the same query from translating it N times.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "xquery/sql_translate.hpp"

namespace xr::xquery {

/// Counter snapshot; taken atomically with respect to cache operations.
struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    [[nodiscard]] double hit_ratio() const {
        std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
};

class TranslationCache {
public:
    /// `capacity` bounds the number of cached translations (LRU beyond it;
    /// 0 disables caching — every get() translates).
    TranslationCache(const SqlTranslator& translator, std::size_t capacity)
        : translator_(translator), capacity_(capacity) {}

    TranslationCache(const TranslationCache&) = delete;
    TranslationCache& operator=(const TranslationCache&) = delete;

    /// Translate `query`, serving repeats from the cache.  Throws
    /// xr::QueryError exactly as SqlTranslator::translate does (failures
    /// are not cached — an untranslatable query stays an error).
    /// Translations under different TranslateOptions get distinct keys
    /// (the flag is folded into the key), so toggling the structural
    /// index never serves a plan from the other mode.  `stats_epoch` is
    /// also folded into the key (DESIGN.md §13): when table statistics
    /// change materially, entries cached under the old epoch age out of
    /// the LRU instead of pinning a stale plan shape forever.
    [[nodiscard]] Translation get(const PathQuery& query);
    [[nodiscard]] Translation get(const PathQuery& query,
                                  const TranslateOptions& options,
                                  std::uint64_t stats_epoch = 0);

    [[nodiscard]] PlanCacheStats stats() const;
    [[nodiscard]] std::size_t size() const;
    void clear();

private:
    struct Entry {
        std::string key;
        Translation translation;
    };

    const SqlTranslator& translator_;
    std::size_t capacity_;

    mutable std::mutex mu_;
    std::list<Entry> lru_;  ///< front = most recently used
    std::map<std::string, std::list<Entry>::iterator> index_;
    PlanCacheStats stats_;
};

}  // namespace xr::xquery
