#include "xquery/dom_eval.hpp"

#include <set>

namespace xr::xquery {

namespace {

/// Values a relative path yields from a context element.
std::vector<std::string> rel_values(const xml::Element& context,
                                    const RelPath& path) {
    std::vector<const xml::Element*> nodes = {&context};
    for (const auto& name : path.elements) {
        std::vector<const xml::Element*> next;
        for (const auto* n : nodes)
            for (auto* c : n->child_elements(name)) next.push_back(c);
        nodes = std::move(next);
    }
    std::vector<std::string> out;
    for (const auto* n : nodes) {
        if (!path.attribute.empty()) {
            if (const std::string* v = n->attribute(path.attribute))
                out.push_back(*v);
        } else if (path.text) {
            out.push_back(n->text());
        } else {
            // Bare existence path: the element's own text serves as value.
            out.push_back(n->text());
        }
    }
    return out;
}

bool element_matches(const xml::Element& e, const Predicate& p) {
    switch (p.kind) {
        case Predicate::Kind::kPosition:
            return true;  // handled at the sibling level
        case Predicate::Kind::kExists: {
            if (!p.path.attribute.empty() && p.path.elements.empty())
                return e.has_attribute(p.path.attribute);
            std::vector<const xml::Element*> nodes = {&e};
            for (const auto& name : p.path.elements) {
                std::vector<const xml::Element*> next;
                for (const auto* n : nodes)
                    for (auto* c : n->child_elements(name)) next.push_back(c);
                nodes = std::move(next);
            }
            if (!p.path.attribute.empty()) {
                for (const auto* n : nodes)
                    if (n->has_attribute(p.path.attribute)) return true;
                return false;
            }
            return !nodes.empty();
        }
        case Predicate::Kind::kCompare: {
            std::vector<std::string> values = rel_values(e, p.path);
            for (const auto& v : values) {
                bool eq = v == p.literal;
                if (p.op == "=" ? eq : !eq) return true;
            }
            return false;
        }
        case Predicate::Kind::kAncestor: {
            if (p.path.elements.empty()) return false;
            const std::string& name = p.path.elements.front();
            for (const xml::Element* a = e.parent(); a != nullptr;
                 a = a->parent())
                if (a->name() == name) return true;
            return false;
        }
    }
    return false;
}

void apply_step(const std::vector<const xml::Element*>& input, const Step& step,
                std::vector<const xml::Element*>& output) {
    for (const auto* parent : input) {
        std::vector<const xml::Element*> candidates;
        if (step.descendant) {
            // '//': every descendant with the name ('*' = any), document
            // order, excluding the context node itself.
            xml::visit(*parent, [&](const xml::Node& n) {
                if (!n.is_element() || &n == parent) return;
                const auto& e = static_cast<const xml::Element&>(n);
                if (step.name == "*" || e.name() == step.name)
                    candidates.push_back(&e);
            });
        } else if (step.name == "*") {
            for (auto* c : parent->child_elements()) candidates.push_back(c);
        } else {
            for (auto* c : parent->child_elements(step.name))
                candidates.push_back(c);
        }

        for (const auto& pred : step.predicates) {
            if (pred.kind == Predicate::Kind::kPosition) {
                std::vector<const xml::Element*> kept;
                if (pred.position <= candidates.size())
                    kept.push_back(candidates[pred.position - 1]);
                candidates = std::move(kept);
            } else {
                std::vector<const xml::Element*> kept;
                for (const auto* c : candidates)
                    if (element_matches(*c, pred)) kept.push_back(c);
                candidates = std::move(kept);
            }
        }
        output.insert(output.end(), candidates.begin(), candidates.end());
    }
}

}  // namespace

DomResult evaluate(const xml::Document& doc, const PathQuery& query) {
    std::vector<const xml::Document*> corpus = {&doc};
    return evaluate(corpus, query);
}

DomResult evaluate(const std::vector<const xml::Document*>& corpus,
                   const PathQuery& query) {
    DomResult result;
    if (query.steps.empty()) return result;

    // Root step: matches each document's root element (with predicates);
    // a leading '//' matches anywhere in each document.
    std::vector<const xml::Element*> current;
    {
        const Step& root_step = query.steps.front();
        if (root_step.descendant) {
            for (const auto* doc : corpus) {
                if (doc->root() == nullptr) continue;
                xml::visit(*doc->root(), [&](const xml::Node& n) {
                    if (!n.is_element()) return;
                    const auto& e = static_cast<const xml::Element&>(n);
                    if (root_step.name != "*" && e.name() != root_step.name)
                        return;
                    bool ok = true;
                    for (const auto& pred : root_step.predicates) {
                        if (pred.kind == Predicate::Kind::kPosition) continue;
                        ok = ok && element_matches(e, pred);
                    }
                    if (ok) current.push_back(&e);
                });
            }
        } else
        for (const auto* doc : corpus) {
            const xml::Element* root = doc->root();
            if (root == nullptr || root->name() != root_step.name) continue;
            bool ok = true;
            for (const auto& pred : root_step.predicates) {
                if (pred.kind == Predicate::Kind::kPosition) {
                    ok = ok && pred.position == 1;
                } else {
                    ok = ok && element_matches(*root, pred);
                }
            }
            if (ok) current.push_back(root);
        }
    }

    std::size_t i = 1;
    for (; i < query.steps.size(); ++i) {
        const Step& step = query.steps[i];
        if (step.attribute || step.text_fn) break;
        std::vector<const xml::Element*> next;
        apply_step(current, step, next);
        if (step.descendant) {
            // Nested '//' contexts can reach the same element through more
            // than one context node; the result is a node *set* (the SQL
            // side deduplicates with DISTINCT), so drop repeats, keeping
            // first-occurrence order.
            std::set<const xml::Element*> seen;
            std::vector<const xml::Element*> unique;
            for (const auto* e : next)
                if (seen.insert(e).second) unique.push_back(e);
            next = std::move(unique);
        }
        current = std::move(next);
    }

    if (i < query.steps.size()) {
        const Step& last = query.steps[i];
        for (const auto* e : current) {
            if (last.attribute) {
                if (const std::string* v = e->attribute(last.name))
                    result.strings.push_back(*v);
            } else {
                result.strings.push_back(e->text());
            }
        }
    } else {
        result.nodes = std::move(current);
    }

    if (query.count) {
        result.counted = true;
        result.count =
            result.nodes.empty() ? result.strings.size() : result.nodes.size();
        result.nodes.clear();
        result.strings.clear();
    }
    return result;
}

}  // namespace xr::xquery
