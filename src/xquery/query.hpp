// Path queries over XML — the query front end of paper Section 5.
//
// In 2000 the XML query standards (XQL, XML-QL, XSL patterns) were still
// drafts; the paper only assumes *some* path-shaped query language whose
// queries must be transformed into "meaningful SQL queries".  This module
// implements an XQL-flavoured subset sufficient for the paper's workloads:
//
//   /article/author/name                     — path navigation
//   /article[title = 'XML RDBMS']/author     — subpath predicates
//   /book/author[@id = 'a1']                 — attribute predicates
//   /article/author[2]                       — positional predicates
//   /monograph/title/text()                  — text extraction
//   //author                                  — descendant axis
//   /article//name[ancestor::author]          — ancestor predicates
//   /article/contactauthor/@authorid         — attribute extraction
//   count(/article/author)                   — aggregation
//
// Queries evaluate two ways: directly over the DOM (dom_eval.hpp) and by
// translation to SQL over the mapped schema (sql_translate.hpp).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace xr::xquery {

/// A relative path inside a predicate: child elements, optionally ending
/// in an attribute or text() extraction.
struct RelPath {
    std::vector<std::string> elements;
    std::string attribute;  ///< non-empty: ends in @attribute
    bool text = false;      ///< ends in text()

    [[nodiscard]] std::string to_string() const;
};

struct Predicate {
    enum class Kind {
        kCompare,   ///< [relpath op 'literal']
        kExists,    ///< [relpath]
        kPosition,  ///< [n] — 1-based among same-name siblings
        kAncestor,  ///< [ancestor::name] — an enclosing element exists
    };
    Kind kind = Kind::kExists;
    RelPath path;
    std::string op;       ///< "=" or "!="
    std::string literal;
    std::size_t position = 0;

    [[nodiscard]] std::string to_string() const;
};

struct Step {
    std::string name;        ///< element name ('@'/text() live in the flags)
    bool attribute = false;  ///< final @name step
    bool text_fn = false;    ///< final text() step
    bool descendant = false; ///< reached via '//' (any depth)
    std::vector<Predicate> predicates;

    [[nodiscard]] std::string to_string() const;
};

struct PathQuery {
    bool count = false;  ///< count(...) wrapper
    std::vector<Step> steps;

    [[nodiscard]] std::string to_string() const;
    /// True iff the query yields strings (attribute / text extraction)
    /// rather than elements.
    [[nodiscard]] bool yields_strings() const;
};

/// Parse a path query.  Throws xr::ParseError.
[[nodiscard]] PathQuery parse_query(std::string_view text);

}  // namespace xr::xquery
