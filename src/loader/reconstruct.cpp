#include "loader/reconstruct.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/strings.hpp"
#include "rel/translate.hpp"
#include "xml/parser.hpp"

namespace xr::loader {

namespace {

using rdb::RowId;
using rdb::Value;

/// Row ids of `table` whose `column` equals `key`, sorted by the ord
/// column when present (document order), else by row id.
std::vector<RowId> rows_by(const rdb::Table& table, std::string_view column,
                           std::int64_t key) {
    std::vector<RowId> ids = table.lookup(column, Value(key));
    int ord = table.def().column_index("ord");
    if (ord >= 0) {
        std::stable_sort(ids.begin(), ids.end(), [&](RowId a, RowId b) {
            return table.row(a)[ord].index_order(table.row(b)[ord]) ==
                   std::strong_ordering::less;
        });
    }
    return ids;
}

}  // namespace

Reconstructor::Reconstructor(const mapping::MappingResult& mapping,
                             const rel::RelationalSchema& schema,
                             const rdb::Database& db)
    : mapping_(mapping), schema_(schema), db_(db) {}

std::unique_ptr<xml::Document> Reconstructor::reconstruct(
    std::int64_t doc) const {
    const rdb::Table* docs = db_.table("xrel_docs");
    if (docs == nullptr)
        throw SchemaError(
            "cannot reconstruct: xrel_docs metadata table is missing");
    int doc_col = docs->def().column_index("doc");
    for (RowId id = 0; id < docs->row_count(); ++id) {
        const rdb::Row& row = docs->row(id);
        if (row[doc_col].as_integer() != doc) continue;
        std::string root_entity = docs->at(id, "root_entity").as_text();
        std::int64_t root_pk = docs->at(id, "root_pk").as_integer();
        auto out = std::make_unique<xml::Document>();
        out->set_root(reconstruct_element(root_entity, root_pk));
        xml::DoctypeDecl doctype;
        doctype.root_name = root_entity;
        doctype.system_id = root_entity + ".dtd";
        out->set_doctype(std::move(doctype));
        return out;
    }
    throw SchemaError("no loaded document with id " + std::to_string(doc));
}

std::unique_ptr<xml::Element> Reconstructor::reconstruct_element(
    const std::string& entity, std::int64_t pk) const {
    auto element = std::make_unique<xml::Element>(entity);
    fill_element(*element, entity, pk);
    return element;
}

void Reconstructor::fill_element(xml::Element& element,
                                 const std::string& entity,
                                 std::int64_t pk) const {
    const rel::TableSchema* schema = schema_.entity_table(entity);
    if (schema == nullptr)
        throw SchemaError("no entity table for '" + entity + "'");
    const rdb::Table& table = db_.require(schema->name);
    auto rowid = table.find_pk_rowid(pk);
    if (!rowid)
        throw SchemaError("no row " + std::to_string(pk) + " in '" +
                          schema->name + "'");
    const rdb::Row& row = table.row(*rowid);

    // Which column sources are distilled children rather than attributes?
    std::map<std::string, const mapping::DistilledAttribute*> distilled;
    for (const auto* d : mapping_.metadata.distilled_of(entity))
        distilled[d->attribute] = d;

    // XML attributes (declared ones; distilled values become elements).
    for (std::size_t c = 0; c < schema->columns.size(); ++c) {
        const rel::Column& col = schema->columns[c];
        if (col.role != rel::ColumnRole::kAttribute) continue;
        if (distilled.contains(col.source)) continue;
        if (row[c].is_null()) continue;
        element.set_attribute(col.source, row[c].as_text());
    }

    // IDREF attributes live in reference tables.
    for (const auto& ref : mapping_.converted.references) {
        if (ref.source != entity) continue;
        for (const std::string& cand :
             {ref.attribute + "_" + ref.source, ref.attribute}) {
            const rel::TableSchema* rt =
                schema_.table_for(rel::TableKind::kReferenceRel, cand);
            if (rt == nullptr) continue;
            const rel::Column* sc = rt->column("source_pk");
            if (sc == nullptr || sc->references != schema->name) continue;
            const rdb::Table& refs = db_.require(rt->name);
            std::vector<std::string> tokens;
            for (RowId id : rows_by(refs, "source_pk", pk))
                tokens.push_back(refs.at(id, "idref").as_text());
            if (!tokens.empty())
                element.set_attribute(ref.attribute, join(tokens, " "));
            break;
        }
    }

    const mapping::ConvertedElement* ce = mapping_.converted.element(entity);
    if (ce == nullptr) return;

    switch (ce->residual) {
        case mapping::ResidualContent::kEmpty:
            return;
        case mapping::ResidualContent::kPCData: {
            int c = schema->column_index("pcdata");
            if (c >= 0 && !row[c].is_null())
                element.append_text(row[c].as_text());
            return;
        }
        case mapping::ResidualContent::kAny: {
            int c = schema->column_index("raw_xml");
            if (c >= 0 && !row[c].is_null() && !row[c].as_text().empty()) {
                // Re-parse the stored fragment and splice its children.
                xml::ParseOptions popt;
                popt.keep_whitespace_text = true;
                auto fragment = xml::parse_document(
                    "<x>" + row[c].as_text() + "</x>", popt);
                for (auto& child : fragment->root()->take_children())
                    element.append_child(std::move(child));
            }
            return;
        }
        case mapping::ResidualContent::kMixed: {
            // Exact interleaving: xrel_text segment rows and nested member
            // rows both carry the node index as ord — merge by it.
            const rdb::Table* segments = db_.table(rel::kTextSegmentsTable);
            struct Item {
                std::int64_t ord;
                std::function<void()> emit;
            };
            std::vector<Item> items;
            if (segments != nullptr) {
                int seg_entity = segments->def().column_index("entity");
                int seg_ord = segments->def().column_index("ord");
                int seg_content = segments->def().column_index("content");
                for (RowId id : segments->lookup("parent_pk", Value(pk))) {
                    const rdb::Row& seg = segments->row(id);
                    if (!(seg[seg_entity] == Value(entity))) continue;
                    std::string content = seg[seg_content].as_text();
                    std::int64_t ord =
                        seg_ord >= 0 && !seg[seg_ord].is_null()
                            ? seg[seg_ord].as_integer()
                            : 0;
                    items.push_back({ord, [&element, content] {
                                         element.append_text(content);
                                     }});
                }
            }
            for (const auto& n : mapping_.converted.nested) {
                if (n.parent != entity) continue;
                const rel::TableSchema* nt =
                    schema_.table_for(rel::TableKind::kNestedRel, n.name);
                if (nt == nullptr) continue;
                const rdb::Table& nested = db_.require(nt->name);
                for (RowId id : rows_by(nested, "parent_pk", pk)) {
                    std::string child = n.child;
                    std::int64_t cpk = nested.at(id, "child_pk").as_integer();
                    std::int64_t ord = nested.at(id, "ord").is_null()
                                           ? 0
                                           : nested.at(id, "ord").as_integer();
                    items.push_back({ord, [this, &element, child, cpk] {
                                         element.append_child(
                                             reconstruct_element(child, cpk));
                                     }});
                }
            }
            // Overflow subtrees inside mixed content carry node-index ords
            // too, so they merge exactly.
            if (const rdb::Table* overflow = db_.table(rel::kOverflowTable)) {
                int ent = overflow->def().column_index("parent_entity");
                int oord = overflow->def().column_index("ord");
                int raw = overflow->def().column_index("raw_xml");
                for (RowId id : overflow->lookup("parent_pk", Value(pk))) {
                    const rdb::Row& orow = overflow->row(id);
                    if (!(orow[ent] == Value(entity))) continue;
                    std::string fragment_text = orow[raw].as_text();
                    std::int64_t ord = oord >= 0 && !orow[oord].is_null()
                                           ? orow[oord].as_integer()
                                           : 0;
                    items.push_back(
                        {ord, [this, &element, fragment_text] {
                             xml::ParseOptions popt;
                             popt.keep_whitespace_text = true;
                             auto fragment = xml::parse_document(
                                 "<x>" + fragment_text + "</x>", popt);
                             for (auto& child : fragment->root()->take_children())
                                 element.append_child(std::move(child));
                         }});
                }
            }
            std::stable_sort(items.begin(), items.end(),
                             [](const Item& a, const Item& b) {
                                 return a.ord < b.ord;
                             });
            if (!items.empty()) {
                for (const Item& item : items) item.emit();
                return;
            }
            // Legacy fallback (no segment table): concatenated text.
            int c = schema->column_index("pcdata");
            if (c >= 0 && !row[c].is_null() && !row[c].as_text().empty())
                element.append_text(row[c].as_text());
            break;  // members handled below like nested relationships
        }
        case mapping::ResidualContent::kStripped:
            break;
    }

    // Structural content: distilled children and relationship instances,
    // replayed in content-model order (the relationship positions), with
    // instances of repeated relationships sorted by their ord columns.
    struct Part {
        std::size_t position;
        std::function<void()> emit;
    };
    std::vector<Part> parts;

    for (const auto& [attr, d] : distilled) {
        int c = schema->column_index(schema->column_by_source(attr)->name);
        if (c < 0 || row[c].is_null()) continue;
        std::string child_name = d->original_child;
        std::string text = row[c].as_text();
        parts.push_back({d->position, [&element, child_name, text] {
                             element.append_element(child_name)
                                 ->append_text(text);
                         }});
    }

    for (const auto& g : mapping_.converted.nested_groups) {
        if (g.parent != entity) continue;
        const rel::TableSchema* gt =
            schema_.table_for(rel::TableKind::kGroupRel, g.name);
        if (gt == nullptr) continue;
        const rdb::Table& groups = db_.require(gt->name);
        const mapping::NestedGroupDecl* decl = &g;
        parts.push_back({g.position, [this, &element, &groups, decl, pk] {
                             for (RowId id : rows_by(groups, "parent_pk", pk)) {
                                 std::int64_t gpk =
                                     groups.at(id, "pk").as_integer();
                                 emit_group_instance(element, *decl, gpk);
                             }
                         }});
    }

    for (const auto& n : mapping_.converted.nested) {
        if (n.parent != entity) continue;
        const rel::TableSchema* nt =
            schema_.table_for(rel::TableKind::kNestedRel, n.name);
        if (nt == nullptr) continue;
        const rdb::Table& nested = db_.require(nt->name);
        const mapping::NestedDecl* decl = &n;
        parts.push_back({n.position, [this, &element, &nested, decl, pk] {
                             for (RowId id : rows_by(nested, "parent_pk", pk)) {
                                 element.append_child(reconstruct_element(
                                     decl->child,
                                     nested.at(id, "child_pk").as_integer()));
                             }
                         }});
    }

    std::stable_sort(parts.begin(), parts.end(),
                     [](const Part& a, const Part& b) {
                         return a.position < b.position;
                     });
    for (const Part& part : parts) part.emit();

    // Overflow subtrees (lenient loads) come back too — appended after the
    // mapped children in their original relative order, best-effort since
    // their model positions are unknown by definition.
    if (const rdb::Table* overflow = db_.table(rel::kOverflowTable)) {
        int ent = overflow->def().column_index("parent_entity");
        int raw = overflow->def().column_index("raw_xml");
        for (RowId id : rows_by(*overflow, "parent_pk", pk)) {
            const rdb::Row& orow = overflow->row(id);
            if (!(orow[ent] == Value(entity))) continue;
            xml::ParseOptions popt;
            popt.keep_whitespace_text = true;
            auto fragment = xml::parse_document(
                "<x>" + orow[raw].as_text() + "</x>", popt);
            for (auto& child : fragment->root()->take_children())
                element.append_child(std::move(child));
        }
    }
}

void Reconstructor::emit_group_instance(
    xml::Element& parent, const mapping::NestedGroupDecl& decl,
    std::int64_t group_pk) const {
    const rel::TableSchema* gt =
        schema_.table_for(rel::TableKind::kGroupRel, decl.name);
    const rdb::Table& groups = db_.require(gt->name);
    auto rowid = groups.find_pk_rowid(group_pk);
    if (!rowid) return;
    const rdb::Row& row = groups.row(*rowid);

    // Distilled attributes of the virtual group element, by model position.
    const std::string virtual_name = decl.name.substr(1);
    std::map<std::size_t, const mapping::DistilledAttribute*> distilled;
    for (const auto* d : mapping_.metadata.distilled_of(virtual_name))
        distilled[d->position] = d;

    // Merge distilled slots and surviving members back into the original
    // model order: distilled entries own their recorded positions, members
    // take the remaining slots left-to-right.
    std::vector<const dtd::Particle*> members;
    for (const auto& m : decl.group.children)
        if (m.is_element()) members.push_back(&m);
    std::size_t member_index = 0;
    const std::size_t total_slots = members.size() + distilled.size();

    for (std::size_t slot = 0; slot < total_slots; ++slot) {
        if (auto it = distilled.find(slot); it != distilled.end()) {
            const rel::Column* col = gt->column_by_source(it->second->attribute);
            int c = col != nullptr ? gt->column_index(col->name) : -1;
            if (c >= 0 && !row[c].is_null())
                parent.append_element(it->second->original_child)
                    ->append_text(row[c].as_text());
            continue;
        }
        if (member_index >= members.size()) continue;
        const dtd::Particle& member = *members[member_index++];
        if (decl.is_virtual_member(member.name)) {
            // Chained group: its instances hang off this group row.
            const mapping::NestedGroupDecl* chained =
                mapping_.converted.nested_group("N" + member.name);
            if (chained != nullptr) {
                const rel::TableSchema* ct =
                    schema_.table_for(rel::TableKind::kGroupRel, chained->name);
                if (ct != nullptr) {
                    const rdb::Table& chain_rows = db_.require(ct->name);
                    for (RowId id : rows_by(chain_rows, "parent_pk", group_pk))
                        emit_group_instance(
                            parent, *chained,
                            chain_rows.at(id, "pk").as_integer());
                }
            }
            continue;
        }
        if (const rel::TableSchema* link =
                schema_.link_table(decl.name, member.name)) {
            const rdb::Table& links = db_.require(link->name);
            for (RowId id : rows_by(links, "group_pk", group_pk)) {
                parent.append_child(reconstruct_element(
                    member.name, links.at(id, "member_pk").as_integer()));
            }
        } else if (const rel::Column* col = gt->column_by_source(member.name)) {
            int c = gt->column_index(col->name);
            if (c >= 0 && !row[c].is_null())
                parent.append_child(
                    reconstruct_element(member.name, row[c].as_integer()));
        }
    }
}

}  // namespace xr::loader
