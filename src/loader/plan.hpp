// Loading plans: per-element-type matchers that segment a DOM element's
// child sequence into group instances.
//
// The relational schema stores NESTED_GROUP instances as rows, but XML
// documents carry no explicit group tags — '(author, affiliation?)+' in
// the article model shows up as a flat run of author/affiliation children.
// The plan rebuilds the step-1 content model (with hoisted groups as
// explicit boundary nodes) and matches the child sequence against it,
// emitting Enter/Exit events at group boundaries and Match events at
// element references.  Matching is a backtracking regular-expression walk;
// XML 1.0 content models are required to be deterministic, which keeps the
// walk effectively linear.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dtd/dtd.hpp"
#include "mapping/metadata.hpp"

namespace xr::loader {

struct PlanNode {
    enum class Kind {
        kLeaf,    ///< ordinary element reference
        kSeq,     ///< sequence group (structural, no row)
        kChoice,  ///< choice group (structural, no row)
        kGroup,   ///< hoisted group boundary — one row per instance
    };
    Kind kind = Kind::kLeaf;
    dtd::Occurrence occurrence = dtd::Occurrence::kOne;
    std::string name;  ///< element name (kLeaf) or virtual group name (kGroup)
    std::vector<PlanNode> children;
};

struct MatchEvent {
    enum class Type {
        kEnterGroup,  ///< a group instance begins (node is the kGroup node)
        kExitGroup,   ///< the instance ends
        kMatchChild,  ///< child at `pos` matched this kLeaf node
    };
    Type type = Type::kMatchChild;
    const PlanNode* node = nullptr;
    std::size_t pos = 0;  ///< child index (kMatchChild) / start index (enter)
};

/// Build the plan tree for one element type from the step-1 (grouped) DTD.
/// Virtual group references expand inline into kGroup boundary nodes.
[[nodiscard]] PlanNode build_plan(const dtd::Dtd& grouped,
                                  const mapping::Metadata& meta,
                                  const dtd::ElementDecl& element);

/// Match `names` (the child-element sequence) against the plan.  On
/// success, `events` holds the complete derivation in document order.
[[nodiscard]] bool match_children(const PlanNode& plan,
                                  const std::vector<std::string_view>& names,
                                  std::vector<MatchEvent>& events);

}  // namespace xr::loader
