#include "loader/bulk_loader.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "xml/parser.hpp"

namespace xr::loader {

namespace {

/// Thread-local staging: rows buffer per table, primary keys drawn from
/// pre-reserved ranges so the shared counter is touched once per chunk.
class StagingSink final : public RowSink {
public:
    explicit StagingSink(std::int64_t pk_chunk) : chunk_(pk_chunk) {}

    std::int64_t allocate_pk(rdb::Table& table) override {
        PkRange& r = ranges_[&table];
        if (r.next == r.end) {
            r.next = table.allocate_pk_range(chunk_);
            r.end = r.next + chunk_;
        }
        return r.next++;
    }

    void append(rdb::Table& table, rdb::Row row) override {
        staged_[&table].push_back(std::move(row));
    }

    [[nodiscard]] std::vector<rdb::Row>* staged_for(rdb::Table* table) {
        auto it = staged_.find(table);
        return it == staged_.end() ? nullptr : &it->second;
    }

private:
    struct PkRange {
        std::int64_t next = 0, end = 0;
    };
    std::int64_t chunk_;
    std::unordered_map<rdb::Table*, PkRange> ranges_;
    std::unordered_map<rdb::Table*, std::vector<rdb::Row>> staged_;
};

}  // namespace

BulkLoader::BulkLoader(const dtd::Dtd& logical,
                       const mapping::MappingResult& mapping,
                       const rel::RelationalSchema& schema, rdb::Database& db)
    : db_(db), loader_(logical, mapping, schema, db) {}

std::int64_t BulkLoader::next_doc_base() const {
    std::int64_t base = 1;
    if (const rdb::Table* docs = db_.table("xrel_docs")) {
        int c = docs->def().column_index("doc");
        if (c >= 0) {
            for (const auto& row : docs->rows()) {
                if (!row[c].is_null())
                    base = std::max(base, row[c].as_integer() + 1);
            }
        }
    }
    return base;
}

LoadStats BulkLoader::load_corpus(const std::vector<xml::Document*>& docs,
                                  const BulkLoadOptions& options) {
    std::int64_t base = next_doc_base();
    return run(
        docs.size(),
        [&](std::size_t i, RowSink& sink, LoadStats& stats,
            const LoadOptions& lopt) {
            loader_.shred_document(*docs[i],
                                   base + static_cast<std::int64_t>(i), lopt,
                                   sink, stats);
        },
        options);
}

LoadStats BulkLoader::load_texts(const std::vector<std::string>& texts,
                                 const BulkLoadOptions& options) {
    std::int64_t base = next_doc_base();
    return run(
        texts.size(),
        [&](std::size_t i, RowSink& sink, LoadStats& stats,
            const LoadOptions& lopt) {
            auto doc = xml::parse_document(texts[i]);
            loader_.shred_document(*doc, base + static_cast<std::int64_t>(i),
                                   lopt, sink, stats);
        },
        options);
}

LoadStats BulkLoader::run(
    std::size_t count,
    const std::function<void(std::size_t, RowSink&, LoadStats&,
                             const LoadOptions&)>& shred_one,
    const BulkLoadOptions& options) {
    LoadOptions lopt;
    lopt.validate = options.validate;
    lopt.strict = options.strict;
    lopt.resolve_references = false;

    std::size_t jobs = options.jobs != 0
                           ? options.jobs
                           : std::max(1u, std::thread::hardware_concurrency());
    jobs = std::clamp<std::size_t>(jobs, 1, std::max<std::size_t>(count, 1));
    auto chunk =
        static_cast<std::int64_t>(std::max<std::size_t>(options.pk_chunk, 1));

    std::vector<StagingSink> sinks;
    sinks.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) sinks.emplace_back(chunk);
    std::vector<LoadStats> worker_stats(jobs);

    // Documents are striped across workers (worker w takes w, w+jobs, ...):
    // deterministic assignment, balanced for homogeneous corpora.
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&](std::size_t w) {
        try {
            for (std::size_t i = w;
                 i < count && !failed.load(std::memory_order_relaxed);
                 i += jobs) {
                shred_one(i, sinks[w], worker_stats[w], lopt);
            }
        } catch (...) {
            std::scoped_lock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
        }
    };
    if (jobs == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (std::size_t w = 0; w < jobs; ++w) pool.emplace_back(worker, w);
        for (auto& t : pool) t.join();
    }
    // A failed shred leaves the database untouched — staging is discarded
    // wholesale (only pk-range reservations were consumed).
    if (first_error) std::rethrow_exception(first_error);

    // Merge: batched appends with index maintenance deferred to one
    // rebuild pass.  Rows come from the trusted shredding plans, so the
    // per-row cell validation is skipped (batch shape is still checked).
    db_.begin_bulk();
    for (const std::string& name : db_.table_names()) {
        rdb::Table* table = db_.table(name);
        std::size_t total = 0;
        for (auto& sink : sinks) {
            if (auto* rows = sink.staged_for(table)) total += rows->size();
        }
        if (total == 0) continue;
        table->reserve_rows(total);
        for (auto& sink : sinks) {
            auto* rows = sink.staged_for(table);
            if (rows == nullptr || rows->empty()) continue;
            table->insert_batch(std::move(*rows), /*validate_rows=*/false);
        }
    }
    db_.end_bulk();

    for (const auto& ws : worker_stats) stats_.merge(ws);
    // Single resolution pass over the merged ID registry.
    loader_.resolve_references(stats_);
    return stats_;
}

}  // namespace xr::loader
