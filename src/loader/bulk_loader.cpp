#include "loader/bulk_loader.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/fault.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace xr::loader {

namespace {

/// Thread-local staging: rows buffer per table, primary keys drawn from
/// pre-reserved ranges so the shared counter is touched once per chunk.
///
/// Each document is bracketed by begin_doc() / commit_doc() /
/// rollback_doc().  Rollback truncates the staged rows back to the mark
/// and rewinds key reservations: keys drawn from a chunk that is still
/// current are reused outright, a chunk the failed document itself opened
/// is rewound to its start, and only the abandoned tail of a chunk left
/// behind mid-document is lost (counted in leaked()).
class StagingSink final : public RowSink {
public:
    explicit StagingSink(std::int64_t pk_chunk) : chunk_(pk_chunk) {}

    std::int64_t allocate_pk(rdb::Table& table) override {
        PkRange& r = ranges_[&table];
        if (r.next == r.end) {
            r.next = table.allocate_pk_range(chunk_);
            r.end = r.next + chunk_;
            r.chunk_start = r.next;
        }
        ++r.allocated;
        return r.next++;
    }

    void append(rdb::Table& table, rdb::Row row) override {
        staged_[&table].push_back(std::move(row));
    }

    void begin_doc() {
        saved_ranges_ = ranges_;
        saved_sizes_.clear();
        for (const auto& [table, rows] : staged_)
            saved_sizes_[table] = rows.size();
    }

    void commit_doc() {}  // marks are overwritten by the next begin_doc()

    void rollback_doc() {
        for (auto& [table, rows] : staged_) {
            auto it = saved_sizes_.find(table);
            rows.resize(it == saved_sizes_.end() ? 0 : it->second);
        }
        for (auto& [table, r] : ranges_) {
            auto it = saved_ranges_.find(table);
            const PkRange* saved = it == saved_ranges_.end() ? nullptr
                                                             : &it->second;
            std::int64_t consumed =
                r.allocated - (saved != nullptr ? saved->allocated : 0);
            if (consumed == 0) continue;
            std::int64_t reclaimed;
            if (saved != nullptr && r.end == saved->end) {
                // Same chunk as at the mark: every key the document drew
                // comes straight back.
                r.next = saved->next;
                reclaimed = consumed;
            } else {
                // The document opened at least one new chunk.  Reuse the
                // current chunk from its start; anything before it (the
                // old chunk's tail, fully-consumed chunks in between) is
                // unreachable now and counts as leaked.
                reclaimed = r.next - r.chunk_start;
                r.next = r.chunk_start;
            }
            r.allocated -= reclaimed;
            leaked_ += static_cast<std::size_t>(consumed - reclaimed);
        }
    }

    /// Hand unused chunk tails back to the shared counters (worker is
    /// done; call from the worker thread).  Returns total keys this sink
    /// leaked: rollback losses plus any tail another worker's reservation
    /// blocked from returning.
    std::size_t release_tails() {
        std::size_t leaked = leaked_;
        for (auto& [table, r] : ranges_) {
            if (r.next < r.end && !table->try_release_pk_range(r.next, r.end))
                leaked += static_cast<std::size_t>(r.end - r.next);
            r.next = r.end;
        }
        return leaked;
    }

    [[nodiscard]] std::vector<rdb::Row>* staged_for(rdb::Table* table) {
        auto it = staged_.find(table);
        return it == staged_.end() ? nullptr : &it->second;
    }

private:
    struct PkRange {
        std::int64_t next = 0, end = 0;
        std::int64_t chunk_start = 0;  ///< first key of the current chunk
        std::int64_t allocated = 0;    ///< keys handed out, net of rewinds
    };
    std::int64_t chunk_;
    std::size_t leaked_ = 0;
    std::unordered_map<rdb::Table*, PkRange> ranges_;
    std::unordered_map<rdb::Table*, std::vector<rdb::Row>> staged_;
    std::unordered_map<rdb::Table*, PkRange> saved_ranges_;
    std::unordered_map<rdb::Table*, std::size_t> saved_sizes_;
};

}  // namespace

BulkLoader::BulkLoader(const dtd::Dtd& logical,
                       const mapping::MappingResult& mapping,
                       const rel::RelationalSchema& schema, rdb::Database& db)
    : db_(db), schema_(schema), loader_(logical, mapping, schema, db) {}

std::int64_t BulkLoader::next_doc_base() const {
    std::int64_t base = 1;
    if (const rdb::Table* docs = db_.table("xrel_docs")) {
        int c = docs->def().column_index("doc");
        if (c >= 0) {
            for (rdb::RowId id = 0; id < docs->row_count(); ++id) {
                const auto& row = docs->row(id);
                if (!row[c].is_null())
                    base = std::max(base, row[c].as_integer() + 1);
            }
        }
    }
    return base;
}

std::int64_t BulkLoader::next_label_base() const {
    // First structural label past everything already committed — the same
    // watermark the serial Loader recovers from xrel_docs.
    std::int64_t base = 0;
    if (const rdb::Table* docs = db_.table("xrel_docs")) {
        int b = docs->def().column_index("label_base");
        int s = docs->def().column_index("label_span");
        if (b >= 0 && s >= 0) {
            for (rdb::RowId id = 0; id < docs->row_count(); ++id) {
                const auto& row = docs->row(id);
                if (!row[b].is_null() && !row[s].is_null())
                    base = std::max(base,
                                    row[b].as_integer() + row[s].as_integer());
            }
        }
    }
    return base;
}

LoadReport BulkLoader::load_corpus(const std::vector<xml::Document*>& docs,
                                   const BulkLoadOptions& options) {
    std::int64_t base = next_doc_base();
    return run(
        docs.size(),
        [&](std::size_t i, RowSink& sink, LoadStats& stats,
            const LoadOptions& lopt) {
            loader_.shred_document(*docs[i],
                                   base + static_cast<std::int64_t>(i), lopt,
                                   sink, stats);
        },
        [&](std::size_t i) { return xml::serialize(*docs[i]); }, options);
}

LoadReport BulkLoader::load_texts(const std::vector<std::string>& texts,
                                  const BulkLoadOptions& options) {
    std::int64_t base = next_doc_base();
    return run(
        texts.size(),
        [&](std::size_t i, RowSink& sink, LoadStats& stats,
            const LoadOptions& lopt) {
            auto doc = xml::parse_document(texts[i], lopt.parse);
            loader_.shred_document(*doc, base + static_cast<std::int64_t>(i),
                                   lopt, sink, stats);
        },
        [&](std::size_t i) { return texts[i]; }, options);
}

LoadReport BulkLoader::run(
    std::size_t count,
    const std::function<void(std::size_t, RowSink&, LoadStats&,
                             const LoadOptions&)>& shred_one,
    const std::function<std::string(std::size_t)>& raw_text,
    const BulkLoadOptions& options) {
    LoadOptions lopt;
    lopt.validate = options.validate;
    lopt.strict = options.strict;
    lopt.resolve_references = false;
    lopt.parse = options.parse;

    LoadReport report;
    report.policy = options.on_error;
    report.attempted = count;

    std::size_t jobs = options.jobs != 0
                           ? options.jobs
                           : std::max(1u, std::thread::hardware_concurrency());
    jobs = std::clamp<std::size_t>(jobs, 1, std::max<std::size_t>(count, 1));
    auto chunk =
        static_cast<std::int64_t>(std::max<std::size_t>(options.pk_chunk, 1));
    std::int64_t base = next_doc_base();

    std::vector<StagingSink> sinks;
    sinks.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) sinks.emplace_back(chunk);
    struct WorkerState {
        LoadStats stats;                       ///< successful documents only
        std::vector<DocumentOutcome> outcomes;
        std::size_t leaked = 0;
    };
    std::vector<WorkerState> workers(jobs);

    // Documents are striped across workers (worker w takes w, w+jobs, ...):
    // deterministic assignment, balanced for homogeneous corpora.
    //
    // `failed` is the kFailFast stop signal.  The release store happens
    // after the failing worker has published its exception under
    // error_mutex; the acquire load lets other workers observe the flag
    // and stop early.  That pairing only makes the *stop* prompt and safe
    // to act on — the joins below are what actually synchronize all
    // worker-written state (sinks, stats, outcomes) with this thread.
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    // The whole load runs inside one atomic unit, opened BEFORE any key
    // reservation so a corpus-scoped rollback also restores the pk
    // counters the workers advanced.  Workers are always joined before
    // rollback_unit(), as Table's unit contract requires.
    db_.begin_unit();
    auto worker = [&](std::size_t w) {
        WorkerState& state = workers[w];
        for (std::size_t i = w; i < count; i += jobs) {
            if (failed.load(std::memory_order_acquire)) break;
            DocumentOutcome outcome;
            outcome.index = i;
            LoadStats doc_stats;
            sinks[w].begin_doc();
            try {
                shred_one(i, sinks[w], doc_stats, lopt);
                sinks[w].commit_doc();
                state.stats.merge(doc_stats);
                outcome.doc = base + static_cast<std::int64_t>(i);
                outcome.label_span = doc_stats.label_span;
            } catch (...) {
                sinks[w].rollback_doc();
                LoadErrorInfo info = classify_load_error();
                outcome.status = options.on_error == FailurePolicy::kQuarantine
                                     ? DocumentOutcome::Status::kQuarantined
                                     : DocumentOutcome::Status::kFailed;
                outcome.error_type = std::move(info.type);
                outcome.error = std::move(info.message);
                outcome.where = info.where;
                outcome.retryable = info.retryable;
                state.outcomes.push_back(std::move(outcome));
                if (options.on_error == FailurePolicy::kFailFast) {
                    {
                        std::scoped_lock lock(error_mutex);
                        if (!first_error)
                            first_error = std::current_exception();
                    }
                    failed.store(true, std::memory_order_release);
                    break;
                }
                continue;
            }
            state.outcomes.push_back(std::move(outcome));
        }
        state.leaked = sinks[w].release_tails();
    };

    try {
        if (jobs == 1) {
            worker(0);
        } else {
            std::vector<std::thread> pool;
            pool.reserve(jobs);
            for (std::size_t w = 0; w < jobs; ++w) pool.emplace_back(worker, w);
            for (auto& t : pool) t.join();
        }
        // Every worker's error is in its outcome list; under kFailFast the
        // first one also propagates as the original exception.
        if (first_error) std::rethrow_exception(first_error);

        // Collate per-worker outcomes back into corpus order.
        for (auto& state : workers) {
            report.stats.merge(state.stats);
            report.leaked_pks += state.leaked;
            for (auto& outcome : state.outcomes)
                report.outcomes.push_back(std::move(outcome));
        }
        std::sort(report.outcomes.begin(), report.outcomes.end(),
                  [](const DocumentOutcome& a, const DocumentOutcome& b) {
                      return a.index < b.index;
                  });
        for (const auto& outcome : report.outcomes) {
            if (outcome.status == DocumentOutcome::Status::kLoaded) {
                ++report.loaded;
                continue;
            }
            ++report.failed;
            if (outcome.retryable) ++report.retryable;
            if (report.errors.size() < options.max_errors)
                report.errors.push_back(format_outcome(outcome));
        }

        if (report.loaded == 0) {
            // Nothing survived: make the load a no-op, reclaiming every
            // key reservation instead of committing an empty merge.
            db_.rollback_unit();
            report.leaked_pks = 0;
        } else {
            // Documents were shredded under provisional ids (base + corpus
            // index).  Re-number the survivors densely so the result is
            // indistinguishable from a corpus that never contained the
            // failed documents.
            std::map<std::int64_t, std::int64_t> doc_remap;
            // Workers labelled each document starting at 0; survivors now
            // get consecutive global intervals in corpus order — the same
            // bases a serial load of only these documents would assign.
            std::map<std::int64_t, std::int64_t> label_shift;  // prov doc → base
            std::int64_t label_cursor = next_label_base();
            for (auto& outcome : report.outcomes) {
                if (outcome.status != DocumentOutcome::Status::kLoaded)
                    continue;
                std::int64_t dense =
                    base + static_cast<std::int64_t>(doc_remap.size());
                doc_remap[outcome.doc] = dense;
                label_shift[outcome.doc] = label_cursor;
                label_cursor += outcome.label_span;
                outcome.doc = dense;
            }
            bool identity = true;
            for (const auto& [from, to] : doc_remap)
                if (from != to) identity = false;
            bool any_shift = false;
            for (const auto& [doc, shift] : label_shift)
                if (shift != 0) any_shift = true;

            // Merge: batched appends with index maintenance deferred to
            // one rebuild pass.  Rows come from the trusted shredding
            // plans, so per-row cell validation is skipped (batch shape is
            // still checked).
            db_.begin_bulk();
            for (const std::string& name : db_.table_names()) {
                fault::maybe_fail("bulk.merge");
                rdb::Table* table = db_.table(name);
                int doc_col = table->def().column_index("doc");
                // Label columns that need the per-document shift: the
                // entity tables' pre/post (role-checked — an XML attribute
                // that happens to be called "pre" is untouched) and
                // xrel_docs' recorded label_base.
                std::vector<int> shift_cols;
                if (const rel::TableSchema* ts = schema_.table(name)) {
                    for (const char* lc : {"pre", "post"}) {
                        const rel::Column* c = ts->column(lc);
                        if (c != nullptr && c->role == rel::ColumnRole::kLabel)
                            shift_cols.push_back(ts->column_index(lc));
                    }
                    if (name == "xrel_docs") {
                        int c = ts->column_index("label_base");
                        if (c >= 0) shift_cols.push_back(c);
                    }
                }
                if (!any_shift) shift_cols.clear();
                std::size_t total = 0;
                for (auto& sink : sinks) {
                    if (auto* rows = sink.staged_for(table))
                        total += rows->size();
                }
                if (total == 0) continue;
                table->reserve_rows(total);
                for (auto& sink : sinks) {
                    auto* rows = sink.staged_for(table);
                    if (rows == nullptr || rows->empty()) continue;
                    if (doc_col >= 0 && (!identity || !shift_cols.empty())) {
                        for (rdb::Row& row : *rows) {
                            if (row[doc_col].is_null()) continue;
                            std::int64_t prov = row[doc_col].as_integer();
                            if (!shift_cols.empty()) {
                                auto sit = label_shift.find(prov);
                                if (sit != label_shift.end()) {
                                    for (int c : shift_cols) {
                                        if (row[c].is_null()) continue;
                                        row[c] = rdb::Value(
                                            row[c].as_integer() + sit->second);
                                    }
                                }
                            }
                            if (!identity) {
                                auto it = doc_remap.find(prov);
                                if (it != doc_remap.end())
                                    row[doc_col] = rdb::Value(it->second);
                            }
                        }
                    }
                    table->insert_batch(std::move(*rows),
                                        /*validate_rows=*/false);
                }
            }
            db_.end_bulk();

            // Single resolution pass over the merged ID registry; a
            // failure here is corpus-scoped and rolls everything back
            // regardless of policy.
            loader_.resolve_references(report.stats);
            db_.commit_unit();
        }
    } catch (...) {
        db_.rollback_unit();
        throw;
    }

    // Lifetime stats absorb only what committed; unresolved_references
    // stays a snapshot of the latest resolution pass.
    if (report.loaded > 0) {
        std::size_t unresolved_snapshot = report.stats.unresolved_references;
        stats_.merge(report.stats);
        stats_.unresolved_references = unresolved_snapshot;
    }

    // Quarantine records are written after the load unit closed, so they
    // persist while the rejected documents' rows do not — and vanish with
    // everything else if the load itself aborts.  Their own unit makes the
    // writes atomic and flushes them through the WAL at commit.
    if (options.on_error == FailurePolicy::kQuarantine) {
        bool any = false;
        for (const auto& outcome : report.outcomes)
            any |= outcome.status == DocumentOutcome::Status::kQuarantined;
        if (any) {
            db_.begin_unit();
            try {
                for (const auto& outcome : report.outcomes) {
                    if (outcome.status != DocumentOutcome::Status::kQuarantined)
                        continue;
                    quarantine_document(db_, outcome, raw_text(outcome.index));
                    ++report.quarantined;
                }
                db_.commit_unit();
            } catch (...) {
                db_.rollback_unit();
                throw;
            }
        }
    }
    return report;
}

}  // namespace xr::loader
