#include "loader/loader.hpp"

#include <algorithm>

#include "common/fault.hpp"
#include "common/strings.hpp"
#include "rel/translate.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace xr::loader {

namespace {

using rdb::Value;

rdb::Row null_row(const rel::TableSchema& t) {
    return rdb::Row(t.columns.size());
}

int col(const rel::TableSchema& t, std::string_view name) {
    return t.column_index(name);
}

/// Serial sink: rows go straight into table storage.
class DirectSink final : public RowSink {
public:
    std::int64_t allocate_pk(rdb::Table& table) override {
        return table.allocate_pk();
    }
    void append(rdb::Table& table, rdb::Row row) override {
        table.insert(std::move(row));
    }
};

}  // namespace

std::string_view to_string(FailurePolicy policy) {
    switch (policy) {
        case FailurePolicy::kFailFast: return "fail_fast";
        case FailurePolicy::kSkip: return "skip";
        case FailurePolicy::kQuarantine: return "quarantine";
    }
    return "?";
}

rdb::Table& ensure_quarantine_table(rdb::Database& db) {
    if (rdb::Table* t = db.table(kQuarantineTable)) return *t;
    rdb::TableDef def;
    def.name = kQuarantineTable;
    def.columns = {
        {"pk", rdb::ValueType::kInteger, true, true},
        {"idx", rdb::ValueType::kInteger, true, false},
        {"error_type", rdb::ValueType::kText, true, false},
        {"error_message", rdb::ValueType::kText, false, false},
        {"line", rdb::ValueType::kInteger, false, false},
        {"col", rdb::ValueType::kInteger, false, false},
        {"raw_xml", rdb::ValueType::kText, false, false},
    };
    return db.create_table(std::move(def));
}

LoadErrorInfo classify_load_error() {
    try {
        throw;
    } catch (const fault::InjectedFault& e) {
        return {"fault", e.bare_message(), e.where(), true};
    } catch (const ParseError& e) {
        return {"parse", e.bare_message(), e.where(), false};
    } catch (const ValidationError& e) {
        return {"validation", e.bare_message(), e.where(), false};
    } catch (const SchemaError& e) {
        return {"schema", e.bare_message(), e.where(), false};
    } catch (const Error& e) {
        return {"error", e.bare_message(), e.where(), false};
    } catch (const std::exception& e) {
        return {"internal", e.what(), {}, true};
    } catch (...) {
        return {"unknown", "unknown error", {}, true};
    }
}

void quarantine_document(rdb::Database& db, const DocumentOutcome& outcome,
                         std::string raw_text) {
    rdb::Table& q = ensure_quarantine_table(db);
    const rdb::TableDef& def = q.def();
    rdb::Row row(q.column_count());
    row[def.column_index("idx")] =
        Value(static_cast<std::int64_t>(outcome.index));
    row[def.column_index("error_type")] = Value(outcome.error_type);
    row[def.column_index("error_message")] = Value(outcome.error);
    if (outcome.where.valid()) {
        row[def.column_index("line")] =
            Value(static_cast<std::int64_t>(outcome.where.line));
        row[def.column_index("col")] =
            Value(static_cast<std::int64_t>(outcome.where.column));
    }
    row[def.column_index("raw_xml")] = Value(std::move(raw_text));
    q.insert(std::move(row));
}

std::string format_outcome(const DocumentOutcome& outcome) {
    std::string out = "doc " + std::to_string(outcome.index) + " [" +
                      outcome.error_type + "] " + outcome.error;
    if (outcome.where.valid()) out += " at " + outcome.where.to_string();
    return out;
}

Loader::Loader(const dtd::Dtd& logical, const mapping::MappingResult& mapping,
               const rel::RelationalSchema& schema, rdb::Database& db)
    : logical_(logical),
      mapping_(mapping),
      schema_(schema),
      db_(db),
      validator_(logical) {
    build_plans();
}

void Loader::build_plans() {
    id_registry_ = db_.table(rel::kIdRegistryTable);
    text_segments_ = db_.table(rel::kTextSegmentsTable);
    overflow_ = db_.table(rel::kOverflowTable);

    // Continue doc-id assignment where a recovered database left off —
    // a Loader over a freshly open()ed data directory must not reuse ids
    // already committed to xrel_docs.
    if (const rdb::Table* docs = db_.table("xrel_docs")) {
        int c = docs->def().column_index("doc");
        int b = docs->def().column_index("label_base");
        int s = docs->def().column_index("label_span");
        for (rdb::RowId id = 0; id < docs->row_count(); ++id) {
            const auto& row = docs->row(id);
            if (c >= 0 && !row[c].is_null())
                next_doc_ = std::max(next_doc_, row[c].as_integer() + 1);
            if (b >= 0 && s >= 0 && !row[b].is_null() && !row[s].is_null())
                next_label_ = std::max(
                    next_label_, row[b].as_integer() + row[s].as_integer());
        }
    }

    // Reference plans, keyed later through entity plans.
    std::map<std::string, RefPlan*> ref_by_name;  // relationship name → plan
    for (const auto& t : schema_.tables()) {
        if (t.kind != rel::TableKind::kReferenceRel) continue;
        auto plan = std::make_unique<RefPlan>();
        plan->table = &t;
        plan->storage = db_.table(t.name);
        plan->doc_col = col(t, "doc");
        plan->source_col = col(t, "source_pk");
        plan->idref_col = col(t, "idref");
        plan->ord_col = col(t, "ord");
        plan->target_entity_col = col(t, "target_entity");
        plan->target_pk_col = col(t, "target_pk");
        ref_by_name[t.source] = plan.get();
        ref_plans_.push_back(std::move(plan));
    }

    // NESTED plans.
    std::map<std::string, NestedPlan*> nested_by_name;
    for (const auto& t : schema_.tables()) {
        if (t.kind != rel::TableKind::kNestedRel) continue;
        auto plan = std::make_unique<NestedPlan>();
        plan->table = &t;
        plan->storage = db_.table(t.name);
        plan->doc_col = col(t, "doc");
        plan->parent_col = col(t, "parent_pk");
        plan->child_col = col(t, "child_pk");
        plan->ord_col = col(t, "ord");
        nested_by_name[t.source] = plan.get();
        nested_plans_.push_back(std::move(plan));
    }

    // Group plans (one per virtual group element).
    for (const auto& g : mapping_.converted.nested_groups) {
        GroupPlan plan;
        plan.table = schema_.table_for(rel::TableKind::kGroupRel, g.name);
        if (plan.table == nullptr) continue;
        plan.storage = db_.table(plan.table->name);
        plan.pk_col = col(*plan.table, "pk");
        plan.doc_col = col(*plan.table, "doc");
        plan.parent_col = col(*plan.table, "parent_pk");
        plan.ord_col = col(*plan.table, "ord");
        for (const auto& c : plan.table->columns) {
            if (c.role == rel::ColumnRole::kAttribute)
                plan.attr_columns[c.source] = plan.table->column_index(c.name);
            if (c.role == rel::ColumnRole::kForeignKey && c.name != "parent_pk" &&
                !c.source.empty())
                plan.member_columns[c.source] = plan.table->column_index(c.name);
        }
        // Distilled attributes whose owner is the virtual group element.
        const std::string virtual_name = g.name.substr(1);  // strip 'N'
        for (const auto& d : mapping_.metadata.distilled) {
            if (d.element != virtual_name) continue;
            auto it = plan.attr_columns.find(d.attribute);
            if (it != plan.attr_columns.end())
                plan.distilled_columns[d.original_child] = it->second;
        }
        // Link tables for repeatable members.
        for (const auto& t : schema_.tables()) {
            if (t.kind != rel::TableKind::kGroupMemberLink || t.source != g.name)
                continue;
            GroupPlan::Link link;
            link.table = &t;
            link.storage = db_.table(t.name);
            link.doc_col = col(t, "doc");
            link.group_col = col(t, "group_pk");
            link.member_col = col(t, "member_pk");
            link.ord_col = col(t, "ord");
            plan.link_tables[t.source2] = link;
        }
        group_plans_[virtual_name] = std::move(plan);
    }

    // Entity plans.
    for (const auto& ce : mapping_.converted.elements) {
        EntityPlan plan;
        plan.entity = ce.name;
        plan.table = schema_.entity_table(ce.name);
        if (plan.table == nullptr) continue;
        plan.storage = db_.table(plan.table->name);
        plan.pk_col = col(*plan.table, "pk");
        plan.doc_col = col(*plan.table, "doc");
        plan.pcdata_col = col(*plan.table, "pcdata");
        plan.raw_col = col(*plan.table, "raw_xml");
        plan.pre_col = col(*plan.table, "pre");
        plan.post_col = col(*plan.table, "post");
        plan.level_col = col(*plan.table, "level");

        for (const auto& c : plan.table->columns) {
            if (c.role == rel::ColumnRole::kAttribute)
                plan.attr_columns[c.source] = plan.table->column_index(c.name);
        }
        for (const auto& d : mapping_.metadata.distilled) {
            if (d.element != ce.name) continue;
            auto it = plan.attr_columns.find(d.attribute);
            if (it != plan.attr_columns.end())
                plan.distilled_columns[d.original_child] = it->second;
        }

        // ID / IDREF attributes come from the *original* declaration.
        if (const dtd::ElementDecl* decl = logical_.element(ce.name)) {
            if (const dtd::AttributeDecl* id = decl->id_attribute())
                plan.id_attr = id->name;
            const rel::TableSchema* entity_table = plan.table;
            for (const auto* idref : decl->idref_attributes()) {
                // REFERENCE relationships are named after the attribute,
                // qualified with the source when two elements share an
                // attribute name — so verify the candidate table actually
                // references *this* entity before adopting it.
                RefPlan* match = nullptr;
                for (const std::string& cand :
                     {idref->name + "_" + ce.name, idref->name}) {
                    auto it = ref_by_name.find(cand);
                    if (it == ref_by_name.end()) continue;
                    const rel::Column* sc = it->second->table->column("source_pk");
                    if (sc != nullptr && sc->references == entity_table->name) {
                        match = it->second;
                        break;
                    }
                }
                if (match != nullptr)
                    plan.idref_attrs.emplace_back(idref->name, match);
            }
        }

        switch (ce.residual) {
            case mapping::ResidualContent::kEmpty:
                plan.mode = EntityPlan::Mode::kEmpty;
                break;
            case mapping::ResidualContent::kAny:
                plan.mode = EntityPlan::Mode::kAny;
                break;
            case mapping::ResidualContent::kPCData:
                plan.mode = EntityPlan::Mode::kPCData;
                break;
            case mapping::ResidualContent::kMixed:
                plan.mode = EntityPlan::Mode::kMixed;
                break;
            case mapping::ResidualContent::kStripped:
                plan.mode = EntityPlan::Mode::kChildren;
                break;
        }

        // Content matcher from the grouped (step-1) DTD, which still lists
        // distilled children and marks hoisted groups.
        if (plan.mode == EntityPlan::Mode::kChildren) {
            const dtd::ElementDecl* grouped_decl = mapping_.grouped.element(ce.name);
            if (grouped_decl != nullptr)
                plan.plan = build_plan(mapping_.grouped, mapping_.metadata,
                                       *grouped_decl);
        }

        // Direct NESTED relationships out of this element (incl. mixed).
        for (const auto& n : mapping_.converted.nested) {
            if (n.parent != ce.name) continue;
            auto it = nested_by_name.find(n.name);
            if (it != nested_by_name.end()) plan.nested[n.child] = it->second;
        }

        entity_plans_[ce.name] = std::move(plan);
    }
}

std::int64_t Loader::load(xml::Document& doc, const LoadOptions& options) {
    DirectSink sink;
    std::int64_t saved_doc = next_doc_;
    std::int64_t saved_label = next_label_;
    LoadStats doc_stats;
    db_.begin_unit();
    try {
        std::int64_t doc_id =
            shred_document(doc, next_doc_++, options, sink, doc_stats,
                           next_label_);
        next_label_ += doc_stats.label_span;
        if (options.resolve_references) resolve_references(doc_stats);
        db_.commit_unit();
        // Lifetime stats absorb the document only once it committed;
        // unresolved_references stays a snapshot of the latest pass.
        std::size_t unresolved = doc_stats.unresolved_references;
        stats_.merge(doc_stats);
        if (options.resolve_references)
            stats_.unresolved_references = unresolved;
        return doc_id;
    } catch (...) {
        db_.rollback_unit();
        next_doc_ = saved_doc;
        next_label_ = saved_label;
        throw;
    }
}

LoadReport Loader::load_corpus(const std::vector<xml::Document*>& docs,
                               const LoadOptions& options) {
    return corpus_load(
        docs.size(),
        [&](std::size_t i, RowSink& sink, LoadStats& stats,
            const LoadOptions& lopt) {
            shred_document(*docs[i], next_doc_++, lopt, sink, stats,
                           next_label_);
            next_label_ += stats.label_span;
        },
        [&](std::size_t i) { return xml::serialize(*docs[i]); }, options);
}

LoadReport Loader::load_texts(const std::vector<std::string>& texts,
                              const LoadOptions& options) {
    return corpus_load(
        texts.size(),
        [&](std::size_t i, RowSink& sink, LoadStats& stats,
            const LoadOptions& lopt) {
            auto doc = xml::parse_document(texts[i], lopt.parse);
            shred_document(*doc, next_doc_++, lopt, sink, stats, next_label_);
            next_label_ += stats.label_span;
        },
        [&](std::size_t i) { return texts[i]; }, options);
}

LoadReport Loader::corpus_load(
    std::size_t count,
    const std::function<void(std::size_t, RowSink&, LoadStats&,
                             const LoadOptions&)>& shred_one,
    const std::function<std::string(std::size_t)>& raw_text,
    const LoadOptions& options) {
    LoadReport report;
    report.policy = options.on_error;
    report.attempted = count;
    LoadOptions lopt = options;
    lopt.resolve_references = false;  // one pass over the whole corpus

    DirectSink sink;
    std::int64_t corpus_doc_mark = next_doc_;
    std::int64_t corpus_label_mark = next_label_;
    db_.begin_unit();  // corpus unit: fail_fast (and any infrastructure
                       // failure) restores the pre-load state exactly
    try {
        for (std::size_t i = 0; i < count; ++i) {
            DocumentOutcome outcome;
            outcome.index = i;
            std::int64_t saved_doc = next_doc_;
            std::int64_t saved_label = next_label_;
            LoadStats doc_stats;
            db_.begin_unit();  // document unit
            try {
                shred_one(i, sink, doc_stats, lopt);
                db_.commit_unit();
                report.stats.merge(doc_stats);
                outcome.doc = next_doc_ - 1;
                ++report.loaded;
            } catch (...) {
                // Roll the document back completely — rows, indexes, pk
                // counters, its doc id and its label interval — before
                // deciding what's next.  Returning the label watermark
                // keeps intervals dense; even when later documents already
                // claimed higher bases the resulting gap is harmless
                // (disjoint ranges cannot fake containment).
                db_.rollback_unit();
                next_doc_ = saved_doc;
                next_label_ = saved_label;
                LoadErrorInfo info = classify_load_error();
                outcome.status = options.on_error == FailurePolicy::kQuarantine
                                     ? DocumentOutcome::Status::kQuarantined
                                     : DocumentOutcome::Status::kFailed;
                outcome.error_type = std::move(info.type);
                outcome.error = std::move(info.message);
                outcome.where = info.where;
                outcome.retryable = info.retryable;
                ++report.failed;
                if (outcome.retryable) ++report.retryable;
                if (report.errors.size() < options.max_errors)
                    report.errors.push_back(format_outcome(outcome));
                report.outcomes.push_back(std::move(outcome));
                if (options.on_error == FailurePolicy::kFailFast) throw;
                continue;
            }
            report.outcomes.push_back(std::move(outcome));
        }
        if (report.loaded == 0) {
            // Nothing survived: make the load a no-op (no resolution pass
            // over pre-existing data, doc counter restored).
            db_.rollback_unit();
            next_doc_ = corpus_doc_mark;
            next_label_ = corpus_label_mark;
        } else {
            // Single resolution pass; a failure here is infrastructure-
            // scoped and rolls back the whole corpus regardless of policy.
            resolve_references(report.stats);
            db_.commit_unit();
        }
    } catch (...) {
        db_.rollback_unit();
        next_doc_ = corpus_doc_mark;
        next_label_ = corpus_label_mark;
        throw;
    }
    // Lifetime stats: merged only once the corpus committed.  Unresolved
    // references are a snapshot of the resolution pass, not a sum.
    if (report.loaded > 0) {
        std::size_t unresolved_snapshot = report.stats.unresolved_references;
        stats_.merge(report.stats);
        stats_.unresolved_references = unresolved_snapshot;
    }

    // Quarantine records survive only when the load itself commits.  They
    // go through their own unit so the commit flushes them to the WAL —
    // otherwise these depth-0 inserts would sit in the log buffer and a
    // crash before the next load would silently drop them.
    if (options.on_error == FailurePolicy::kQuarantine) {
        bool any = false;
        for (const auto& outcome : report.outcomes)
            any |= outcome.status == DocumentOutcome::Status::kQuarantined;
        if (any) {
            db_.begin_unit();
            try {
                for (const auto& outcome : report.outcomes) {
                    if (outcome.status != DocumentOutcome::Status::kQuarantined)
                        continue;
                    quarantine_document(db_, outcome, raw_text(outcome.index));
                    ++report.quarantined;
                }
                db_.commit_unit();
            } catch (...) {
                db_.rollback_unit();
                throw;
            }
        }
    }
    return report;
}

std::int64_t Loader::shred_document(xml::Document& doc, std::int64_t doc_id,
                                    const LoadOptions& options, RowSink& sink,
                                    LoadStats& stats,
                                    std::int64_t label_base) const {
    if (options.validate) {
        validate::ValidateOptions vopt;
        vopt.apply_defaults = true;
        vopt.strict = options.strict;
        validator_.check(doc, vopt);
    }
    if (doc.root() == nullptr)
        throw ValidationError("cannot load a document without a root element");

    std::int64_t label = label_base;
    std::int64_t root_pk =
        load_element(*doc.root(), doc_id, options, sink, stats, label, 0);
    stats.label_span = label - label_base;
    if (rdb::Table* docs = db_.table("xrel_docs")) {
        sink.append(*docs, {Value::null(), Value(doc_id),
                            Value(doc.root()->name()), Value(root_pk),
                            Value(label_base), Value(stats.label_span)});
    }
    ++stats.documents;
    return doc_id;
}

std::int64_t Loader::load_element(const xml::Element& e, std::int64_t doc,
                                  const LoadOptions& options, RowSink& sink,
                                  LoadStats& stats, std::int64_t& label,
                                  std::int64_t level) const {
    fault::maybe_fail("loader.shred");
    ++stats.elements_visited;
    auto plan_it = entity_plans_.find(e.name());
    if (plan_it == entity_plans_.end()) {
        if (options.strict)
            throw ValidationError("no relational mapping for element '" +
                                      e.name() + "'",
                                  e.location());
        ++stats.skipped_elements;
        return -1;
    }
    const EntityPlan& plan = plan_it->second;

    rdb::Row row = null_row(*plan.table);
    if (plan.doc_col >= 0) row[plan.doc_col] = Value(doc);
    // Dietz interval label: pre ticks at entry, post after the children
    // (below), so descendant(d, a) ⇔ a.pre < d.pre < a.post.
    if (plan.pre_col >= 0) row[plan.pre_col] = Value(label++);
    if (plan.level_col >= 0) row[plan.level_col] = Value(level);
    for (const auto& attr : e.attributes()) {
        auto it = plan.attr_columns.find(attr.name);
        if (it != plan.attr_columns.end()) row[it->second] = Value(attr.value);
    }
    switch (plan.mode) {
        case EntityPlan::Mode::kPCData:
        case EntityPlan::Mode::kMixed:
            if (plan.pcdata_col >= 0) row[plan.pcdata_col] = Value(e.text());
            break;
        case EntityPlan::Mode::kAny:
            if (plan.raw_col >= 0) {
                std::string raw;
                xml::SerializeOptions sopt;
                sopt.indent.clear();
                for (const auto& child : e.children())
                    raw += xml::serialize(*child, sopt);
                row[plan.raw_col] = Value(std::move(raw));
            }
            break;
        case EntityPlan::Mode::kChildren:
        case EntityPlan::Mode::kEmpty:
            break;
    }

    // Keys are allocated before insertion so child rows (and the ID
    // registry) can reference this row while it is still being assembled —
    // distilled #PCDATA children fill their columns only once the content
    // events are processed.
    std::int64_t pk = sink.allocate_pk(*plan.storage);
    if (plan.pk_col >= 0) row[plan.pk_col] = Value(pk);

    // ID registry.
    if (!plan.id_attr.empty() && id_registry_ != nullptr) {
        if (const std::string* idval = e.attribute(plan.id_attr)) {
            const rel::TableSchema& rt = *schema_.table(rel::kIdRegistryTable);
            rdb::Row reg = null_row(rt);
            int c;
            if ((c = col(rt, "doc")) >= 0) reg[c] = Value(doc);
            reg[col(rt, "idval")] = Value(normalize_space(*idval));
            reg[col(rt, "entity")] = Value(plan.entity);
            reg[col(rt, "entity_pk")] = Value(pk);
            sink.append(*id_registry_, std::move(reg));
        }
    }

    // IDREF rows (targets resolved later).
    for (const auto& [attr_name, ref] : plan.idref_attrs) {
        const std::string* value = e.attribute(attr_name);
        if (value == nullptr) continue;
        std::vector<std::string> tokens = split_name_tokens(*value);
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            rdb::Row rrow = null_row(*ref->table);
            if (ref->doc_col >= 0) rrow[ref->doc_col] = Value(doc);
            rrow[ref->source_col] = Value(pk);
            rrow[ref->idref_col] = Value(std::move(tokens[i]));
            if (ref->ord_col >= 0)
                rrow[ref->ord_col] = Value(static_cast<std::int64_t>(i));
            sink.append(*ref->storage, std::move(rrow));
            ++stats.reference_rows;
        }
    }

    // Structure.
    switch (plan.mode) {
        case EntityPlan::Mode::kChildren:
            load_children(e, plan, row, pk, doc, options, sink, stats, label,
                          level);
            break;
        case EntityPlan::Mode::kMixed: {
            // Element members of mixed content become NESTED rows and text
            // nodes become xrel_text segment rows, both with the node index
            // as ord — so interleaving reconstructs exactly.
            const auto& children = e.children();
            for (std::size_t i = 0; i < children.size(); ++i) {
                if (children[i]->is_text() && text_segments_ != nullptr) {
                    const auto& text =
                        static_cast<const xml::Text&>(*children[i]);
                    rdb::Row trow(text_segments_->column_count());
                    const rdb::TableDef& td = text_segments_->def();
                    int c;
                    if ((c = td.column_index("doc")) >= 0) trow[c] = Value(doc);
                    trow[td.column_index("entity")] = Value(plan.entity);
                    trow[td.column_index("parent_pk")] = Value(pk);
                    if ((c = td.column_index("ord")) >= 0)
                        trow[c] = Value(static_cast<std::int64_t>(i));
                    trow[td.column_index("content")] = Value(text.content());
                    sink.append(*text_segments_, std::move(trow));
                    ++stats.relationship_rows;
                    continue;
                }
                if (!children[i]->is_element()) continue;
                const auto& child = static_cast<const xml::Element&>(*children[i]);
                auto it = plan.nested.find(child.name());
                if (it == plan.nested.end()) {
                    if (options.strict)
                        throw ValidationError(
                            "element '" + child.name() +
                                "' not allowed in mixed content of '" + e.name() +
                                "'",
                            child.location());
                    store_overflow(child, plan.entity, pk, doc, i, sink, stats);
                    continue;
                }
                std::int64_t cpk = load_element(child, doc, options, sink,
                                                stats, label, level + 1);
                if (cpk < 0) continue;
                const NestedPlan& np = *it->second;
                rdb::Row nrow = null_row(*np.table);
                if (np.doc_col >= 0) nrow[np.doc_col] = Value(doc);
                nrow[np.parent_col] = Value(pk);
                nrow[np.child_col] = Value(cpk);
                if (np.ord_col >= 0)
                    nrow[np.ord_col] = Value(static_cast<std::int64_t>(i));
                sink.append(*np.storage, std::move(nrow));
                ++stats.relationship_rows;
            }
            break;
        }
        default:
            break;
    }

    if (plan.post_col >= 0) row[plan.post_col] = Value(label++);
    sink.append(*plan.storage, std::move(row));
    ++stats.entity_rows;
    return pk;
}

void Loader::load_children(const xml::Element& e, const EntityPlan& plan,
                           rdb::Row& parent_row, std::int64_t parent_pk,
                           std::int64_t doc, const LoadOptions& options,
                           RowSink& sink, LoadStats& stats,
                           std::int64_t& label, std::int64_t level) const {
    std::vector<xml::Element*> children = e.child_elements();
    std::vector<std::string_view> names;
    names.reserve(children.size());
    for (const auto* c : children) names.emplace_back(c->name());

    std::vector<MatchEvent> events;
    if (!match_children(plan.plan, names, events)) {
        if (options.strict)
            throw ValidationError("children of '" + e.name() +
                                      "' do not match the content model",
                                  e.location());
        // Lenient fallback: link whatever children have NESTED tables; the
        // rest go to the overflow table (STORED-style) rather than vanish.
        for (std::size_t i = 0; i < children.size(); ++i) {
            auto it = plan.nested.find(children[i]->name());
            if (it == plan.nested.end()) {
                store_overflow(*children[i], plan.entity, parent_pk, doc, i,
                               sink, stats);
                continue;
            }
            std::int64_t cpk = load_element(*children[i], doc, options, sink,
                                            stats, label, level + 1);
            if (cpk < 0) continue;
            const NestedPlan& np = *it->second;
            rdb::Row nrow = null_row(*np.table);
            if (np.doc_col >= 0) nrow[np.doc_col] = Value(doc);
            nrow[np.parent_col] = Value(parent_pk);
            nrow[np.child_col] = Value(cpk);
            if (np.ord_col >= 0)
                nrow[np.ord_col] = Value(static_cast<std::int64_t>(i));
            sink.append(*np.storage, std::move(nrow));
            ++stats.relationship_rows;
        }
        return;
    }

    // Context stack: the entity frame at the bottom, one frame per open
    // group instance above it.  Group rows stay buffered until ExitGroup so
    // distilled/member columns can be filled before constraint checking.
    struct Context {
        bool is_group = false;
        const GroupPlan* group = nullptr;
        std::int64_t pk = 0;
        rdb::Row* row = nullptr;  ///< entity frame: caller's row
        rdb::Row group_row;       ///< group frame: buffered here
    };
    std::vector<Context> stack;
    stack.reserve(8);
    {
        Context root;
        root.pk = parent_pk;
        root.row = &parent_row;
        stack.push_back(std::move(root));
    }
    auto current_row = [&]() -> rdb::Row& {
        Context& ctx = stack.back();
        return ctx.is_group ? ctx.group_row : *ctx.row;
    };

    for (const auto& event : events) {
        switch (event.type) {
            case MatchEvent::Type::kEnterGroup: {
                auto git = group_plans_.find(event.node->name);
                if (git == group_plans_.end() || git->second.storage == nullptr) {
                    // Group without a table (e.g. empty body): keep parent
                    // context so members attach one level up.
                    Context copy;
                    copy.is_group = stack.back().is_group;
                    copy.group = stack.back().group;
                    copy.pk = stack.back().pk;
                    copy.row = stack.back().row;
                    if (copy.is_group) {
                        // Degenerate; share the parent's buffer by pointer.
                        copy.is_group = false;
                        copy.row = &current_row();
                    }
                    stack.push_back(std::move(copy));
                    break;
                }
                const GroupPlan& gp = git->second;
                Context ctx;
                ctx.is_group = true;
                ctx.group = &gp;
                ctx.pk = sink.allocate_pk(*gp.storage);
                ctx.group_row = null_row(*gp.table);
                if (gp.pk_col >= 0) ctx.group_row[gp.pk_col] = Value(ctx.pk);
                if (gp.doc_col >= 0) ctx.group_row[gp.doc_col] = Value(doc);
                ctx.group_row[gp.parent_col] = Value(stack.back().pk);
                if (gp.ord_col >= 0)
                    ctx.group_row[gp.ord_col] =
                        Value(static_cast<std::int64_t>(event.pos));
                stack.push_back(std::move(ctx));
                break;
            }
            case MatchEvent::Type::kExitGroup: {
                Context done = std::move(stack.back());
                stack.pop_back();
                if (done.is_group) {
                    sink.append(*done.group->storage,
                                std::move(done.group_row));
                    ++stats.relationship_rows;
                }
                break;
            }
            case MatchEvent::Type::kMatchChild: {
                const xml::Element& child = *children[event.pos];
                Context& ctx = stack.back();

                // Distilled #PCDATA subelement -> column on the owner row.
                const std::map<std::string, int>& distilled =
                    ctx.is_group ? ctx.group->distilled_columns
                                 : plan.distilled_columns;
                auto dit = distilled.find(child.name());
                if (dit != distilled.end()) {
                    current_row()[dit->second] = Value(child.text());
                    break;
                }

                std::int64_t cpk = load_element(child, doc, options, sink,
                                                stats, label, level + 1);
                if (cpk < 0) break;

                if (ctx.is_group) {
                    auto lit = ctx.group->link_tables.find(child.name());
                    if (lit != ctx.group->link_tables.end()) {
                        const GroupPlan::Link& link = lit->second;
                        rdb::Row lrow = null_row(*link.table);
                        if (link.doc_col >= 0) lrow[link.doc_col] = Value(doc);
                        lrow[link.group_col] = Value(ctx.pk);
                        lrow[link.member_col] = Value(cpk);
                        if (link.ord_col >= 0)
                            lrow[link.ord_col] =
                                Value(static_cast<std::int64_t>(event.pos));
                        sink.append(*link.storage, std::move(lrow));
                        ++stats.relationship_rows;
                    } else {
                        auto mit = ctx.group->member_columns.find(child.name());
                        if (mit != ctx.group->member_columns.end())
                            current_row()[mit->second] = Value(cpk);
                    }
                } else {
                    auto nit = plan.nested.find(child.name());
                    if (nit != plan.nested.end()) {
                        const NestedPlan& np = *nit->second;
                        rdb::Row nrow = null_row(*np.table);
                        if (np.doc_col >= 0) nrow[np.doc_col] = Value(doc);
                        nrow[np.parent_col] = Value(ctx.pk);
                        nrow[np.child_col] = Value(cpk);
                        if (np.ord_col >= 0)
                            nrow[np.ord_col] =
                                Value(static_cast<std::int64_t>(event.pos));
                        sink.append(*np.storage, std::move(nrow));
                        ++stats.relationship_rows;
                    }
                }
                break;
            }
        }
    }
}

void Loader::store_overflow(const xml::Element& e,
                            const std::string& parent_entity,
                            std::int64_t parent_pk, std::int64_t doc,
                            std::size_t ord, RowSink& sink,
                            LoadStats& stats) const {
    ++stats.skipped_elements;
    if (overflow_ == nullptr) return;
    xml::SerializeOptions compact;
    compact.indent.clear();
    compact.declaration = false;
    compact.doctype = false;
    const rdb::TableDef& td = overflow_->def();
    rdb::Row row(overflow_->column_count());
    int c;
    if ((c = td.column_index("doc")) >= 0) row[c] = Value(doc);
    row[td.column_index("parent_entity")] = Value(parent_entity);
    row[td.column_index("parent_pk")] = Value(parent_pk);
    if ((c = td.column_index("ord")) >= 0)
        row[c] = Value(static_cast<std::int64_t>(ord));
    row[td.column_index("raw_xml")] = Value(xml::serialize(e, compact));
    sink.append(*overflow_, std::move(row));
    ++stats.overflow_rows;
}

std::size_t Loader::unload(std::int64_t doc) {
    rdb::Table* docs = db_.table("xrel_docs");
    if (docs == nullptr)
        throw SchemaError("cannot unload: xrel_docs metadata table is missing");
    if (docs->lookup("doc", Value(doc)).empty())
        throw SchemaError("no loaded document with id " + std::to_string(doc));

    std::size_t removed = 0;
    for (const auto& t : schema_.tables()) {
        if (t.kind == rel::TableKind::kMetadata) continue;
        rdb::Table* storage = db_.table(t.name);
        if (storage == nullptr || t.column("doc") == nullptr) continue;
        removed += storage->delete_where("doc", Value(doc));
    }
    docs->delete_where("doc", Value(doc));
    --stats_.documents;
    return removed;
}

void Loader::resolve_references() { resolve_references(stats_); }

void Loader::resolve_references(LoadStats& stats) {
    // Unresolved is a snapshot of the current pass (rows already resolved
    // earlier are skipped and never recounted).
    stats.unresolved_references = 0;
    for (auto& ref : ref_plans_) resolve_references_in(*ref, stats);
}

void Loader::resolve_references_in(RefPlan& ref, LoadStats& stats) {
    if (ref.storage == nullptr || id_registry_ == nullptr) return;
    const rel::TableSchema& rt = *schema_.table(rel::kIdRegistryTable);
    int reg_doc = col(rt, "doc");
    int reg_entity = col(rt, "entity");
    int reg_pk = col(rt, "entity_pk");

    for (rdb::RowId id = 0; id < ref.storage->row_count(); ++id) {
        const rdb::Row& row = ref.storage->row(id);
        if (!row[ref.target_pk_col].is_null()) continue;
        fault::maybe_fail("loader.resolve");

        const Value& idref = row[ref.idref_col];
        std::vector<rdb::RowId> hits = id_registry_->lookup("idval", idref);
        bool resolved = false;
        for (rdb::RowId hit : hits) {
            const rdb::Row& reg = id_registry_->row(hit);
            // IDs are unique per document, so match the document too.
            if (ref.doc_col >= 0 && reg_doc >= 0 &&
                !(reg[reg_doc] == row[ref.doc_col]))
                continue;
            ref.storage->update(id, "target_entity", reg[reg_entity]);
            ref.storage->update(id, "target_pk", reg[reg_pk]);
            resolved = true;
            break;
        }
        if (resolved) ++stats.resolved_references;
        else ++stats.unresolved_references;
    }
}

}  // namespace xr::loader
