#include "loader/plan.hpp"

#include "common/error.hpp"

namespace xr::loader {

namespace {

using dtd::Occurrence;
using dtd::Particle;
using dtd::ParticleKind;

PlanNode convert(const dtd::Dtd& grouped, const mapping::Metadata& meta,
                 const Particle& p, std::size_t depth) {
    if (depth > 256)
        throw SchemaError("content model nesting too deep while planning");

    if (p.is_element()) {
        if (meta.group(p.name) != nullptr) {
            // Hoisted group: expand to an explicit boundary node whose only
            // child is the group body.
            PlanNode node;
            node.kind = PlanNode::Kind::kGroup;
            node.name = p.name;
            node.occurrence = p.occurrence;
            const dtd::ElementDecl* g = grouped.element(p.name);
            if (g != nullptr &&
                g->content.category == dtd::ContentCategory::kChildren) {
                node.children.push_back(
                    convert(grouped, meta, g->content.particle, depth + 1));
            }
            return node;
        }
        PlanNode node;
        node.kind = PlanNode::Kind::kLeaf;
        node.name = p.name;
        node.occurrence = p.occurrence;
        return node;
    }

    PlanNode node;
    node.kind = p.kind == ParticleKind::kChoice ? PlanNode::Kind::kChoice
                                                : PlanNode::Kind::kSeq;
    node.occurrence = p.occurrence;
    for (const auto& c : p.children)
        node.children.push_back(convert(grouped, meta, c, depth + 1));
    return node;
}

/// Backtracking matcher in continuation-passing style.  `events` acts as a
/// trail: failed branches truncate back to their entry size.
class Matcher {
public:
    Matcher(const std::vector<std::string_view>& names,
            std::vector<MatchEvent>& events)
        : names_(names), events_(events) {}

    using Cont = std::function<bool(std::size_t)>;

    bool match(const PlanNode& node, std::size_t pos, const Cont& k) {
        switch (node.occurrence) {
            case Occurrence::kOne:
                return match_base(node, pos, k);
            case Occurrence::kOptional: {
                std::size_t mark = events_.size();
                if (match_base(node, pos, k)) return true;
                events_.resize(mark);
                return k(pos);
            }
            case Occurrence::kOneOrMore:
                return match_plus(node, pos, k);
            case Occurrence::kZeroOrMore: {
                std::size_t mark = events_.size();
                if (match_plus(node, pos, k)) return true;
                events_.resize(mark);
                return k(pos);
            }
        }
        return false;
    }

private:
    const std::vector<std::string_view>& names_;
    std::vector<MatchEvent>& events_;

    bool match_plus(const PlanNode& node, std::size_t pos, const Cont& k) {
        return match_base(node, pos, [&, pos](std::size_t next) {
            // Greedy: try another iteration first; the guard against
            // zero-width iterations keeps nullable bodies terminating.
            if (next != pos) {
                std::size_t mark = events_.size();
                if (match_plus(node, next, k)) return true;
                events_.resize(mark);
            }
            return k(next);
        });
    }

    bool match_base(const PlanNode& node, std::size_t pos, const Cont& k) {
        switch (node.kind) {
            case PlanNode::Kind::kLeaf: {
                if (pos >= names_.size() || names_[pos] != node.name) return false;
                events_.push_back({MatchEvent::Type::kMatchChild, &node, pos});
                if (k(pos + 1)) return true;
                events_.pop_back();
                return false;
            }
            case PlanNode::Kind::kSeq:
                return match_sequence(node, 0, pos, k);
            case PlanNode::Kind::kChoice: {
                for (const auto& child : node.children) {
                    std::size_t mark = events_.size();
                    if (match(child, pos, k)) return true;
                    events_.resize(mark);
                }
                return false;
            }
            case PlanNode::Kind::kGroup: {
                std::size_t mark = events_.size();
                events_.push_back({MatchEvent::Type::kEnterGroup, &node, pos});
                auto exit_then_k = [&](std::size_t next) {
                    events_.push_back({MatchEvent::Type::kExitGroup, &node, next});
                    if (k(next)) return true;
                    events_.pop_back();
                    return false;
                };
                bool ok = node.children.empty()
                              ? exit_then_k(pos)
                              : match(node.children.front(), pos, exit_then_k);
                if (!ok) events_.resize(mark);
                return ok;
            }
        }
        return false;
    }

    bool match_sequence(const PlanNode& node, std::size_t index, std::size_t pos,
                        const Cont& k) {
        if (index == node.children.size()) return k(pos);
        return match(node.children[index], pos, [&](std::size_t next) {
            return match_sequence(node, index + 1, next, k);
        });
    }
};

}  // namespace

PlanNode build_plan(const dtd::Dtd& grouped, const mapping::Metadata& meta,
                    const dtd::ElementDecl& element) {
    if (element.content.category != dtd::ContentCategory::kChildren) {
        // Structural plans exist only for element content; other categories
        // are handled directly by the loader.
        PlanNode node;
        node.kind = PlanNode::Kind::kSeq;
        return node;
    }
    return convert(grouped, meta, element.content.particle, 0);
}

bool match_children(const PlanNode& plan,
                    const std::vector<std::string_view>& names,
                    std::vector<MatchEvent>& events) {
    events.clear();
    Matcher matcher(names, events);
    bool ok = matcher.match(
        plan, 0, [&](std::size_t pos) { return pos == names.size(); });
    if (!ok) events.clear();
    return ok;
}

}  // namespace xr::loader
