// XML reconstruction — the inverse of data loading.
//
// The paper argues the information the relational model drops (schema
// ordering, data ordering, occurrence, distilled provenance) "can be
// compensated by extending our method to store the additional information
// as metadata".  Reconstructor is the proof: it rebuilds a loaded document
// purely from the database — entity rows, relationship rows sorted by their
// `ord` data-ordering columns, distilled columns re-expanded into child
// elements at their recorded schema positions, and group instances unfolded
// in content-model order.
//
// Reconstruction is exact for element structure, attributes and
// data-centric text.  The one documented approximation: mixed content
// stores its text concatenated in one column, so text/element interleaving
// inside mixed elements is not restored (the paper's ordering discussion
// explicitly scopes ordering metadata to elements).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "mapping/pipeline.hpp"
#include "rdb/database.hpp"
#include "rel/schema.hpp"
#include "xml/dom.hpp"

namespace xr::loader {

class Reconstructor {
public:
    /// `mapping`, `schema` and `db` must be the ones the document was
    /// loaded through (the loader stamps doc roots into xrel_docs).
    Reconstructor(const mapping::MappingResult& mapping,
                  const rel::RelationalSchema& schema, const rdb::Database& db);

    /// Rebuild the document with the given id; throws xr::SchemaError if
    /// the id is unknown (e.g. xrel_docs was not materialized).
    [[nodiscard]] std::unique_ptr<xml::Document> reconstruct(
        std::int64_t doc) const;

    /// Rebuild a single element subtree from its entity row.
    [[nodiscard]] std::unique_ptr<xml::Element> reconstruct_element(
        const std::string& entity, std::int64_t pk) const;

private:
    const mapping::MappingResult& mapping_;
    const rel::RelationalSchema& schema_;
    const rdb::Database& db_;

    void fill_element(xml::Element& element, const std::string& entity,
                      std::int64_t pk) const;
    void emit_group_instance(xml::Element& parent,
                             const mapping::NestedGroupDecl& decl,
                             std::int64_t group_pk) const;
};

}  // namespace xr::loader
