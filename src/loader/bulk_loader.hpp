// Corpus-scale parallel bulk loading.
//
// The paper's Section 5 loader is serial: one document at a time, one
// row-at-a-time insert, every index maintained on the fly.  BulkLoader
// keeps the exact same shredding semantics (it reuses Loader's plans and
// traversal) but restructures the work as the classic bulk-load pipeline:
//
//   1. parse/shred documents on a fixed-size worker pool; each worker
//      stages rows in thread-local per-table buffers, drawing primary keys
//      from pre-reserved ranges (Table::allocate_pk_range) so workers
//      never contend on shared state;
//   2. merge the staging buffers into table storage through the batched
//      insert fast path (Table::insert_batch) with secondary-index
//      maintenance deferred (Database::begin_bulk/end_bulk);
//   3. rebuild every index once after the append;
//   4. resolve IDREFs in a single pass over the merged ID registry.
//
// Fault tolerance (DESIGN.md §7): the whole load runs inside an atomic
// load unit, so any corpus-scoped failure — merge, index rebuild,
// reference resolution, or the first document error under kFailFast —
// rolls the database back to its pre-load state, including primary-key
// counters.  Document-scoped failures under kSkip / kQuarantine discard
// only that document's staged rows and rewind its key reservations where
// possible (LoadReport::leaked_pks counts the remainder).
//
// The loaded database is row-for-row equivalent to what the serial Loader
// produces on the same corpus, up to row order within a table and the
// numeric values of surrogate keys (ranges are handed out per worker, so
// key sequences interleave differently).  That equivalence holds for
// partial loads too: after a kSkip / kQuarantine load, doc ids are dense
// over the surviving documents, exactly as if only they were submitted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "loader/loader.hpp"

namespace xr::loader {

struct BulkLoadOptions {
    /// Worker threads for the parse/shred phase; 0 means one per hardware
    /// thread.  With 1 the pipeline runs inline but still benefits from
    /// staged batch appends and deferred index builds.
    std::size_t jobs = 0;
    /// Validate each document against the logical DTD before shredding.
    bool validate = false;
    /// Fail on unmapped elements (strict) or divert them to overflow.
    bool strict = true;
    /// Granularity of per-worker primary-key range reservation.  Larger
    /// chunks mean fewer touches of the shared counter but sparser keys.
    std::size_t pk_chunk = 256;
    /// What to do with a document that fails to parse, validate or shred.
    FailurePolicy on_error = FailurePolicy::kFailFast;
    /// Cap on formatted error strings kept in LoadReport::errors.
    std::size_t max_errors = 8;
    /// Parser guards applied by load_texts (see LoadOptions::parse).
    xml::ParseOptions parse;
};

class BulkLoader {
public:
    /// Same contract as Loader: `mapping`, `schema` and `db` must derive
    /// from `logical`, and all references must outlive the BulkLoader.
    BulkLoader(const dtd::Dtd& logical, const mapping::MappingResult& mapping,
               const rel::RelationalSchema& schema, rdb::Database& db);

    /// Load a corpus of parsed documents; doc ids are assigned densely in
    /// corpus order over the documents that survive, starting after the
    /// highest id already in xrel_docs.  Under kFailFast the first failure
    /// rolls the whole load back and rethrows; see LoadReport for the
    /// per-document outcomes the other policies produce.
    LoadReport load_corpus(const std::vector<xml::Document*>& docs,
                           const BulkLoadOptions& options = {});

    /// Parse raw XML texts on the worker pool, then load them as above —
    /// the parse phase usually dominates, so this is the fastest entry.
    LoadReport load_texts(const std::vector<std::string>& texts,
                          const BulkLoadOptions& options = {});

    /// Cumulative stats over every committed load (same convention as
    /// Loader::stats()).
    [[nodiscard]] const LoadStats& stats() const { return stats_; }

private:
    rdb::Database& db_;
    const rel::RelationalSchema& schema_;
    Loader loader_;
    LoadStats stats_;

    [[nodiscard]] std::int64_t next_doc_base() const;
    [[nodiscard]] std::int64_t next_label_base() const;
    LoadReport run(std::size_t count,
                   const std::function<void(std::size_t, RowSink&, LoadStats&,
                                            const LoadOptions&)>& shred_one,
                   const std::function<std::string(std::size_t)>& raw_text,
                   const BulkLoadOptions& options);
};

}  // namespace xr::loader
