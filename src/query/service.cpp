#include "query/service.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "sql/parser.hpp"
#include "xquery/query.hpp"

namespace xr::query {

namespace {

/// Approximate heap footprint of a result set, for the cache byte budget.
std::size_t estimate_bytes(const sql::ResultSet& rs) {
    std::size_t bytes = sizeof(sql::ResultSet);
    for (const auto& c : rs.columns) bytes += sizeof(std::string) + c.size();
    for (const auto& row : rs.rows) {
        bytes += sizeof(rdb::Row) + row.size() * sizeof(rdb::Value);
        for (const auto& v : row)
            if (v.type() == rdb::ValueType::kText) bytes += v.as_text().size();
    }
    return bytes;
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
    auto d = std::chrono::steady_clock::now() - since;
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(d).count();
    return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

}  // namespace

QueryService::QueryService(rdb::Database& db, ServiceOptions options)
    : db_(db), options_(options) {
    use_struct_index_.store(options_.use_struct_index,
                            std::memory_order_relaxed);
    use_planner_.store(options_.use_planner, std::memory_order_relaxed);
    for (std::size_t i = 0; i < options_.threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

QueryService::QueryService(rdb::Database& db,
                           const mapping::MappingResult& mapping,
                           const rel::RelationalSchema& schema,
                           ServiceOptions options)
    : QueryService(db, options) {
    translator_ = std::make_unique<xquery::SqlTranslator>(mapping, schema);
    plan_cache_ = std::make_unique<xquery::TranslationCache>(
        *translator_, options_.plan_cache_entries);
}

QueryService::~QueryService() { shutdown(); }

void QueryService::shutdown() {
    // shutdown_mu_ makes concurrent shutdown() calls (and the dtor)
    // block until the first finishes joining, so no caller ever returns
    // while workers are still running.
    std::lock_guard<std::mutex> guard(shutdown_mu_);
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
}

CancelToken QueryService::make_token(bool force_active) const {
    CancelToken::Limits limits;
    bool any = false;
    if (options_.default_deadline.count() > 0) {
        limits.deadline = Deadline::after(options_.default_deadline);
        any = true;
    }
    if (options_.row_budget > 0) {
        limits.row_budget = options_.row_budget;
        any = true;
    }
    if (options_.byte_budget > 0) {
        limits.byte_budget = options_.byte_budget;
        any = true;
    }
    if (!any && !force_active) return {};
    return CancelToken::make(limits);
}

QueryService::Result QueryService::sql(const std::string& text) {
    return sql(text, make_token(/*force_active=*/false));
}

QueryService::Result QueryService::sql(const std::string& text,
                                       const CancelToken& cancel) {
    sql::Statement stmt = sql::parse(text);
    if (stmt.kind != sql::Statement::Kind::kSelect) {
        execute_write(text, cancel);
        return std::make_shared<const sql::ResultSet>();
    }
    sql_queries_.fetch_add(1, std::memory_order_relaxed);
    cancel.check();  // don't take the latch for an already-dead query
    sql::PlannerOptions popts;
    popts.enable = use_planner_.load(std::memory_order_relaxed);
    rdb::ReadSnapshot snapshot = db_.read_snapshot();
    // The parsed statement is private to this call, so executing it
    // directly (instead of re-parsing inside sql::execute) is safe.  The
    // snapshot's view pins a published DatabaseVersion: the whole
    // plan+execute runs latch-free against that epoch, concurrent writers
    // never block it and it never observes their partial state.
    // Planner-off results get their own cache namespace; the default
    // (planner-on) keys stay unprefixed so existing entries survive.
    return run_select(
        (popts.enable ? "sql:" : "np:sql:") + text,
        [&] {
            return sql::execute_select(snapshot.view(), stmt.select,
                                       &exec_stats_, cancel, &popts);
        },
        snapshot);
}

QueryService::Result QueryService::path(const std::string& text) {
    return path(text, make_token(/*force_active=*/false));
}

QueryService::Result QueryService::path(const std::string& text,
                                        const CancelToken& cancel) {
    xquery::Translation t = translate_with(text, cancel);
    path_queries_.fetch_add(1, std::memory_order_relaxed);
    cancel.check();
    sql::PlannerOptions popts;
    popts.enable = use_planner_.load(std::memory_order_relaxed);
    rdb::ReadSnapshot snapshot = db_.read_snapshot();
    // Keyed by the *normalized* query (embedded in the translated SQL via
    // the plan cache): textual variants of one query share an entry.
    return run_select(
        (popts.enable ? "path:" : "np:path:") + t.sql,
        [&] {
            return sql::execute_read(snapshot.view(), t.sql, &exec_stats_,
                                     cancel, &popts);
        },
        snapshot);
}

xquery::Translation QueryService::translate(const std::string& text) {
    return translate_with(text, make_token(/*force_active=*/false));
}

xquery::Translation QueryService::translate_with(const std::string& text,
                                                 const CancelToken& cancel) {
    if (translator_ == nullptr)
        throw QueryError(
            "this query service was built without a mapping; "
            "path queries are not available");
    xquery::PathQuery q = xquery::parse_query(text);
    xquery::TranslateOptions topts;
    topts.use_struct_index = use_struct_index_.load(std::memory_order_relaxed);
    topts.cancel = cancel;
    if (plan_cache_ != nullptr)
        return plan_cache_->get(q, topts, db_.stats_epoch());
    return translator_->translate(q, topts);
}

QueryService::Submission QueryService::submit_sql(std::string text) {
    CancelToken token = make_token(/*force_active=*/true);
    std::future<Result> future = enqueue(
        [this, text = std::move(text), token] { return sql(text, token); },
        token);
    return Submission(std::move(future), std::move(token));
}

QueryService::Submission QueryService::submit_path(std::string text) {
    CancelToken token = make_token(/*force_active=*/true);
    std::future<Result> future = enqueue(
        [this, text = std::move(text), token] { return path(text, token); },
        token);
    return Submission(std::move(future), std::move(token));
}

void QueryService::execute_write(const std::string& text) {
    execute_write(text, make_token(/*force_active=*/false));
}

void QueryService::execute_write(const std::string& text,
                                 const CancelToken& cancel) {
    std::lock_guard<std::mutex> lock(write_mu_);
    writes_.fetch_add(1, std::memory_order_relaxed);
    std::chrono::milliseconds backoff = options_.write_retry_backoff;
    if (backoff.count() <= 0) backoff = std::chrono::milliseconds(1);
    for (std::size_t attempt = 0;; ++attempt) {
        cancel.check();
        try {
            // The injected stand-in for a transient write failure (an I/O
            // hiccup, a torn latch): armed via the `write.retry` point.
            fault::maybe_fail("write.retry");
            db_.begin_unit();
            try {
                sql::execute(db_, text, &exec_stats_, cancel);
            } catch (...) {
                if (db_.in_unit()) db_.rollback_unit();
                throw;
            }
            db_.commit_unit();  // watermark bump → cached results go stale
            return;
        } catch (const fault::InjectedFault&) {
            if (attempt >= options_.write_retry_limit) throw;
            write_retries_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(backoff);
            backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
        }
        // Any other exception (parse error, constraint violation, an
        // exceeded deadline) is not transient: it propagates immediately.
    }
}

QueryService::Result QueryService::run_select(
    const std::string& cache_key,
    const std::function<sql::ResultSet()>& exec,
    const rdb::ReadSnapshot& snapshot) {
    bool caching = options_.result_cache_bytes > 0;
    if (caching) {
        if (Result hit = lookup_cache(cache_key, snapshot.watermark()))
            return hit;
    }
    Result result = std::make_shared<const sql::ResultSet>(exec());
    if (caching) insert_cache(cache_key, snapshot.watermark(), result);
    return result;
}

QueryService::Result QueryService::lookup_cache(const std::string& key,
                                                std::uint64_t watermark) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_index_.find(key);
    if (it == cache_index_.end()) {
        ++cache_stats_.misses;
        return nullptr;
    }
    if (it->second->watermark != watermark) {
        // Computed against an older committed state: invalidate lazily.
        ++cache_stats_.invalidated;
        ++cache_stats_.misses;
        cache_bytes_ -= it->second->bytes;
        lru_.erase(it->second);
        cache_index_.erase(it);
        return nullptr;
    }
    ++cache_stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->result;
}

void QueryService::insert_cache(const std::string& key,
                                std::uint64_t watermark,
                                const Result& result) {
    std::size_t bytes = estimate_bytes(*result);
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (bytes > options_.result_cache_bytes) {
        // Admitting it would evict the whole cache for one entry that
        // likely never amortizes; count it so operators can see a budget
        // that is too small for the workload.
        ++cache_stats_.oversized;
        return;
    }
    auto it = cache_index_.find(key);
    if (it != cache_index_.end()) {
        // Raced with another miss on the same key; keep the newer entry.
        cache_bytes_ -= it->second->bytes;
        lru_.erase(it->second);
        cache_index_.erase(it);
    }
    lru_.push_front(CacheEntry{key, watermark, bytes, result});
    cache_index_.emplace(key, lru_.begin());
    cache_bytes_ += bytes;
    while (cache_bytes_ > options_.result_cache_bytes && lru_.size() > 1) {
        cache_bytes_ -= lru_.back().bytes;
        cache_index_.erase(lru_.back().key);
        lru_.pop_back();
        ++cache_stats_.evicted;
    }
}

std::uint64_t QueryService::retry_after_ms(std::size_t depth) const {
    // Rough service-time model: the backlog ahead of a resubmission is
    // `depth` jobs spread over the worker pool, each costing the recent
    // average.  Coarse, but it gives clients a better hint than a
    // constant — and it degrades to 1ms on a cold service.
    std::uint64_t avg = avg_job_us_.load(std::memory_order_relaxed);
    std::size_t workers = options_.threads == 0 ? 1 : options_.threads;
    std::uint64_t us = avg * (depth + 1) / workers;
    return us / 1000 + 1;
}

std::future<QueryService::Result> QueryService::enqueue(
    std::function<Result()> job, const CancelToken& token) {
    // The wrapper runs on a worker: it re-checks the token first (the
    // client may have abandoned, or the deadline may have passed in the
    // queue) and classifies the terminal outcome for OverloadStats.
    auto wrapped = [this, job = std::move(job), token]() -> Result {
        try {
            token.check();
            return job();
        } catch (const DeadlineExceeded&) {
            expired_.fetch_add(1, std::memory_order_relaxed);
            throw;
        } catch (const QueryCancelled&) {
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            throw;
        }
    };
    std::packaged_task<Result()> task(std::move(wrapped));
    std::future<Result> future = task.get_future();
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (stopping_)
            throw ShuttingDown(
                "query service is shutting down; submission refused");
        try {
            fault::maybe_fail("service.admit");
        } catch (const fault::InjectedFault&) {
            // Injected admission failure: shed exactly like a full queue
            // so clients exercise their Overloaded handling.
            shed_.fetch_add(1, std::memory_order_relaxed);
            throw Overloaded(queue_.size(), retry_after_ms(queue_.size()));
        }
        if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
            shed_.fetch_add(1, std::memory_order_relaxed);
            throw Overloaded(queue_.size(), retry_after_ms(queue_.size()));
        }
        admitted_.fetch_add(1, std::memory_order_relaxed);
        queue_.push_back(
            Job{std::move(task), token, std::chrono::steady_clock::now()});
        queue_high_water_ = std::max(queue_high_water_, queue_.size());
    }
    queue_cv_.notify_one();
    return future;
}

void QueryService::worker_loop() {
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(queue_mu_);
            queue_cv_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping, queue drained
            job = std::move(queue_.front());
            queue_.pop_front();
            wait_ring_[wait_ring_pos_ % kQueueWaitRing] =
                elapsed_us(job.enqueued);
            ++wait_ring_pos_;
        }
        auto start = std::chrono::steady_clock::now();
        job.task();  // exceptions land in the future
        // EWMA (alpha 1/8) of execution time; racy updates between
        // workers only blur an estimate that is already approximate.
        std::uint64_t run_us = elapsed_us(start);
        std::uint64_t prev = avg_job_us_.load(std::memory_order_relaxed);
        std::uint64_t next = prev == 0 ? run_us : prev - prev / 8 + run_us / 8;
        avg_job_us_.store(next, std::memory_order_relaxed);
    }
}

ServiceStats QueryService::stats() const {
    ServiceStats s;
    s.sql_queries = sql_queries_.load(std::memory_order_relaxed);
    s.path_queries = path_queries_.load(std::memory_order_relaxed);
    s.writes = writes_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(cache_mu_);
        s.result_cache = cache_stats_;
    }
    if (plan_cache_ != nullptr) s.plan_cache = plan_cache_->stats();
    s.overload.admitted = admitted_.load(std::memory_order_relaxed);
    s.overload.shed = shed_.load(std::memory_order_relaxed);
    s.overload.expired = expired_.load(std::memory_order_relaxed);
    s.overload.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.overload.write_retries = write_retries_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        s.overload.queue_high_water = queue_high_water_;
        std::size_t n = std::min(wait_ring_pos_, kQueueWaitRing);
        if (n > 0) {
            std::vector<std::uint64_t> waits(wait_ring_.begin(),
                                             wait_ring_.begin() +
                                                 static_cast<long>(n));
            std::sort(waits.begin(), waits.end());
            s.overload.p50_queue_wait_us = waits[n / 2];
            s.overload.p99_queue_wait_us = waits[(n * 99) / 100];
        }
    }
    s.exec = exec_stats_;
    return s;
}

void QueryService::clear_result_cache() {
    std::lock_guard<std::mutex> lock(cache_mu_);
    lru_.clear();
    cache_index_.clear();
    cache_bytes_ = 0;
}

}  // namespace xr::query
