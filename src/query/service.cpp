#include "query/service.hpp"

#include <utility>

#include "common/error.hpp"
#include "sql/parser.hpp"
#include "xquery/query.hpp"

namespace xr::query {

namespace {

/// Approximate heap footprint of a result set, for the cache byte budget.
std::size_t estimate_bytes(const sql::ResultSet& rs) {
    std::size_t bytes = sizeof(sql::ResultSet);
    for (const auto& c : rs.columns) bytes += sizeof(std::string) + c.size();
    for (const auto& row : rs.rows) {
        bytes += sizeof(rdb::Row) + row.size() * sizeof(rdb::Value);
        for (const auto& v : row)
            if (v.type() == rdb::ValueType::kText) bytes += v.as_text().size();
    }
    return bytes;
}

}  // namespace

QueryService::QueryService(rdb::Database& db, ServiceOptions options)
    : db_(db), options_(options) {
    use_struct_index_.store(options_.use_struct_index,
                            std::memory_order_relaxed);
    for (std::size_t i = 0; i < options_.threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

QueryService::QueryService(rdb::Database& db,
                           const mapping::MappingResult& mapping,
                           const rel::RelationalSchema& schema,
                           ServiceOptions options)
    : QueryService(db, options) {
    translator_ = std::make_unique<xquery::SqlTranslator>(mapping, schema);
    plan_cache_ = std::make_unique<xquery::TranslationCache>(
        *translator_, options_.plan_cache_entries);
}

QueryService::~QueryService() {
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

QueryService::Result QueryService::sql(const std::string& text) {
    sql::Statement stmt = sql::parse(text);
    if (stmt.kind != sql::Statement::Kind::kSelect) {
        execute_write(text);
        return std::make_shared<const sql::ResultSet>();
    }
    sql_queries_.fetch_add(1, std::memory_order_relaxed);
    rdb::ReadSnapshot snapshot = db_.read_snapshot();
    // The parsed statement is private to this call, so executing it
    // directly (instead of re-parsing inside sql::execute) is safe.
    return run_select(
        "sql:" + text,
        [&] { return sql::execute_select(db_, stmt.select, &exec_stats_); },
        snapshot);
}

QueryService::Result QueryService::path(const std::string& text) {
    xquery::Translation t = translate(text);
    path_queries_.fetch_add(1, std::memory_order_relaxed);
    rdb::ReadSnapshot snapshot = db_.read_snapshot();
    // Keyed by the *normalized* query (embedded in the translated SQL via
    // the plan cache): textual variants of one query share an entry.
    return run_select(
        "path:" + t.sql,
        [&] { return sql::execute(db_, t.sql, &exec_stats_); }, snapshot);
}

xquery::Translation QueryService::translate(const std::string& text) {
    if (translator_ == nullptr)
        throw QueryError(
            "this query service was built without a mapping; "
            "path queries are not available");
    xquery::PathQuery q = xquery::parse_query(text);
    xquery::TranslateOptions topts;
    topts.use_struct_index = use_struct_index_.load(std::memory_order_relaxed);
    if (plan_cache_ != nullptr) return plan_cache_->get(q, topts);
    return translator_->translate(q, topts);
}

std::future<QueryService::Result> QueryService::submit_sql(std::string text) {
    return enqueue([this, text = std::move(text)] { return sql(text); });
}

std::future<QueryService::Result> QueryService::submit_path(std::string text) {
    return enqueue([this, text = std::move(text)] { return path(text); });
}

void QueryService::execute_write(const std::string& text) {
    std::lock_guard<std::mutex> lock(write_mu_);
    writes_.fetch_add(1, std::memory_order_relaxed);
    db_.begin_unit();
    try {
        sql::execute(db_, text, &exec_stats_);
    } catch (...) {
        db_.rollback_unit();
        throw;
    }
    db_.commit_unit();  // watermark bump → cached results become stale
}

QueryService::Result QueryService::run_select(
    const std::string& cache_key,
    const std::function<sql::ResultSet()>& exec,
    const rdb::ReadSnapshot& snapshot) {
    bool caching = options_.result_cache_bytes > 0;
    if (caching) {
        if (Result hit = lookup_cache(cache_key, snapshot.watermark()))
            return hit;
    }
    Result result = std::make_shared<const sql::ResultSet>(exec());
    if (caching) insert_cache(cache_key, snapshot.watermark(), result);
    return result;
}

QueryService::Result QueryService::lookup_cache(const std::string& key,
                                                std::uint64_t watermark) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_index_.find(key);
    if (it == cache_index_.end()) {
        ++cache_stats_.misses;
        return nullptr;
    }
    if (it->second->watermark != watermark) {
        // Computed against an older committed state: invalidate lazily.
        ++cache_stats_.invalidated;
        ++cache_stats_.misses;
        cache_bytes_ -= it->second->bytes;
        lru_.erase(it->second);
        cache_index_.erase(it);
        return nullptr;
    }
    ++cache_stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->result;
}

void QueryService::insert_cache(const std::string& key,
                                std::uint64_t watermark,
                                const Result& result) {
    std::size_t bytes = estimate_bytes(*result);
    if (bytes > options_.result_cache_bytes) return;  // would evict everything
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_index_.find(key);
    if (it != cache_index_.end()) {
        // Raced with another miss on the same key; keep the newer entry.
        cache_bytes_ -= it->second->bytes;
        lru_.erase(it->second);
        cache_index_.erase(it);
    }
    lru_.push_front(CacheEntry{key, watermark, bytes, result});
    cache_index_.emplace(key, lru_.begin());
    cache_bytes_ += bytes;
    while (cache_bytes_ > options_.result_cache_bytes && lru_.size() > 1) {
        cache_bytes_ -= lru_.back().bytes;
        cache_index_.erase(lru_.back().key);
        lru_.pop_back();
        ++cache_stats_.evicted;
    }
}

std::future<QueryService::Result> QueryService::enqueue(
    std::function<Result()> job) {
    std::packaged_task<Result()> task(std::move(job));
    std::future<Result> future = task.get_future();
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (stopping_)
            throw Error("query service is shutting down; submission refused");
        queue_.push_back(std::move(task));
    }
    queue_cv_.notify_one();
    return future;
}

void QueryService::worker_loop() {
    for (;;) {
        std::packaged_task<Result()> task;
        {
            std::unique_lock<std::mutex> lock(queue_mu_);
            queue_cv_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping, queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();  // exceptions land in the future
    }
}

ServiceStats QueryService::stats() const {
    ServiceStats s;
    s.sql_queries = sql_queries_.load(std::memory_order_relaxed);
    s.path_queries = path_queries_.load(std::memory_order_relaxed);
    s.writes = writes_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(cache_mu_);
        s.result_cache = cache_stats_;
    }
    if (plan_cache_ != nullptr) s.plan_cache = plan_cache_->stats();
    s.exec = exec_stats_;
    return s;
}

void QueryService::clear_result_cache() {
    std::lock_guard<std::mutex> lock(cache_mu_);
    lru_.clear();
    cache_index_.clear();
    cache_bytes_ = 0;
}

}  // namespace xr::query
