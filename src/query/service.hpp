// Concurrent query serving over a loaded database (DESIGN.md §9).
//
// QueryService is the session layer the paper's "query processing"
// section implies once documents are relational: clients hand it SQL or
// path-query text; a pool of worker threads executes them against the
// shared MiniRDB instance.  Three mechanisms make that safe and fast:
//
//   * every SELECT runs under a rdb::ReadSnapshot — a shared latch plus
//     the commit watermark observed at acquisition, so a query sees one
//     committed state even while loads or checkpoints run;
//   * translated plans are cached (xquery::TranslationCache) keyed by
//     normalized path-query text — translation is pure, so plan entries
//     never go stale;
//   * result sets are cached under a byte budget, each entry tagged with
//     the commit watermark it was computed at.  A lookup whose entry
//     carries an older watermark is an *invalidation*: the entry is
//     dropped and the query re-executes.  The watermark bumps on every
//     outermost commit and DDL, so a commit implicitly flushes every
//     stale result without the writers knowing the cache exists.
//
// Writes (INSERT / CREATE ...) funnel through execute_write(), which
// serializes them on an internal mutex and brackets each in a load unit —
// honouring the single-writer contract of rdb's unit machinery and giving
// readers atomic visibility of each statement.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mapping/pipeline.hpp"
#include "rdb/database.hpp"
#include "rel/schema.hpp"
#include "sql/executor.hpp"
#include "xquery/plan_cache.hpp"
#include "xquery/sql_translate.hpp"

namespace xr::query {

struct ServiceOptions {
    /// Worker threads for submit_*() futures (sync calls run inline on
    /// the caller's thread and need no workers).
    std::size_t threads = 4;
    /// Result-cache byte budget; 0 disables result caching.
    std::size_t result_cache_bytes = 16u << 20;
    /// Plan-cache entry capacity; 0 disables plan caching.
    std::size_t plan_cache_entries = 256;
    /// Initial state of the session's structural-index toggle (SET-style,
    /// see set_struct_index()): translate '//' and [ancestor::] through
    /// the (pre, post) interval labels, or use the legacy expansions.
    bool use_struct_index = true;
};

/// Result-cache counters (plan-cache counters live in PlanCacheStats).
struct ResultCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidated = 0;  ///< dropped on watermark mismatch
    std::uint64_t evicted = 0;      ///< dropped by the byte budget

    [[nodiscard]] double hit_ratio() const {
        std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
};

struct ServiceStats {
    std::uint64_t sql_queries = 0;   ///< SELECTs served (cached or not)
    std::uint64_t path_queries = 0;  ///< path queries served
    std::uint64_t writes = 0;        ///< statements through execute_write
    ResultCacheStats result_cache;
    xquery::PlanCacheStats plan_cache;
    sql::ExecStats exec;  ///< aggregate over all served queries
};

class QueryService {
public:
    /// Results are shared immutable snapshots: the cache and any number
    /// of clients may hold the same ResultSet concurrently.
    using Result = std::shared_ptr<const sql::ResultSet>;

    /// SQL-only service (no path queries; path()/translate() throw).
    explicit QueryService(rdb::Database& db, ServiceOptions options = {});

    /// Full service: path queries translate through `mapping`/`schema`,
    /// which must outlive the service and stay frozen while it runs.
    QueryService(rdb::Database& db, const mapping::MappingResult& mapping,
                 const rel::RelationalSchema& schema,
                 ServiceOptions options = {});

    ~QueryService();
    QueryService(const QueryService&) = delete;
    QueryService& operator=(const QueryService&) = delete;

    /// Execute a SELECT synchronously on the caller's thread.  Throws
    /// xr::Error subclasses on parse/execution failure.  Non-SELECT
    /// statements are routed to execute_write() (and never cached).
    Result sql(const std::string& text);

    /// Execute a path query (translated to SQL) synchronously.
    Result path(const std::string& text);

    /// Translate a path query without executing it (CLI/EXPLAIN use);
    /// hits the plan cache like path() does.
    [[nodiscard]] xquery::Translation translate(const std::string& text);

    /// SET-style session toggle for the structural interval index.  Plans
    /// from both modes coexist in the plan cache under distinct keys, and
    /// result-cache keys embed the translated SQL, so flipping the toggle
    /// never serves a result computed under the other plan.
    void set_struct_index(bool on) {
        use_struct_index_.store(on, std::memory_order_relaxed);
    }
    [[nodiscard]] bool struct_index() const {
        return use_struct_index_.load(std::memory_order_relaxed);
    }

    /// Enqueue for a worker thread; the future carries the result or the
    /// exception the sync call would have thrown.
    std::future<Result> submit_sql(std::string text);
    std::future<Result> submit_path(std::string text);

    /// Execute a mutating statement: serialized against other writes,
    /// wrapped in its own load unit (commit bumps the watermark, which
    /// invalidates affected cached results on their next lookup).
    void execute_write(const std::string& text);

    [[nodiscard]] ServiceStats stats() const;
    /// Drop every cached result (plan cache is left alone — plans cannot
    /// go stale).  Mostly for tests and benches.
    void clear_result_cache();

private:
    struct CacheEntry {
        std::string key;
        std::uint64_t watermark = 0;
        std::size_t bytes = 0;
        Result result;
    };

    Result run_select(const std::string& cache_key,
                      const std::function<sql::ResultSet()>& exec,
                      const rdb::ReadSnapshot& snapshot);
    Result lookup_cache(const std::string& key, std::uint64_t watermark);
    void insert_cache(const std::string& key, std::uint64_t watermark,
                      const Result& result);
    std::future<Result> enqueue(std::function<Result()> job);
    void worker_loop();

    rdb::Database& db_;
    ServiceOptions options_;
    std::unique_ptr<xquery::SqlTranslator> translator_;
    std::unique_ptr<xquery::TranslationCache> plan_cache_;

    // Result cache (front of lru_ = most recently used).
    mutable std::mutex cache_mu_;
    std::list<CacheEntry> lru_;
    std::map<std::string, std::list<CacheEntry>::iterator> cache_index_;
    std::size_t cache_bytes_ = 0;
    ResultCacheStats cache_stats_;

    // Counters outside the cache lock.
    std::atomic<std::uint64_t> sql_queries_{0};
    std::atomic<std::uint64_t> path_queries_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<bool> use_struct_index_{true};
    sql::ExecStats exec_stats_;

    std::mutex write_mu_;  ///< serializes execute_write() callers

    // Worker pool.
    std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    std::deque<std::packaged_task<Result()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace xr::query
