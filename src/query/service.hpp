// Concurrent query serving over a loaded database (DESIGN.md §9, §11).
//
// QueryService is the session layer the paper's "query processing"
// section implies once documents are relational: clients hand it SQL or
// path-query text; a pool of worker threads executes them against the
// shared MiniRDB instance.  Three mechanisms make that safe and fast:
//
//   * every SELECT runs under a rdb::ReadSnapshot — a shared latch plus
//     the commit watermark observed at acquisition, so a query sees one
//     committed state even while loads or checkpoints run;
//   * translated plans are cached (xquery::TranslationCache) keyed by
//     normalized path-query text — translation is pure, so plan entries
//     never go stale;
//   * result sets are cached under a byte budget, each entry tagged with
//     the commit watermark it was computed at.  A lookup whose entry
//     carries an older watermark is an *invalidation*: the entry is
//     dropped and the query re-executes.  The watermark bumps on every
//     outermost commit and DDL, so a commit implicitly flushes every
//     stale result without the writers knowing the cache exists.
//
// On top of that sits the overload discipline (DESIGN.md §11): admission
// control sheds submissions past a bounded queue with a typed Overloaded
// carrying the observed depth and a retry-after hint; every admitted
// query gets a CancelToken wound with the service deadline and budgets,
// which the executor polls cooperatively; submissions return a Submission
// handle whose destruction cancels an abandoned in-flight query; and
// writes that hit a transient (injected) failure retry under bounded
// exponential backoff before surfacing the error.
//
// Writes (INSERT / CREATE ...) funnel through execute_write(), which
// serializes them on an internal mutex and brackets each in a load unit —
// honouring the single-writer contract of rdb's unit machinery and giving
// readers atomic visibility of each statement.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "mapping/pipeline.hpp"
#include "rdb/database.hpp"
#include "rel/schema.hpp"
#include "sql/executor.hpp"
#include "xquery/plan_cache.hpp"
#include "xquery/sql_translate.hpp"

namespace xr::query {

struct ServiceOptions {
    /// Worker threads for submit_*() handles (sync calls run inline on
    /// the caller's thread and need no workers).
    std::size_t threads = 4;
    /// Result-cache byte budget; 0 disables result caching.
    std::size_t result_cache_bytes = 16u << 20;
    /// Plan-cache entry capacity; 0 disables plan caching.
    std::size_t plan_cache_entries = 256;
    /// Initial state of the session's structural-index toggle (SET-style,
    /// see set_struct_index()): translate '//' and [ancestor::] through
    /// the (pre, post) interval labels, or use the legacy expansions.
    bool use_struct_index = true;
    /// Initial state of the cost-based planner toggle (DESIGN.md §13,
    /// see set_planner()): re-cost and possibly reorder translated joins
    /// using table statistics, or execute statements exactly as written.
    bool use_planner = true;

    // ---- Overload discipline (DESIGN.md §11) ----

    /// Admission bound: submissions past this queue depth are shed with
    /// xr::Overloaded instead of queued.  0 means unbounded (no shedding).
    std::size_t max_queue = 0;
    /// Deadline stamped on every query at *admission* (queue wait counts
    /// against it — an overloaded service expires stale work instead of
    /// executing it).  Zero means no deadline.
    std::chrono::milliseconds default_deadline{0};
    /// Per-query materialization budgets (rows / approximate bytes);
    /// exceeding one raises xr::ResourceExhausted.  0 means unlimited.
    std::size_t row_budget = 0;
    std::size_t byte_budget = 0;
    /// Retries (beyond the first attempt) for a write that fails with a
    /// transient fault, each preceded by an exponentially growing backoff
    /// starting at write_retry_backoff (capped at 100ms).
    std::size_t write_retry_limit = 3;
    std::chrono::milliseconds write_retry_backoff{1};
};

/// Result-cache counters (plan-cache counters live in PlanCacheStats).
struct ResultCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidated = 0;  ///< dropped on watermark mismatch
    std::uint64_t evicted = 0;      ///< dropped by the byte budget
    std::uint64_t oversized = 0;    ///< never admitted: entry alone > budget

    [[nodiscard]] double hit_ratio() const {
        std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
};

/// Overload / lifecycle counters (DESIGN.md §11).  `shed` counts
/// admission rejections (queue full or the `service.admit` fault point);
/// `expired` and `cancelled` count queries that *terminated* with
/// DeadlineExceeded / QueryCancelled after admission.
struct OverloadStats {
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t write_retries = 0;     ///< individual retry attempts
    std::size_t queue_high_water = 0;    ///< max observed queue depth
    std::uint64_t p50_queue_wait_us = 0; ///< over a recent-window ring
    std::uint64_t p99_queue_wait_us = 0;
};

struct ServiceStats {
    std::uint64_t sql_queries = 0;   ///< SELECTs served (cached or not)
    std::uint64_t path_queries = 0;  ///< path queries served
    std::uint64_t writes = 0;        ///< statements through execute_write
    ResultCacheStats result_cache;
    xquery::PlanCacheStats plan_cache;
    OverloadStats overload;
    sql::ExecStats exec;  ///< aggregate over all served queries
};

class QueryService {
public:
    /// Results are shared immutable snapshots: the cache and any number
    /// of clients may hold the same ResultSet concurrently.
    using Result = std::shared_ptr<const sql::ResultSet>;

    /// Handle on an asynchronously submitted query: the future plus the
    /// query's CancelToken.  Destroying (or overwriting) the handle
    /// before collecting the result counts as *abandoning* the query —
    /// the token is cancelled so a queued or in-flight execution unwinds
    /// at its next poll instead of computing a result nobody will read.
    class Submission {
    public:
        Submission() = default;
        Submission(std::future<Result> future, CancelToken token)
            : future_(std::move(future)), token_(std::move(token)) {}
        Submission(Submission&&) noexcept = default;
        Submission& operator=(Submission&& other) noexcept {
            if (this != &other) {
                abandon();
                future_ = std::move(other.future_);
                token_ = std::move(other.token_);
            }
            return *this;
        }
        ~Submission() { abandon(); }

        /// True until get() consumes the result.
        [[nodiscard]] bool valid() const { return future_.valid(); }
        /// Wait and return the result, or rethrow what execution threw.
        Result get() { return future_.get(); }
        /// Explicitly cancel the query; a later get() surfaces
        /// QueryCancelled (unless the result was already computed).
        void cancel() const noexcept { token_.request_cancel(); }
        [[nodiscard]] const CancelToken& token() const { return token_; }
        [[nodiscard]] std::future<Result>& future() { return future_; }

    private:
        void abandon() noexcept {
            if (future_.valid()) token_.request_cancel();
        }

        std::future<Result> future_;
        CancelToken token_;
    };

    /// SQL-only service (no path queries; path()/translate() throw).
    explicit QueryService(rdb::Database& db, ServiceOptions options = {});

    /// Full service: path queries translate through `mapping`/`schema`,
    /// which must outlive the service and stay frozen while it runs.
    QueryService(rdb::Database& db, const mapping::MappingResult& mapping,
                 const rel::RelationalSchema& schema,
                 ServiceOptions options = {});

    ~QueryService();
    QueryService(const QueryService&) = delete;
    QueryService& operator=(const QueryService&) = delete;

    /// Execute a SELECT synchronously on the caller's thread.  Throws
    /// xr::Error subclasses on parse/execution failure.  Non-SELECT
    /// statements are routed to execute_write() (and never cached).
    /// The no-token overload derives a token from the service options
    /// (deadline / budgets); pass an explicit token to override.
    Result sql(const std::string& text);
    Result sql(const std::string& text, const CancelToken& cancel);

    /// Execute a path query (translated to SQL) synchronously.
    Result path(const std::string& text);
    Result path(const std::string& text, const CancelToken& cancel);

    /// Translate a path query without executing it (CLI/EXPLAIN use);
    /// hits the plan cache like path() does.
    [[nodiscard]] xquery::Translation translate(const std::string& text);

    /// SET-style session toggle for the structural interval index.  Plans
    /// from both modes coexist in the plan cache under distinct keys, and
    /// result-cache keys embed the translated SQL, so flipping the toggle
    /// never serves a result computed under the other plan.
    void set_struct_index(bool on) {
        use_struct_index_.store(on, std::memory_order_relaxed);
    }
    [[nodiscard]] bool struct_index() const {
        return use_struct_index_.load(std::memory_order_relaxed);
    }

    /// SET-style session toggle for the cost-based planner.  Result-cache
    /// keys carry an "np:" prefix while the planner is off, so a result
    /// computed under one mode is never served under the other (the rows
    /// are equal either way — the fuzzer checks that — but stats must
    /// attribute them to the right plan).
    void set_planner(bool on) {
        use_planner_.store(on, std::memory_order_relaxed);
    }
    [[nodiscard]] bool planner() const {
        return use_planner_.load(std::memory_order_relaxed);
    }

    /// Enqueue for a worker thread.  Admission control applies here:
    /// throws xr::ShuttingDown after shutdown() began, xr::Overloaded
    /// when the queue is at max_queue (the exception carries the depth
    /// and a retry-after hint from the recent average job time).  The
    /// returned Submission's future carries the result or the exception
    /// the sync call would have thrown.
    Submission submit_sql(std::string text);
    Submission submit_path(std::string text);

    /// Execute a mutating statement: serialized against other writes,
    /// wrapped in its own load unit (commit bumps the watermark, which
    /// invalidates affected cached results on their next lookup).  A
    /// transiently failing write (fault::InjectedFault — the injected
    /// stand-in for I/O hiccups) is rolled back and retried up to
    /// write_retry_limit times under exponential backoff; persistent
    /// failure rethrows the last error.
    void execute_write(const std::string& text);
    void execute_write(const std::string& text, const CancelToken& cancel);

    /// Stop admitting work, drain the queue, and join the workers.
    /// Idempotent and safe to race with submitters: concurrent
    /// submissions either enqueue before the stop (and are drained) or
    /// observe xr::ShuttingDown.  The destructor calls this.
    void shutdown();

    [[nodiscard]] ServiceStats stats() const;
    /// Drop every cached result (plan cache is left alone — plans cannot
    /// go stale).  Mostly for tests and benches.
    void clear_result_cache();

private:
    struct CacheEntry {
        std::string key;
        std::uint64_t watermark = 0;
        std::size_t bytes = 0;
        Result result;
    };

    /// A queued unit of work: the task, the query's token (for deadline
    /// accounting across the queue wait) and its admission time.
    struct Job {
        std::packaged_task<Result()> task;
        CancelToken token;
        std::chrono::steady_clock::time_point enqueued;
    };

    /// Queue-wait samples kept for the p50/p99 estimate — a fixed ring
    /// so stats stay O(1) in served volume.
    static constexpr std::size_t kQueueWaitRing = 512;

    /// Build a token from the service options; inert when no deadline or
    /// budget is configured unless `force_active` (submissions always
    /// need a live token so abandon-cancel works).
    [[nodiscard]] CancelToken make_token(bool force_active) const;

    Result run_select(const std::string& cache_key,
                      const std::function<sql::ResultSet()>& exec,
                      const rdb::ReadSnapshot& snapshot);
    Result lookup_cache(const std::string& key, std::uint64_t watermark);
    void insert_cache(const std::string& key, std::uint64_t watermark,
                      const Result& result);
    [[nodiscard]] xquery::Translation translate_with(
        const std::string& text, const CancelToken& cancel);
    std::future<Result> enqueue(std::function<Result()> job,
                                const CancelToken& token);
    [[nodiscard]] std::uint64_t retry_after_ms(std::size_t depth) const;
    void worker_loop();

    rdb::Database& db_;
    ServiceOptions options_;
    std::unique_ptr<xquery::SqlTranslator> translator_;
    std::unique_ptr<xquery::TranslationCache> plan_cache_;

    // Result cache (front of lru_ = most recently used).
    mutable std::mutex cache_mu_;
    std::list<CacheEntry> lru_;
    std::map<std::string, std::list<CacheEntry>::iterator> cache_index_;
    std::size_t cache_bytes_ = 0;
    ResultCacheStats cache_stats_;

    // Counters outside the cache lock.
    std::atomic<std::uint64_t> sql_queries_{0};
    std::atomic<std::uint64_t> path_queries_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<bool> use_struct_index_{true};
    std::atomic<bool> use_planner_{true};
    sql::ExecStats exec_stats_;

    // Overload counters (lifecycle classification happens in the job
    // wrapper; shedding in enqueue).
    std::atomic<std::uint64_t> admitted_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> expired_{0};
    std::atomic<std::uint64_t> cancelled_{0};
    std::atomic<std::uint64_t> write_retries_{0};
    /// EWMA of job execution time in µs — feeds the retry-after hint.
    std::atomic<std::uint64_t> avg_job_us_{0};

    std::mutex write_mu_;  ///< serializes execute_write() callers

    // Worker pool.  queue_mu_ also guards the wait ring and high-water
    // mark (both touched only at enqueue/dequeue, which hold it anyway);
    // mutable so stats() can read them.
    mutable std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    std::deque<Job> queue_;
    bool stopping_ = false;
    std::size_t queue_high_water_ = 0;
    std::array<std::uint64_t, kQueueWaitRing> wait_ring_{};
    std::size_t wait_ring_pos_ = 0;
    /// Serializes shutdown() (and the dtor) against each other; workers_
    /// is only mutated under it after construction.
    std::mutex shutdown_mu_;
    std::vector<std::thread> workers_;
};

}  // namespace xr::query
