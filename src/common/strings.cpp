#include "common/strings.hpp"

#include <algorithm>
#include <cctype>

namespace xr {

bool is_xml_space(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

std::string_view trim(std::string_view s) {
    std::size_t b = 0;
    while (b < s.size() && is_xml_space(s[b])) ++b;
    std::size_t e = s.size();
    while (e > b && is_xml_space(s[e - 1])) --e;
    return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

std::string to_upper(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    return out;
}

bool iequals(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string normalize_space(std::string_view s) {
    std::string out;
    bool pending_space = false;
    for (char c : trim(s)) {
        if (is_xml_space(c)) {
            pending_space = true;
        } else {
            if (pending_space && !out.empty()) out += ' ';
            pending_space = false;
            out += c;
        }
    }
    return out;
}

std::string xml_escape_text(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string xml_escape_attribute(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string sql_quote(std::string_view s) {
    std::string out = "'";
    for (char c : s) {
        if (c == '\'') out += "''";
        else out += c;
    }
    out += '\'';
    return out;
}

namespace {
bool is_name_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
           c == '_' || c == ':';
}
}  // namespace

bool is_xml_name(std::string_view name) {
    if (name.empty() || !is_name_start(name[0])) return false;
    return std::all_of(name.begin() + 1, name.end(), is_name_char);
}

std::vector<std::string> split_name_tokens(std::string_view s) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && is_xml_space(s[i])) ++i;
        std::size_t start = i;
        while (i < s.size() && !is_xml_space(s[i])) ++i;
        if (i > start) out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

}  // namespace xr
