#include "common/table_printer.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace xr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

namespace {
bool looks_numeric(const std::string& s) {
    if (s.empty()) return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
            c != '+' && c != 'e' && c != 'E' && c != 'x' && c != '%')
            return false;
    }
    return true;
}
}  // namespace

std::string TablePrinter::to_string() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : headers_[c];
            std::size_t pad = widths[c] - cell.size();
            out += "| ";
            if (looks_numeric(cell)) {
                out.append(pad, ' ');
                out += cell;
            } else {
                out += cell;
                out.append(pad, ' ');
            }
            out += ' ';
        }
        out += "|\n";
    };

    std::string out;
    emit_row(headers_, out);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        out += "|";
        out.append(widths[c] + 2, '-');
    }
    out += "|\n";
    for (const auto& row : rows_) emit_row(row, out);
    return out;
}

std::string format_double(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

}  // namespace xr
