// Aligned plain-text tables for benchmark and example output.
//
// Benchmarks print the same rows the paper's evaluation would tabulate;
// TablePrinter keeps that output readable without pulling in a formatting
// library.
#pragma once

#include <string>
#include <vector>

namespace xr {

class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Render with a header rule and right-aligned numeric-looking cells.
    [[nodiscard]] std::string to_string() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision — benches use this for ratios.
[[nodiscard]] std::string format_double(double v, int precision = 2);

}  // namespace xr
