// Deterministic PRNG for the synthetic workload generators.
//
// SplitMix64 is tiny, fast and has no shared state, so generators seeded
// identically produce identical corpora on any platform — required for the
// reproducibility of every benchmark in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <limits>

namespace xr {

class SplitMix64 {
public:
    using result_type = std::uint64_t;

    explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

    result_type operator()() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) {
        return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Bernoulli trial with probability p (clamped to [0,1]).
    bool chance(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53 < p;
    }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

private:
    std::uint64_t state_;
};

}  // namespace xr
