// CRC32 (IEEE 802.3, polynomial 0xEDB88320) for on-disk integrity checks.
//
// Every durable artifact — snapshot sections, WAL record frames — carries
// a CRC32 of its payload so recovery can tell a torn or corrupted tail
// from valid data.  The implementation is the standard table-driven
// byte-at-a-time variant: fast enough that checksumming is never the
// bottleneck next to the write() it protects, with no external deps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xr::checksum {

/// CRC32 of `data`, continuing from `seed` (pass a previous result to
/// checksum discontiguous buffers as one stream).  The empty buffer with
/// the default seed yields 0.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

[[nodiscard]] inline std::uint32_t crc32(std::string_view data,
                                         std::uint32_t seed = 0) {
    return crc32(data.data(), data.size(), seed);
}

}  // namespace xr::checksum
