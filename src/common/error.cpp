#include "common/error.hpp"

namespace xr {

std::string SourceLocation::to_string() const {
    if (!valid()) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
}

namespace {
std::string compose(const std::string& message, const SourceLocation& where) {
    if (!where.valid()) return message;
    return where.to_string() + ": " + message;
}
}  // namespace

Error::Error(std::string message)
    : std::runtime_error(message), bare_(std::move(message)) {}

Error::Error(std::string message, SourceLocation where)
    : std::runtime_error(compose(message, where)),
      where_(where),
      bare_(std::move(message)) {}

namespace {
std::string compose_corruption(const std::string& message,
                               const std::string& file, std::uint64_t offset,
                               const std::string& section) {
    std::string where = file;
    if (!section.empty()) where += (where.empty() ? "" : " ") + section;
    if (where.empty()) return message;
    return where + " (byte offset " + std::to_string(offset) + "): " + message;
}
}  // namespace

CorruptionError::CorruptionError(std::string message)
    : Error(std::move(message)) {}

CorruptionError::CorruptionError(std::string message, std::string file,
                                 std::uint64_t offset, std::string section)
    : Error(compose_corruption(message, file, offset, section)),
      file_(std::move(file)),
      offset_(offset),
      section_(std::move(section)) {}

Overloaded::Overloaded(std::size_t queue_depth, std::uint64_t retry_after_ms)
    : Error("service overloaded: queue depth " + std::to_string(queue_depth) +
            "; retry after ~" + std::to_string(retry_after_ms) + "ms"),
      queue_depth_(queue_depth),
      retry_after_ms_(retry_after_ms) {}

}  // namespace xr
