// Small string utilities used across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace xr {

/// True iff `c` is XML white space (space, tab, CR, LF).
[[nodiscard]] bool is_xml_space(char c);

/// Strip leading and trailing XML white space.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// ASCII lower-casing (DTD keywords and SQL are ASCII).
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::string to_upper(std::string_view s);

/// Case-insensitive ASCII comparison.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// True iff `s` starts with / ends with the given prefix/suffix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Collapse runs of XML white space into single spaces and trim — the
/// normalization applied to non-CDATA attribute values.
[[nodiscard]] std::string normalize_space(std::string_view s);

/// Escape text for inclusion in XML character data (& < >).
[[nodiscard]] std::string xml_escape_text(std::string_view s);

/// Escape text for inclusion in a double-quoted XML attribute (& < > ").
[[nodiscard]] std::string xml_escape_attribute(std::string_view s);

/// Quote a string as a SQL single-quoted literal (doubling embedded quotes).
[[nodiscard]] std::string sql_quote(std::string_view s);

/// True iff `name` is a valid XML name (restricted to ASCII name chars:
/// letters, digits, '.', '-', '_', ':'; must not start with digit/'.'/'-').
[[nodiscard]] bool is_xml_name(std::string_view name);

/// True iff every token of the IDREFS/NMTOKENS style list is a valid name.
[[nodiscard]] std::vector<std::string> split_name_tokens(std::string_view s);

}  // namespace xr
