#include "common/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>

namespace xr::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

// Armed-point state.  The name is written under g_mutex before g_armed
// is released, and readers take the mutex in the slow path, so the fast
// path costs one atomic load and the slow path is fully serialized.
std::mutex g_mutex;
std::string g_point;
long g_countdown = 0;
bool g_abort = false;
long g_fires_left = 0;
std::atomic<long> g_hits{0};
std::atomic<bool> g_fired{false};

/// One-time arming from XMLREL_FAULT_INJECT="point[:count[:abort|repeat]]".
struct EnvArm {
    EnvArm() {
        const char* spec = std::getenv("XMLREL_FAULT_INJECT");
        if (spec == nullptr || *spec == '\0') return;
        std::string s(spec);
        std::string point = s;
        long count = 1;
        bool abort_instead = false;
        long fires = 1;
        if (auto colon = s.find(':'); colon != std::string::npos) {
            point = s.substr(0, colon);
            std::string rest = s.substr(colon + 1);
            if (auto colon2 = rest.find(':'); colon2 != std::string::npos) {
                std::string mode = rest.substr(colon2 + 1);
                abort_instead = mode == "abort";
                if (mode == "repeat") fires = std::numeric_limits<long>::max();
                rest = rest.substr(0, colon2);
            }
            if (!rest.empty()) count = std::strtol(rest.c_str(), nullptr, 10);
        }
        arm(point, count < 1 ? 1 : count, abort_instead, fires);
    }
};
const EnvArm g_env_arm;

}  // namespace

const std::vector<std::string_view>& known_points() {
    // Kept in sync with the catalogue comment at the top of fault.hpp
    // and DESIGN.md §7.  Sorted so the rejection message reads well.
    static const std::vector<std::string_view> kPoints = {
        "bulk.merge",       "exec.cancel_poll", "loader.resolve",
        "loader.shred",     "rdb.index_rebuild", "recovery.replay",
        "service.admit",    "snapshot.rename",  "snapshot.verify",
        "snapshot.write",   "wal.append",       "wal.fsync",
        "write.retry",      "xml.parse",
    };
    return kPoints;
}

bool arm(std::string_view point, long countdown, bool abort_instead,
         long fires) {
    const auto& known = known_points();
    if (std::find(known.begin(), known.end(), point) == known.end()) {
        std::string names;
        for (std::string_view p : known) {
            if (!names.empty()) names += ", ";
            names += p;
        }
        std::fprintf(stderr,
                     "xmlrel: fault: unknown fault point '%.*s' — not arming "
                     "(known points: %s)\n",
                     static_cast<int>(point.size()), point.data(),
                     names.c_str());
        // A rejected arm still clears any previous arming: the caller
        // asked for a fresh fault state and must not inherit a stale one.
        std::scoped_lock lock(g_mutex);
        g_hits.store(0, std::memory_order_relaxed);
        g_fired.store(false, std::memory_order_relaxed);
        detail::g_armed.store(false, std::memory_order_release);
        return false;
    }
    std::scoped_lock lock(g_mutex);
    g_point = point;
    g_countdown = countdown < 1 ? 1 : countdown;
    g_abort = abort_instead;
    g_fires_left = fires < 1 ? 1 : fires;
    g_hits.store(0, std::memory_order_relaxed);
    g_fired.store(false, std::memory_order_relaxed);
    detail::g_armed.store(true, std::memory_order_release);
    return true;
}

void disarm() {
    std::scoped_lock lock(g_mutex);
    detail::g_armed.store(false, std::memory_order_release);
}

bool armed() { return detail::g_armed.load(std::memory_order_acquire); }

bool fired() { return g_fired.load(std::memory_order_acquire); }

long hits() { return g_hits.load(std::memory_order_acquire); }

namespace detail {

void hit(const char* point) {
    std::unique_lock lock(g_mutex);
    if (!g_armed.load(std::memory_order_relaxed) || g_point != point) return;
    g_hits.fetch_add(1, std::memory_order_relaxed);
    if (--g_countdown > 0) return;
    // With fires left, stay armed and fail on every subsequent hit (retry
    // exhaustion testing); the final fire disarms before throwing so
    // recovery paths that re-enter the same point (e.g. an index rebuild
    // during rollback) run clean.
    if (--g_fires_left > 0) {
        g_countdown = 1;
    } else {
        g_armed.store(false, std::memory_order_release);
    }
    g_fired.store(true, std::memory_order_release);
    if (g_abort) std::abort();
    std::string message = "injected fault at '" + g_point + "'";
    lock.unlock();
    throw InjectedFault(std::move(message));
}

}  // namespace detail

}  // namespace xr::fault
