// Error types shared by every xmlrel subsystem.
//
// All library errors derive from xr::Error, which carries an optional
// SourceLocation pointing into the input text (XML document, DTD, SQL or
// path-query string) that provoked the failure.  Callers that parse user
// input catch xr::Error; internal invariant violations use assertions.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace xr {

/// A position within an input text, 1-based, as conventionally reported by
/// parsers.  `offset` is the 0-based byte offset, useful for tooling.
struct SourceLocation {
    std::size_t line = 0;
    std::size_t column = 0;
    std::size_t offset = 0;

    [[nodiscard]] bool valid() const { return line != 0; }
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
public:
    explicit Error(std::string message);
    Error(std::string message, SourceLocation where);

    [[nodiscard]] const SourceLocation& where() const { return where_; }
    /// The message without the location prefix.
    [[nodiscard]] const std::string& bare_message() const { return bare_; }

private:
    SourceLocation where_;
    std::string bare_;
};

/// Malformed input text (XML, DTD, SQL, path query).
class ParseError : public Error {
public:
    using Error::Error;
};

/// A structurally well-formed document that violates its DTD, or broken
/// ID/IDREF links.
class ValidationError : public Error {
public:
    using Error::Error;
};

/// Problems constructing or using a relational / ER schema: duplicate
/// names, unknown tables or columns, constraint violations.
class SchemaError : public Error {
public:
    using Error::Error;
};

/// Semantic errors in queries (unknown table, type mismatch, untranslatable
/// path step).
class QueryError : public Error {
public:
    using Error::Error;
};

}  // namespace xr
