// Error types shared by every xmlrel subsystem.
//
// All library errors derive from xr::Error, which carries an optional
// SourceLocation pointing into the input text (XML document, DTD, SQL or
// path-query string) that provoked the failure.  Callers that parse user
// input catch xr::Error; internal invariant violations use assertions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace xr {

/// A position within an input text, 1-based, as conventionally reported by
/// parsers.  `offset` is the 0-based byte offset, useful for tooling.
struct SourceLocation {
    std::size_t line = 0;
    std::size_t column = 0;
    std::size_t offset = 0;

    [[nodiscard]] bool valid() const { return line != 0; }
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
public:
    explicit Error(std::string message);
    Error(std::string message, SourceLocation where);

    [[nodiscard]] const SourceLocation& where() const { return where_; }
    /// The message without the location prefix.
    [[nodiscard]] const std::string& bare_message() const { return bare_; }

private:
    SourceLocation where_;
    std::string bare_;
};

/// Malformed input text (XML, DTD, SQL, path query).
class ParseError : public Error {
public:
    using Error::Error;
};

/// A structurally well-formed document that violates its DTD, or broken
/// ID/IDREF links.
class ValidationError : public Error {
public:
    using Error::Error;
};

/// Problems constructing or using a relational / ER schema: duplicate
/// names, unknown tables or columns, constraint violations.
class SchemaError : public Error {
public:
    using Error::Error;
};

/// Semantic errors in queries (unknown table, type mismatch, untranslatable
/// path step).
class QueryError : public Error {
public:
    using Error::Error;
};

// -- request-lifecycle taxonomy (DESIGN.md §11) -----------------------------
//
// A query that stops before completing does so for one of three reasons, and
// callers (retry loops, the CLI, the admission layer) treat them differently:
// an explicit cancellation is final, a deadline miss may be retried with a
// longer budget, a resource-budget hit needs a narrower query.  All three
// share CancelledError so "the query was stopped cooperatively" is one catch.

/// The query was stopped before completing (cancel, deadline or budget).
class CancelledError : public Error {
public:
    using Error::Error;
};

/// The client (or the service, on abandon) requested cancellation.
class QueryCancelled : public CancelledError {
public:
    using CancelledError::CancelledError;
};

/// The query's deadline passed before it finished; queue wait counts.
class DeadlineExceeded : public CancelledError {
public:
    using CancelledError::CancelledError;
};

/// A per-query materialization budget (rows or bytes) was exhausted.
class ResourceExhausted : public CancelledError {
public:
    using CancelledError::CancelledError;
};

/// Admission control shed the request: the service's queue is full.  Carries
/// the observed queue depth and a suggested retry-after so well-behaved
/// clients can back off instead of hammering a saturated service.
class Overloaded : public Error {
public:
    Overloaded(std::size_t queue_depth, std::uint64_t retry_after_ms);

    [[nodiscard]] std::size_t queue_depth() const { return queue_depth_; }
    [[nodiscard]] std::uint64_t retry_after_ms() const { return retry_after_ms_; }

private:
    std::size_t queue_depth_ = 0;
    std::uint64_t retry_after_ms_ = 0;
};

/// The service is shutting down; late submissions are rejected rather than
/// enqueued (a job accepted after the workers drain would never resolve).
class ShuttingDown : public Error {
public:
    using Error::Error;
};

// -- storage integrity (DESIGN.md §14) --------------------------------------

/// On-disk state that fails its own self-description: a bad checksum,
/// an impossible length, an out-of-range id, a record that cannot be
/// applied.  Carries the artifact (`file`), the byte `offset` of the
/// damaged frame, and the `section` ("section 3", "record 17") so
/// callers — recovery, the salvage path, the torture harness — can say
/// exactly what was damaged rather than "something failed".  Distinct
/// from ParseError (user input) and SchemaError (caller logic): a
/// CorruptionError always means the *storage* broke its contract.
class CorruptionError : public Error {
public:
    explicit CorruptionError(std::string message);
    CorruptionError(std::string message, std::string file,
                    std::uint64_t offset, std::string section = {});

    [[nodiscard]] const std::string& file() const { return file_; }
    [[nodiscard]] std::uint64_t offset() const { return offset_; }
    [[nodiscard]] const std::string& section() const { return section_; }

private:
    std::string file_;
    std::uint64_t offset_ = 0;
    std::string section_;
};

}  // namespace xr
