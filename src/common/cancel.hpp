// Cooperative cancellation for long-running queries (DESIGN.md §11).
//
// A CancelToken is the request-lifecycle handle the query service hands to
// every execution: it bundles an explicit-cancel flag, a steady-clock
// deadline and per-query materialization budgets (rows / bytes) behind one
// cheap check() call.  Execution code polls the token at its natural loop
// boundaries (the SQL executor every kCancelPollInterval rows, the legacy
// '//' expansion every few DFS steps); a fired condition surfaces as the
// matching CancelledError subclass, which unwinds through the ordinary
// error paths — a cancelled query leaves no state behind because queries
// never had side effects to begin with.
//
// Tokens are value types sharing state: copying a token yields another
// handle on the same query, so the service can keep one half (to cancel on
// client abandon) while the executor polls the other.  A default-constructed
// token is *inert* — no allocation, every operation a no-op — which keeps
// the non-serving call sites (tests, benches, the inline CLI path) at zero
// overhead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>

#include "common/error.hpp"

namespace xr {

/// A point in steady-clock time after which a query must stop.  Default
/// construction means "no deadline".
class Deadline {
public:
    using Clock = std::chrono::steady_clock;

    Deadline() = default;

    /// Deadline `d` from now; non-positive durations are already expired.
    static Deadline after(Clock::duration d) { return at(Clock::now() + d); }
    static Deadline at(Clock::time_point tp) {
        Deadline dl;
        dl.at_ = tp;
        dl.bounded_ = true;
        return dl;
    }

    [[nodiscard]] bool bounded() const { return bounded_; }
    [[nodiscard]] bool expired() const {
        return bounded_ && Clock::now() >= at_;
    }
    /// Time left; Clock::duration::max() when unbounded, never negative.
    [[nodiscard]] Clock::duration remaining() const {
        if (!bounded_) return Clock::duration::max();
        Clock::time_point now = Clock::now();
        return now >= at_ ? Clock::duration::zero() : at_ - now;
    }
    [[nodiscard]] Clock::time_point time_point() const { return at_; }

private:
    Clock::time_point at_{};
    bool bounded_ = false;
};

class CancelToken {
public:
    /// Everything a query may be bounded by; 0 budgets mean unlimited.
    struct Limits {
        Deadline deadline;
        std::size_t row_budget = 0;   ///< materialized row contexts + rows
        std::size_t byte_budget = 0;  ///< approximate materialized bytes
    };

    /// Inert token: active() is false and every operation is a no-op.
    CancelToken() = default;

    /// Live token enforcing `limits`; the no-limits overload yields a
    /// token that only supports explicit cancellation.
    static CancelToken make() { return make(Limits{}); }
    static CancelToken make(Limits limits) {
        CancelToken t;
        t.state_ = std::make_shared<State>();
        t.state_->limits = limits;
        return t;
    }

    [[nodiscard]] bool active() const { return state_ != nullptr; }

    /// Flag the query for cancellation; the next check() throws.  Safe from
    /// any thread, idempotent, and a no-op on an inert token.
    void request_cancel() const noexcept {
        if (state_) state_->cancelled.store(true, std::memory_order_release);
    }

    [[nodiscard]] bool cancel_requested() const {
        return state_ && state_->cancelled.load(std::memory_order_acquire);
    }

    [[nodiscard]] Deadline deadline() const {
        return state_ ? state_->limits.deadline : Deadline{};
    }

    [[nodiscard]] bool expired() const {
        return state_ && state_->limits.deadline.expired();
    }

    /// The cancellation checkpoint: throws QueryCancelled when cancel was
    /// requested, DeadlineExceeded when the deadline passed.  An explicit
    /// cancel wins over a simultaneous deadline miss — the client asked.
    void check() const {
        if (!state_) return;
        if (state_->cancelled.load(std::memory_order_acquire))
            throw QueryCancelled("query cancelled");
        if (state_->limits.deadline.expired())
            throw DeadlineExceeded("query deadline exceeded");
    }

    /// Budget accounting for materialized state; throws ResourceExhausted
    /// past the corresponding budget.  Counters are atomic only so that a
    /// monitoring thread may read them; each query is executed by one
    /// thread at a time.
    void charge_rows(std::size_t n = 1) const {
        if (!state_ || state_->limits.row_budget == 0) return;
        std::size_t total =
            state_->rows.fetch_add(n, std::memory_order_relaxed) + n;
        if (total > state_->limits.row_budget)
            throw ResourceExhausted(
                "query row budget of " +
                std::to_string(state_->limits.row_budget) +
                " materialized rows exceeded");
    }
    void charge_bytes(std::size_t n) const {
        if (!state_ || state_->limits.byte_budget == 0) return;
        std::size_t total =
            state_->bytes.fetch_add(n, std::memory_order_relaxed) + n;
        if (total > state_->limits.byte_budget)
            throw ResourceExhausted(
                "query byte budget of " +
                std::to_string(state_->limits.byte_budget) +
                " materialized bytes exceeded");
    }

    [[nodiscard]] std::size_t rows_charged() const {
        return state_ ? state_->rows.load(std::memory_order_relaxed) : 0;
    }
    [[nodiscard]] std::size_t bytes_charged() const {
        return state_ ? state_->bytes.load(std::memory_order_relaxed) : 0;
    }

private:
    struct State {
        std::atomic<bool> cancelled{false};
        Limits limits;
        std::atomic<std::size_t> rows{0};
        std::atomic<std::size_t> bytes{0};
    };

    std::shared_ptr<State> state_;
};

}  // namespace xr
