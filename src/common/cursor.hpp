// A character cursor over input text that tracks line/column positions.
//
// Shared by the XML, DTD, SQL and path-query parsers so every ParseError
// carries an accurate SourceLocation.
#pragma once

#include <string_view>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace xr {

class Cursor {
public:
    explicit Cursor(std::string_view text) : text_(text) {}

    [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
    [[nodiscard]] std::size_t pos() const { return pos_; }
    [[nodiscard]] std::string_view text() const { return text_; }

    /// Current character; '\0' at end.
    [[nodiscard]] char peek() const { return at_end() ? '\0' : text_[pos_]; }

    /// Character at offset `n` past the current one; '\0' past the end.
    [[nodiscard]] char peek(std::size_t n) const {
        return pos_ + n < text_.size() ? text_[pos_ + n] : '\0';
    }

    /// Remaining unconsumed text.
    [[nodiscard]] std::string_view rest() const { return text_.substr(pos_); }

    char advance() {
        char c = peek();
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else if (c != '\0') {
            ++column_;
        }
        if (!at_end()) ++pos_;
        return c;
    }

    /// Consume `s` if the input starts with it here.
    bool consume(std::string_view s) {
        if (!starts_with(rest(), s)) return false;
        for (std::size_t i = 0; i < s.size(); ++i) advance();
        return true;
    }

    /// True (without consuming) iff the input starts with `s` here.
    [[nodiscard]] bool lookahead(std::string_view s) const {
        return starts_with(rest(), s);
    }

    void skip_space() {
        while (is_xml_space(peek())) advance();
    }

    [[nodiscard]] SourceLocation location() const { return {line_, column_, pos_}; }

    [[noreturn]] void fail(const std::string& message) const {
        throw ParseError(message, location());
    }

private:
    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t column_ = 1;
};

}  // namespace xr
