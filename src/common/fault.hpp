// Deterministic fault injection for rollback / fault-tolerance testing.
//
// The loader pipeline is sprinkled with named fault points
// (`fault::maybe_fail("bulk.merge")`); each is a single relaxed atomic
// load when nothing is armed, so the hooks are compiled in always — no
// special build flavour needed — and tests (or the environment) can
// provoke a failure at any stage of a load to prove the rollback
// machinery restores the database exactly.
//
// Arming:
//   * programmatic — fault::arm("loader.shred", 3) throws InjectedFault
//     on the 3rd hit of that point, then disarms itself (one-shot, so at
//     most one failure fires per arm even with concurrent workers); a
//     `fires` count > 1 keeps the point armed and failing on every
//     subsequent hit until that many faults have fired — how tests force
//     retry loops to exhaust their attempts;
//   * environment — XMLREL_FAULT_INJECT="point[:count[:abort|repeat]]"
//     arms the point at process start; the optional `abort` mode calls
//     std::abort() instead of throwing (crash-style testing of external
//     supervisors), `repeat` keeps firing on every hit.
//
// Fault-point catalogue (kept in sync with DESIGN.md §7):
//   xml.parse          entry of xml::parse_document
//   loader.shred       per element shredded (Loader::load_element)
//   bulk.merge         per table merged (BulkLoader staging → storage)
//   rdb.index_rebuild  per table index rebuild (Table::end_bulk)
//   loader.resolve     per IDREF row visited during resolution
//   wal.append         per WAL record buffered (Wal::append)
//   wal.fsync          outermost-commit flush, before any byte moves
//   snapshot.write     before the snapshot temp file is written
//   snapshot.rename    before the temp file is renamed into place
//   recovery.replay    per WAL record applied during Database::open
//   service.admit      per submission, inside QueryService admission
//   exec.cancel_poll   per cancellation poll in the SQL executor
//   write.retry        per attempt of QueryService::execute_write
//   snapshot.verify    before checkpoint() re-reads the snapshot it wrote
//
// The catalogue is compiled into known_points(); arm() refuses names
// that are not in it (a typo'd XMLREL_FAULT_INJECT used to arm a point
// that could never fire, silently testing nothing).
#pragma once

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace xr::fault {

/// Thrown by an armed fault point.  Derives from xr::Error so it flows
/// through the same recovery paths as organic failures, but is
/// distinguishable (loaders classify it as retryable).
class InjectedFault : public Error {
public:
    using Error::Error;
};

namespace detail {
extern std::atomic<bool> g_armed;
void hit(const char* point);  // slow path; only reached while armed
}  // namespace detail

/// Fault point: no-op unless a matching point is armed.  Safe to call
/// from concurrent workers.
inline void maybe_fail(const char* point) {
    if (detail::g_armed.load(std::memory_order_acquire)) detail::hit(point);
}

/// Arm `point` to fail on its `countdown`-th hit (1 = next hit).  With
/// `abort_instead` the process aborts rather than throwing.  `fires` is
/// the total number of faults to inject: after the first fires, every
/// further hit fires too until `fires` failures happened (so retry loops
/// can be made to exhaust deterministically); the usual one-shot is
/// fires = 1.  Re-arming replaces any previous arm.  Must not race with
/// in-flight loads.
///
/// Unknown point names are rejected: a warning goes to stderr, the armed
/// state is left untouched, and arm() returns false.  Returns true when
/// the point was armed.
bool arm(std::string_view point, long countdown = 1, bool abort_instead = false,
         long fires = 1);

/// Every fault-point name compiled into the binary (the catalogue
/// above), sorted.  arm() accepts exactly these.
[[nodiscard]] const std::vector<std::string_view>& known_points();

/// Disarm without firing.
void disarm();

/// True while a point is armed (the fault has not fired yet).
[[nodiscard]] bool armed();

/// True once the armed fault has fired (reset by the next arm()).
[[nodiscard]] bool fired();

/// Hits recorded on the armed point since the last arm().
[[nodiscard]] long hits();

}  // namespace xr::fault
