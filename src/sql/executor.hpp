// SQL execution over MiniRDB.
//
// Planning is deliberately simple but not naive:
//   * equality predicates on indexed columns of the driving table become
//     index scans;
//   * equi-joins build a hash table on the inner side, or use an existing
//     index when one matches;
//   * remaining predicates filter after the joins;
//   * aggregation, GROUP BY / HAVING, ORDER BY and LIMIT run as final
//     phases.
// The same engine executes the paper-motivated workloads both for the
// mapping's schema and for the inlining baselines, so query-shape
// comparisons are apples-to-apples.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.hpp"
#include "rdb/database.hpp"
#include "sql/ast.hpp"
#include "sql/planner.hpp"

namespace xr::sql {

struct ResultSet {
    std::vector<std::string> columns;
    std::vector<rdb::Row> rows;

    [[nodiscard]] std::size_t row_count() const { return rows.size(); }
    [[nodiscard]] const rdb::Value& at(std::size_t row,
                                       std::size_t column) const {
        return rows[row][column];
    }
    /// First cell of the first row (common for COUNT queries); NULL if empty.
    [[nodiscard]] rdb::Value scalar() const {
        return rows.empty() || rows[0].empty() ? rdb::Value::null() : rows[0][0];
    }
    [[nodiscard]] std::string to_string() const;
};

/// Execution statistics (join strategy visibility for benches and the
/// query service).  Counters are atomic so one ExecStats may be shared by
/// concurrent executions — each execution accumulates privately and folds
/// its totals in with one add() per counter when it finishes, so partial
/// counts of an in-flight query are never observable.  Copying snapshots
/// the counters (relaxed), which is how per-session stats aggregate.
struct ExecStats {
    std::atomic<std::size_t> rows_scanned{0};
    std::atomic<std::size_t> index_lookups{0};
    std::atomic<std::size_t> hash_joins{0};
    std::atomic<std::size_t> nested_loop_joins{0};
    /// Structural-join probes: binary-searched ranges on an ordered index
    /// (interval containment joins, DESIGN.md §10).
    std::atomic<std::size_t> range_scans{0};
    /// Cancellation checkpoints reached (one per kCancelPollInterval rows,
    /// DESIGN.md §11) — tests assert on this to prove a long-running query
    /// actually polls its token.
    std::atomic<std::size_t> cancel_polls{0};

    ExecStats() = default;
    ExecStats(const ExecStats& other) { *this = other; }
    ExecStats& operator=(const ExecStats& other) {
        if (this == &other) return *this;
        rows_scanned = other.rows_scanned.load(std::memory_order_relaxed);
        index_lookups = other.index_lookups.load(std::memory_order_relaxed);
        hash_joins = other.hash_joins.load(std::memory_order_relaxed);
        nested_loop_joins =
            other.nested_loop_joins.load(std::memory_order_relaxed);
        range_scans = other.range_scans.load(std::memory_order_relaxed);
        cancel_polls = other.cancel_polls.load(std::memory_order_relaxed);
        return *this;
    }

    /// Fold another execution's counters in (thread safe on *this).
    void add(const ExecStats& other) {
        rows_scanned.fetch_add(
            other.rows_scanned.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        index_lookups.fetch_add(
            other.index_lookups.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        hash_joins.fetch_add(other.hash_joins.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
        nested_loop_joins.fetch_add(
            other.nested_loop_joins.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        range_scans.fetch_add(
            other.range_scans.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        cancel_polls.fetch_add(
            other.cancel_polls.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    }

    void reset() {
        rows_scanned = 0;
        index_lookups = 0;
        hash_joins = 0;
        nested_loop_joins = 0;
        range_scans = 0;
        cancel_polls = 0;
    }
};

/// Rows accepted between cancellation checkpoints (DESIGN.md §11): every
/// kCancelPollInterval-th row of join enumeration / range scans, and the
/// same cadence through final-pass aggregation, sorting and DISTINCT, the
/// executor polls its CancelToken (and the `exec.cancel_poll` fault point).
/// Small enough that even a 1ms deadline fires promptly mid-join, large
/// enough that an uncancellable query pays ~one atomic load per row.
inline constexpr std::size_t kCancelPollInterval = 64;

/// Execute any statement.  DDL/DML statements return an empty result.
/// Re-entrant: concurrent calls (each with its own freshly parsed SQL)
/// may share `db` — under a rdb::ReadSnapshot for SELECTs — and may share
/// one `stats` object.  `cancel` is polled cooperatively (see
/// kCancelPollInterval); the default inert token never fires and costs
/// nothing.  `planner` configures the cost-based pass for SELECTs
/// (DESIGN.md §13); nullptr means default options (planner on).
ResultSet execute(rdb::Database& db, std::string_view sql,
                  ExecStats* stats = nullptr,
                  const CancelToken& cancel = {},
                  const PlannerOptions* planner = nullptr);

/// Execute a read-only statement (SELECT) against a pinned or live read
/// view.  This is the MVCC serving path: pass `snapshot.view()` and the
/// whole parse/plan/execute pipeline runs latch-free against that epoch,
/// never observing concurrent writer state.  Throws QueryError for any
/// non-SELECT statement.
ResultSet execute_read(const rdb::ReadView& db, std::string_view sql,
                       ExecStats* stats = nullptr,
                       const CancelToken& cancel = {},
                       const PlannerOptions* planner = nullptr);

/// Execute an already-parsed SELECT.  Binding annotations are written into
/// the AST — and the cost-based planner may rewrite the join order in
/// place — so the statement is taken by mutable reference; re-execution of
/// the same statement is fine (binding and planning are idempotent), but
/// two *threads* must not share one SelectStmt — give each its own parse
/// (the query service does exactly that; plan caching caches SQL text,
/// not ASTs).  The ReadView overload is the MVCC path: a view over a
/// pinned DatabaseVersion reads that epoch latch-free; a view over the
/// live Database (the convenience overload below) is for writer-thread or
/// quiesced contexts.
ResultSet execute_select(const rdb::ReadView& db, SelectStmt& stmt,
                         ExecStats* stats = nullptr,
                         const CancelToken& cancel = {},
                         const PlannerOptions* planner = nullptr);
ResultSet execute_select(rdb::Database& db, SelectStmt& stmt,
                         ExecStats* stats = nullptr,
                         const CancelToken& cancel = {},
                         const PlannerOptions* planner = nullptr);

}  // namespace xr::sql
