// SQL execution over MiniRDB.
//
// Planning is deliberately simple but not naive:
//   * equality predicates on indexed columns of the driving table become
//     index scans;
//   * equi-joins build a hash table on the inner side, or use an existing
//     index when one matches;
//   * remaining predicates filter after the joins;
//   * aggregation, GROUP BY / HAVING, ORDER BY and LIMIT run as final
//     phases.
// The same engine executes the paper-motivated workloads both for the
// mapping's schema and for the inlining baselines, so query-shape
// comparisons are apples-to-apples.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rdb/database.hpp"
#include "sql/ast.hpp"

namespace xr::sql {

struct ResultSet {
    std::vector<std::string> columns;
    std::vector<rdb::Row> rows;

    [[nodiscard]] std::size_t row_count() const { return rows.size(); }
    [[nodiscard]] const rdb::Value& at(std::size_t row,
                                       std::size_t column) const {
        return rows[row][column];
    }
    /// First cell of the first row (common for COUNT queries); NULL if empty.
    [[nodiscard]] rdb::Value scalar() const {
        return rows.empty() || rows[0].empty() ? rdb::Value::null() : rows[0][0];
    }
    [[nodiscard]] std::string to_string() const;
};

/// Statistics of the last execution (join strategy visibility for benches).
struct ExecStats {
    std::size_t rows_scanned = 0;
    std::size_t index_lookups = 0;
    std::size_t hash_joins = 0;
    std::size_t nested_loop_joins = 0;
};

/// Execute any statement.  DDL/DML statements return an empty result.
ResultSet execute(rdb::Database& db, std::string_view sql,
                  ExecStats* stats = nullptr);

/// Execute an already-parsed SELECT.  Binding annotations are written into
/// the AST, so the statement is taken by mutable reference; re-execution of
/// the same statement is fine (binding is idempotent).
ResultSet execute_select(rdb::Database& db, SelectStmt& stmt,
                         ExecStats* stats = nullptr);

}  // namespace xr::sql
