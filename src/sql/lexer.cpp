#include "sql/lexer.hpp"

#include <cctype>
#include <set>

#include "common/cursor.hpp"

namespace xr::sql {

namespace {

const std::set<std::string, std::less<>>& keywords() {
    static const std::set<std::string, std::less<>> kw = {
        "SELECT", "FROM",   "WHERE",  "JOIN",    "INNER",  "LEFT",  "ON",
        "AND",    "OR",     "NOT",    "AS",      "ORDER",  "BY",    "GROUP",
        "LIMIT",  "ASC",    "DESC",   "INSERT",  "INTO",   "VALUES",
        "CREATE", "TABLE",  "INDEX",  "PRIMARY", "KEY",    "UNIQUE",
        "NULL",   "IS",     "LIKE",   "REFERENCES",   "COUNT",   "SUM",    "MIN",   "MAX",
        "AVG",    "DISTINCT", "INTEGER", "REAL",  "TEXT",  "HAVING",
    };
    return kw;
}

}  // namespace

std::vector<Token> lex(std::string_view sql) {
    std::vector<Token> out;
    Cursor cur(sql);
    for (;;) {
        cur.skip_space();
        if (cur.at_end()) break;
        SourceLocation where = cur.location();
        char c = cur.peek();

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string word;
            while (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
                   cur.peek() == '_')
                word += cur.advance();
            std::string upper = to_upper(word);
            if (keywords().contains(upper))
                out.push_back({TokenType::kKeyword, std::move(upper), where});
            else
                out.push_back({TokenType::kIdentifier, std::move(word), where});
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string num;
            bool real = false;
            while (std::isdigit(static_cast<unsigned char>(cur.peek())) ||
                   cur.peek() == '.') {
                if (cur.peek() == '.') {
                    if (real) break;
                    // '1.' followed by identifier is qualified access, not a
                    // real literal — but digits cannot start identifiers, so
                    // a dot after digits is always a decimal point here.
                    real = true;
                }
                num += cur.advance();
            }
            out.push_back(
                {real ? TokenType::kReal : TokenType::kInteger, std::move(num),
                 where});
            continue;
        }

        if (c == '\'') {
            cur.advance();
            std::string text;
            for (;;) {
                if (cur.at_end()) cur.fail("unterminated string literal");
                char ch = cur.advance();
                if (ch == '\'') {
                    if (cur.peek() == '\'') {
                        text += '\'';
                        cur.advance();
                        continue;
                    }
                    break;
                }
                text += ch;
            }
            out.push_back({TokenType::kString, std::move(text), where});
            continue;
        }

        if (c == '"') {
            cur.advance();
            std::string name;
            while (!cur.at_end() && cur.peek() != '"') name += cur.advance();
            if (!cur.consume("\"")) cur.fail("unterminated quoted identifier");
            out.push_back({TokenType::kIdentifier, std::move(name), where});
            continue;
        }

        // Comments.
        if (c == '-' && cur.peek(1) == '-') {
            while (!cur.at_end() && cur.peek() != '\n') cur.advance();
            continue;
        }

        // Multi-character operators first.
        for (std::string_view op : {"<>", "<=", ">=", "!="}) {
            if (cur.lookahead(op)) {
                cur.consume(op);
                out.push_back({TokenType::kSymbol,
                               std::string(op == "!=" ? "<>" : op), where});
                goto next;
            }
        }
        {
            static const std::string singles = "=<>(),.*+-/%;";
            if (singles.find(c) != std::string::npos) {
                cur.advance();
                out.push_back({TokenType::kSymbol, std::string(1, c), where});
                continue;
            }
            cur.fail(std::string("unexpected character '") + c + "' in SQL");
        }
    next:;
    }
    out.push_back({TokenType::kEnd, "", cur.location()});
    return out;
}

}  // namespace xr::sql
