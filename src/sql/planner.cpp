#include "sql/planner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iomanip>
#include <sstream>

namespace xr::sql {

namespace {

using rdb::Table;
using rdb::Value;

constexpr double kInf = 1e300;

double lg(double x) { return std::log2(x < 2.0 ? 2.0 : x); }

double clamp_sel(double s) {
    if (s < 1e-4) return 1e-4;
    if (s > 1.0) return 1.0;
    return s;
}

bool numeric(const Value& v, double& out) {
    switch (v.type()) {
        case rdb::ValueType::kInteger: out = static_cast<double>(v.as_integer()); return true;
        case rdb::ValueType::kReal: out = v.as_real(); return true;
        default: return false;
    }
}

/// Per-table planning state: statistics-backed cardinality, the product
/// of single-table predicate selectivities, and stage-0 access hints
/// (what the executor can do when this table drives the pipeline).
struct TableInfo {
    TableRef ref;
    const Table* table = nullptr;
    double rows = 0;
    double local_sel = 1.0;
    bool index_eq = false;  ///< literal equality on an indexed column
    double index_eq_sel = 1.0;
    std::string index_eq_col;
    bool range_lit = false;  ///< literal bound on an ordered-indexed column
    double range_lit_sel = 1.0;
    std::string range_lit_col;
};

/// `col(t,c) = <expr over others>` — a probe the executor can drive when
/// every `others` table is already placed.
struct ProbeCand {
    int t = -1;
    int c = -1;
    std::uint64_t others = 0;  ///< bitmask of tables the outer side reads
};

/// `col(t,c) OP <expr over others>` (normalized direction) — a range
/// bound answerable by the ordered index once `others` are placed.
struct RangeCand {
    int t = -1;
    int c = -1;
    std::uint64_t others = 0;
    bool lower = false;  ///< col > expr
};

struct Conjunct {
    const Expr* expr = nullptr;
    std::uint64_t tables = 0;  ///< bitmask of referenced tables
    double sel = 0.5;
    std::vector<ProbeCand> eq;
    std::vector<RangeCand> range;
};

/// Column binding against the FROM/JOIN tables — same rules as the
/// executor's binder, but failure is a "don't plan" signal, not an error
/// (the executor will produce the diagnostic).
class Resolver {
public:
    explicit Resolver(const std::vector<TableInfo>& tables) : tables_(tables) {}

    [[nodiscard]] bool bind(Expr& e) const {
        switch (e.kind) {
            case Expr::Kind::kColumn:
                return resolve(e);
            case Expr::Kind::kBinary:
                return bind(*e.left) && bind(*e.right);
            case Expr::Kind::kNot:
            case Expr::Kind::kIsNull:
                return bind(*e.right);
            case Expr::Kind::kAggregate:
                return e.right == nullptr ||
                       e.right->kind == Expr::Kind::kStar || bind(*e.right);
            default:
                return true;
        }
    }

private:
    const std::vector<TableInfo>& tables_;

    [[nodiscard]] bool resolve(Expr& e) const {
        if (!e.table.empty()) {
            for (std::size_t t = 0; t < tables_.size(); ++t) {
                if (tables_[t].ref.effective_alias() != e.table) continue;
                int c = tables_[t].table->def().column_index(e.column);
                if (c < 0) return false;
                e.bound_table = static_cast<int>(t);
                e.bound_column = c;
                return true;
            }
            return false;
        }
        int found_t = -1, found_c = -1;
        for (std::size_t t = 0; t < tables_.size(); ++t) {
            int c = tables_[t].table->def().column_index(e.column);
            if (c < 0) continue;
            if (found_t >= 0) return false;  // ambiguous
            found_t = static_cast<int>(t);
            found_c = c;
        }
        if (found_t < 0) return false;
        e.bound_table = found_t;
        e.bound_column = found_c;
        return true;
    }
};

std::uint64_t expr_tables(const Expr& e) {
    switch (e.kind) {
        case Expr::Kind::kColumn:
            return e.bound_table >= 0 ? (std::uint64_t{1} << e.bound_table) : 0;
        case Expr::Kind::kBinary:
            return expr_tables(*e.left) | expr_tables(*e.right);
        case Expr::Kind::kNot:
        case Expr::Kind::kIsNull:
            return expr_tables(*e.right);
        case Expr::Kind::kAggregate:
            return e.right != nullptr && e.right->kind != Expr::Kind::kStar
                       ? expr_tables(*e.right)
                       : 0;
        default:
            return 0;
    }
}

/// NDV of a column: primary keys are unique by construction; otherwise
/// the statistics sketch answers, 0 meaning "unknown".
double col_ndv(const TableInfo& ti, int c) {
    if (ti.table->def().columns[c].primary_key) return ti.rows;
    const auto& cols = ti.table->stats().columns;
    if (static_cast<std::size_t>(c) < cols.size()) {
        std::uint64_t n = cols[c].ndv();
        if (n > 0) return static_cast<double>(n);
    }
    return 0;
}

double eq_sel(const TableInfo& ti, int c) {
    double ndv = col_ndv(ti, c);
    return ndv > 0 ? 1.0 / ndv : 0.1;
}

/// Selectivity of `col OP literal` (already normalized so the column is
/// on the left).  Ranges interpolate against the statistics min/max.
double cmp_sel(const TableInfo& ti, int c, BinaryOp op, const Value& lit) {
    switch (op) {
        case BinaryOp::kEq:
            return eq_sel(ti, c);
        case BinaryOp::kNe:
            return 1.0 - eq_sel(ti, c);
        case BinaryOp::kLike:
            return 0.25;
        default:
            break;
    }
    const auto& cols = ti.table->stats().columns;
    double v = 0, lo = 0, hi = 0;
    if (static_cast<std::size_t>(c) < cols.size() && numeric(lit, v) &&
        numeric(cols[c].min, lo) && numeric(cols[c].max, hi) && hi > lo) {
        double frac = (v - lo) / (hi - lo);
        frac = std::clamp(frac, 0.0, 1.0);
        bool below = op == BinaryOp::kLt || op == BinaryOp::kLe;
        return clamp_sel(below ? frac : 1.0 - frac);
    }
    return 1.0 / 3.0;
}

/// Selectivity of a single-table predicate subtree.
double estimate_sel(const Expr& e, const TableInfo& ti) {
    switch (e.kind) {
        case Expr::Kind::kBinary: {
            if (e.op == BinaryOp::kAnd)
                return clamp_sel(estimate_sel(*e.left, ti) *
                                 estimate_sel(*e.right, ti));
            if (e.op == BinaryOp::kOr) {
                double a = estimate_sel(*e.left, ti);
                double b = estimate_sel(*e.right, ti);
                return clamp_sel(a + b - a * b);
            }
            const Expr *col = nullptr, *lit = nullptr;
            bool col_left = true;
            if (e.left->kind == Expr::Kind::kColumn &&
                e.right->kind == Expr::Kind::kLiteral) {
                col = e.left.get();
                lit = e.right.get();
            } else if (e.right->kind == Expr::Kind::kColumn &&
                       e.left->kind == Expr::Kind::kLiteral) {
                col = e.right.get();
                lit = e.left.get();
                col_left = false;
            }
            if (col != nullptr) {
                BinaryOp op = e.op;
                if (!col_left) {  // literal OP col: flip the direction
                    switch (op) {
                        case BinaryOp::kLt: op = BinaryOp::kGt; break;
                        case BinaryOp::kLe: op = BinaryOp::kGe; break;
                        case BinaryOp::kGt: op = BinaryOp::kLt; break;
                        case BinaryOp::kGe: op = BinaryOp::kLe; break;
                        default: break;
                    }
                }
                return cmp_sel(ti, col->bound_column, op, lit->literal);
            }
            switch (e.op) {
                case BinaryOp::kEq: return 0.1;
                case BinaryOp::kNe: return 0.9;
                case BinaryOp::kLt:
                case BinaryOp::kLe:
                case BinaryOp::kGt:
                case BinaryOp::kGe: return 1.0 / 3.0;
                case BinaryOp::kLike: return 0.25;
                default: return 0.5;
            }
        }
        case Expr::Kind::kNot:
            return clamp_sel(1.0 - estimate_sel(*e.right, ti));
        case Expr::Kind::kIsNull: {
            const auto& cols = ti.table->stats().columns;
            double base = 0.1;
            const std::uint64_t covered = ti.table->stats().rows;
            if (e.right->kind == Expr::Kind::kColumn && covered > 0 &&
                static_cast<std::size_t>(e.right->bound_column) < cols.size())
                base = static_cast<double>(cols[e.right->bound_column].nulls) /
                       static_cast<double>(covered);
            return clamp_sel(e.negated ? 1.0 - base : base);
        }
        default:
            return 0.5;
    }
}

/// The executor's driving-table (stage 0) rules, mirrored: literal
/// equality needs any index; a literal range bound needs the ordered one.
void note_driving_hints(TableInfo& ti, const Expr& e) {
    if (e.kind != Expr::Kind::kBinary) return;
    const Expr *col = nullptr, *other = nullptr;
    bool col_left = true;
    auto pick = [&](const Expr* a, const Expr* b, bool left) {
        if (col == nullptr && a->kind == Expr::Kind::kColumn &&
            expr_tables(*b) == 0) {
            col = a;
            other = b;
            col_left = left;
        }
    };
    pick(e.left.get(), e.right.get(), true);
    pick(e.right.get(), e.left.get(), false);
    if (col == nullptr) return;
    const std::string& name =
        ti.table->def().columns[col->bound_column].name;
    if (e.op == BinaryOp::kEq && other->kind == Expr::Kind::kLiteral &&
        ti.table->has_index(name)) {
        if (!ti.index_eq) {
            ti.index_eq = true;
            ti.index_eq_sel = eq_sel(ti, col->bound_column);
            ti.index_eq_col = name;
        }
        return;
    }
    bool is_range = e.op == BinaryOp::kLt || e.op == BinaryOp::kLe ||
                    e.op == BinaryOp::kGt || e.op == BinaryOp::kGe;
    if (is_range && ti.table->has_ordered_index(name)) {
        BinaryOp op = e.op;
        if (!col_left) {
            switch (op) {
                case BinaryOp::kLt: op = BinaryOp::kGt; break;
                case BinaryOp::kLe: op = BinaryOp::kGe; break;
                case BinaryOp::kGt: op = BinaryOp::kLt; break;
                case BinaryOp::kGe: op = BinaryOp::kLe; break;
                default: break;
            }
        }
        double sel = other->kind == Expr::Kind::kLiteral
                         ? cmp_sel(ti, col->bound_column, op, other->literal)
                         : 1.0 / 3.0;
        if (!ti.range_lit) {
            ti.range_lit = true;
            ti.range_lit_sel = sel;
            ti.range_lit_col = name;
        } else if (ti.range_lit_col == name) {
            ti.range_lit_sel = clamp_sel(ti.range_lit_sel * sel);
        }
    }
}

struct StepEval {
    AccessPath path = AccessPath::kNestedLoop;
    std::string detail;
    double cost = 0;
    double out = 0;
};

/// Cost of appending table `t` to the placed set `mask` (cardinality
/// `card_in`), choosing the access path the executor would derive for
/// that position.
StepEval eval_step(const std::vector<TableInfo>& tables,
                   const std::vector<Conjunct>& joins, std::uint64_t mask,
                   int t, double card_in) {
    const TableInfo& ti = tables[t];
    StepEval ev;
    double rows = ti.rows < 0 ? 0 : ti.rows;

    if (mask == 0) {
        ev.out = rows * ti.local_sel;
        if (ti.index_eq) {
            ev.path = AccessPath::kIndexEq;
            ev.detail = ti.index_eq_col;
            ev.cost = 1.0 + rows * ti.index_eq_sel;
        } else if (ti.range_lit) {
            ev.path = AccessPath::kRange;
            ev.detail = ti.range_lit_col;
            ev.cost = lg(rows) + rows * ti.range_lit_sel;
        } else {
            ev.path = AccessPath::kScan;
            ev.cost = rows;
        }
        return ev;
    }

    std::uint64_t placed = mask | (std::uint64_t{1} << t);
    std::uint64_t tbit = std::uint64_t{1} << t;
    double join_sel = 1.0;
    const ProbeCand* probe = nullptr;
    const RangeCand* range = nullptr;
    for (const auto& cj : joins) {
        if ((cj.tables & tbit) == 0) continue;
        if ((cj.tables & ~placed) != 0) continue;  // references unplaced tables
        join_sel *= cj.sel;
        if (probe == nullptr) {
            for (const auto& cand : cj.eq)
                if (cand.t == t && (cand.others & ~mask) == 0 &&
                    (cand.others & tbit) == 0) {
                    probe = &cand;
                    break;
                }
        }
        if (probe == nullptr && range == nullptr) {
            for (const auto& cand : cj.range) {
                if (cand.t != t || (cand.others & ~mask) != 0 ||
                    (cand.others & tbit) != 0)
                    continue;
                const std::string& name =
                    ti.table->def().columns[cand.c].name;
                if (!ti.table->has_ordered_index(name)) continue;
                range = &cand;
                break;
            }
        }
    }

    double matches = rows * ti.local_sel * join_sel;
    ev.out = card_in * matches;
    if (probe != nullptr) {
        const auto& coldef = ti.table->def().columns[probe->c];
        ev.detail = coldef.name;
        if (ti.table->has_index(coldef.name) || coldef.primary_key) {
            ev.path = AccessPath::kProbe;
            ev.cost = card_in * (1.0 + matches);
        } else {
            ev.path = AccessPath::kHashProbe;
            ev.cost = rows + card_in * (1.0 + matches);
        }
    } else if (range != nullptr) {
        ev.path = AccessPath::kRange;
        ev.detail = ti.table->def().columns[range->c].name;
        ev.cost = card_in * (lg(rows) + 1.0 + matches);
    } else {
        ev.path = AccessPath::kNestedLoop;
        ev.cost = card_in * (rows < 1.0 ? 1.0 : rows);
    }
    return ev;
}

struct PathState {
    double cost = kInf;
    double card = 0;
    std::vector<int> order;
    std::vector<StepEval> steps;
};

PathState extend(const PathState& s, const std::vector<TableInfo>& tables,
                 const std::vector<Conjunct>& joins, std::uint64_t mask,
                 int t) {
    PathState next = s;
    StepEval ev = eval_step(tables, joins, mask, t, s.card);
    next.cost = (s.cost >= kInf ? 0 : s.cost) + ev.cost;
    next.card = ev.out;
    next.order.push_back(t);
    next.steps.push_back(std::move(ev));
    return next;
}

/// Move every ON conjunct into WHERE and rewrite FROM/JOIN into `order`.
/// All joins in this dialect are inner, so the merge and the reorder are
/// result-preserving; the executor re-derives stage access paths (and
/// residual pushdown) from the conjunct pool for the new order.
void apply_order(SelectStmt& stmt, const std::vector<int>& order) {
    std::vector<TableRef> refs;
    refs.push_back(stmt.from);
    for (auto& j : stmt.joins) refs.push_back(j.table);

    std::vector<ExprPtr> parts;
    if (stmt.where) parts.push_back(std::move(stmt.where));
    for (auto& j : stmt.joins)
        if (j.on) parts.push_back(std::move(j.on));
    ExprPtr where;
    for (auto& p : parts) {
        where = where ? make_binary(BinaryOp::kAnd, std::move(where),
                                    std::move(p))
                      : std::move(p);
    }

    stmt.from = refs[static_cast<std::size_t>(order[0])];
    std::vector<JoinClause> joins;
    joins.reserve(order.size() - 1);
    for (std::size_t i = 1; i < order.size(); ++i) {
        JoinClause j;
        j.table = refs[static_cast<std::size_t>(order[i])];
        joins.push_back(std::move(j));
    }
    stmt.joins = std::move(joins);
    stmt.where = std::move(where);
}

}  // namespace

std::string_view to_string(AccessPath p) {
    switch (p) {
        case AccessPath::kScan: return "scan";
        case AccessPath::kIndexEq: return "index_eq";
        case AccessPath::kRange: return "range";
        case AccessPath::kProbe: return "probe";
        case AccessPath::kHashProbe: return "hash";
        case AccessPath::kNestedLoop: return "nested_loop";
    }
    return "?";
}

std::string PlanInfo::shape() const {
    std::string out;
    for (const auto& s : stages) {
        if (!out.empty()) out += ' ';
        out += xr::sql::to_string(s.path);
        out += '(';
        out += s.alias;
        if (!s.detail.empty()) {
            out += '.';
            out += s.detail;
        }
        out += ')';
    }
    return out;
}

std::string PlanInfo::to_string() const {
    std::ostringstream out;
    out << std::setprecision(4);
    out << "plan: cost=" << total_cost << " est_rows=" << est_rows
        << " stats_epoch=" << stats_epoch;
    if (reordered) out << " (reordered)";
    if (!planned) out << " (as written; not planned)";
    for (const auto& s : stages) {
        out << "\n  " << s.alias << " [" << s.table << "] "
            << xr::sql::to_string(s.path);
        if (!s.detail.empty()) out << " on " << s.detail;
        out << "  est_rows=" << s.est_rows << " cost=" << s.est_cost;
    }
    return out.str();
}

PlanInfo plan_select(const rdb::ReadView& db, SelectStmt& stmt,
                     const PlannerOptions& options) {
    PlanInfo info;
    info.stats_epoch = db.stats_epoch();

    std::vector<TableInfo> tables;
    auto add = [&](const TableRef& ref) {
        const Table* t = db.table(ref.table);
        if (t == nullptr) return false;
        TableInfo ti;
        ti.ref = ref;
        ti.table = t;
        ti.rows = static_cast<double>(t->row_count());
        tables.push_back(std::move(ti));
        return true;
    };
    if (!add(stmt.from)) return info;
    for (auto& j : stmt.joins)
        if (!add(j.table)) return info;
    std::size_t n = tables.size();
    if (n == 0 || n > 63) return info;

    bool has_star = false;
    for (const auto& item : stmt.items)
        if (item.star) has_star = true;

    Resolver resolver(tables);
    for (auto& j : stmt.joins)
        if (j.on && !resolver.bind(*j.on)) return info;
    if (stmt.where && !resolver.bind(*stmt.where)) return info;

    // Split the predicate pool into conjuncts, the order the executor
    // sees them in (ON clauses in join order, then WHERE).
    std::vector<const Expr*> leaves;
    std::function<void(const Expr*)> walk = [&](const Expr* e) {
        if (e->kind == Expr::Kind::kBinary && e->op == BinaryOp::kAnd) {
            walk(e->left.get());
            walk(e->right.get());
            return;
        }
        leaves.push_back(e);
    };
    for (const auto& j : stmt.joins)
        if (j.on) walk(j.on.get());
    if (stmt.where) walk(stmt.where.get());

    std::vector<Conjunct> joins;  // multi-table conjuncts only
    for (const Expr* e : leaves) {
        std::uint64_t refs = expr_tables(*e);
        int popcount = 0;
        for (std::uint64_t m = refs; m != 0; m &= m - 1) ++popcount;
        if (popcount <= 1) {
            if (popcount == 1) {
                int t = 0;
                while ((refs & (std::uint64_t{1} << t)) == 0) ++t;
                tables[t].local_sel = clamp_sel(
                    tables[t].local_sel * estimate_sel(*e, tables[t]));
                note_driving_hints(tables[t], *e);
            }
            continue;  // table-free conjuncts don't affect ordering
        }
        Conjunct cj;
        cj.expr = e;
        cj.tables = refs;
        if (e->kind == Expr::Kind::kBinary) {
            auto cand_sides = [&](const Expr* a, const Expr* b, bool left) {
                if (a->kind != Expr::Kind::kColumn) return;
                std::uint64_t others = expr_tables(*b);
                if (e->op == BinaryOp::kEq) {
                    cj.eq.push_back({a->bound_table, a->bound_column, others});
                } else if (e->op == BinaryOp::kLt || e->op == BinaryOp::kLe ||
                           e->op == BinaryOp::kGt || e->op == BinaryOp::kGe) {
                    bool greater =
                        e->op == BinaryOp::kGt || e->op == BinaryOp::kGe;
                    if (!left) greater = !greater;
                    cj.range.push_back(
                        {a->bound_table, a->bound_column, others, greater});
                }
            };
            cand_sides(e->left.get(), e->right.get(), true);
            cand_sides(e->right.get(), e->left.get(), false);
            if (e->op == BinaryOp::kEq) {
                // 1/max(ndv) over the bare-column sides; both unknown
                // falls back to a generic equi-join guess.
                double ndv = 0;
                for (const auto& cand : cj.eq)
                    ndv = std::max(ndv, col_ndv(tables[cand.t], cand.c));
                cj.sel = ndv > 0 ? 1.0 / ndv : 0.05;
            } else {
                cj.sel = 1.0 / 3.0;  // refined below for containment pairs
            }
        }
        joins.push_back(std::move(cj));
    }

    // Containment-pair refinement: a lower and an upper bound on the same
    // column of the same table, both provided by one other table (the
    // `a.pre < d.pre AND d.pre < a.post` interval join), select together
    // roughly one ancestor per bounded row — 1/rows(bounder) — instead of
    // two independent thirds.
    for (std::size_t i = 0; i < joins.size(); ++i) {
        for (const auto& ci : joins[i].range) {
            if (!ci.lower) continue;
            for (std::size_t j = 0; j < joins.size(); ++j) {
                if (j == i) continue;
                for (const auto& cjr : joins[j].range) {
                    if (cjr.lower || cjr.t != ci.t || cjr.c != ci.c ||
                        cjr.others != ci.others)
                        continue;
                    int popcount = 0;
                    for (std::uint64_t m = ci.others; m != 0; m &= m - 1)
                        ++popcount;
                    if (popcount != 1) continue;
                    int other = 0;
                    while ((ci.others & (std::uint64_t{1} << other)) == 0)
                        ++other;
                    double r = tables[other].rows;
                    joins[i].sel = clamp_sel(r > 1.0 ? 1.0 / r : 1.0);
                    joins[j].sel = 1.0;
                }
            }
        }
    }

    info.planned = true;

    // As-written baseline.
    PathState base;
    base.cost = kInf;
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < n; ++i) {
        base = extend(base, tables, joins, mask, static_cast<int>(i));
        mask |= std::uint64_t{1} << i;
    }

    PathState winner = base;
    bool try_reorder = options.enable && n >= 2 && !has_star;
    if (try_reorder && n <= options.dp_table_limit) {
        // Selinger-style exhaustive left-deep DP over subsets.
        std::vector<PathState> best(std::size_t{1} << n);
        for (std::size_t t = 0; t < n; ++t)
            best[std::size_t{1} << t] = extend(PathState{}, tables, joins, 0,
                                               static_cast<int>(t));
        for (std::uint64_t m = 1; m < (std::uint64_t{1} << n); ++m) {
            if (best[m].cost >= kInf) continue;
            for (std::size_t t = 0; t < n; ++t) {
                std::uint64_t bit = std::uint64_t{1} << t;
                if ((m & bit) != 0) continue;
                PathState cand =
                    extend(best[m], tables, joins, m, static_cast<int>(t));
                PathState& slot = best[m | bit];
                if (cand.cost < slot.cost) slot = std::move(cand);
            }
        }
        PathState& full = best[(std::uint64_t{1} << n) - 1];
        if (full.cost < winner.cost * 0.99) winner = std::move(full);
    } else if (try_reorder) {
        // Greedy: cheapest driving table, then min-cost-increment.
        PathState g;
        std::uint64_t placed = 0;
        for (std::size_t step = 0; step < n; ++step) {
            PathState pick;
            for (std::size_t t = 0; t < n; ++t) {
                std::uint64_t bit = std::uint64_t{1} << t;
                if ((placed & bit) != 0) continue;
                PathState cand =
                    extend(g, tables, joins, placed, static_cast<int>(t));
                if (cand.cost < pick.cost ||
                    (cand.cost == pick.cost && cand.card < pick.card))
                    pick = std::move(cand);
            }
            placed |= std::uint64_t{1} << pick.order.back();
            g = std::move(pick);
        }
        if (g.cost < winner.cost * 0.99) winner = std::move(g);
    }

    std::vector<int> identity(n);
    for (std::size_t i = 0; i < n; ++i) identity[i] = static_cast<int>(i);
    info.reordered = winner.order != identity;
    info.total_cost = winner.cost;
    info.est_rows = winner.card;
    info.stages.reserve(n);
    for (std::size_t i = 0; i < winner.order.size(); ++i) {
        const TableInfo& ti = tables[static_cast<std::size_t>(winner.order[i])];
        const StepEval& ev = winner.steps[i];
        info.stages.push_back({ti.ref.effective_alias(), ti.ref.table, ev.path,
                               ev.detail, ev.out, ev.cost});
    }

    if (info.reordered) apply_order(stmt, winner.order);
    return info;
}

}  // namespace xr::sql
