#include "sql/executor.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/fault.hpp"
#include "common/table_printer.hpp"
#include "sql/parser.hpp"

namespace xr::sql {

namespace {

using rdb::Row;
using rdb::RowId;
using rdb::Table;
using rdb::Value;

bool truthy(const Value& v) {
    if (v.is_null()) return false;
    switch (v.type()) {
        case rdb::ValueType::kInteger: return v.as_integer() != 0;
        case rdb::ValueType::kReal: return v.as_real() != 0.0;
        case rdb::ValueType::kText: return !v.as_text().empty();
        default: return false;
    }
}

/// SQL LIKE with % and _ wildcards.
bool like_match(const std::string& text, const std::string& pattern) {
    std::function<bool(std::size_t, std::size_t)> rec =
        [&](std::size_t ti, std::size_t pi) -> bool {
        while (pi < pattern.size()) {
            char pc = pattern[pi];
            if (pc == '%') {
                // Collapse consecutive %.
                while (pi < pattern.size() && pattern[pi] == '%') ++pi;
                if (pi == pattern.size()) return true;
                for (std::size_t t = ti; t <= text.size(); ++t)
                    if (rec(t, pi)) return true;
                return false;
            }
            if (ti >= text.size()) return false;
            if (pc != '_' && pc != text[ti]) return false;
            ++ti;
            ++pi;
        }
        return ti == text.size();
    };
    return rec(0, 0);
}

struct BoundTable {
    std::string alias;
    const Table* table = nullptr;
};

/// Resolves column references against the FROM/JOIN tables.
class Binder {
public:
    explicit Binder(std::vector<BoundTable> tables) : tables_(std::move(tables)) {}

    [[nodiscard]] const std::vector<BoundTable>& tables() const { return tables_; }

    void bind(Expr& e) const {
        switch (e.kind) {
            case Expr::Kind::kColumn: {
                resolve_column(e);
                return;
            }
            case Expr::Kind::kBinary:
                bind(*e.left);
                bind(*e.right);
                return;
            case Expr::Kind::kNot:
            case Expr::Kind::kIsNull:
                bind(*e.right);
                return;
            case Expr::Kind::kAggregate:
                if (e.right->kind != Expr::Kind::kStar) bind(*e.right);
                return;
            case Expr::Kind::kLiteral:
            case Expr::Kind::kStar:
                return;
        }
    }

private:
    std::vector<BoundTable> tables_;

    void resolve_column(Expr& e) const {
        if (!e.table.empty()) {
            for (std::size_t t = 0; t < tables_.size(); ++t) {
                if (tables_[t].alias != e.table) continue;
                int c = tables_[t].table->def().column_index(e.column);
                if (c < 0)
                    throw QueryError("no column '" + e.column + "' in '" +
                                     e.table + "'");
                e.bound_table = static_cast<int>(t);
                e.bound_column = c;
                return;
            }
            throw QueryError("unknown table alias '" + e.table + "'");
        }
        int found_t = -1, found_c = -1;
        for (std::size_t t = 0; t < tables_.size(); ++t) {
            int c = tables_[t].table->def().column_index(e.column);
            if (c < 0) continue;
            if (found_t >= 0)
                throw QueryError("ambiguous column '" + e.column + "'");
            found_t = static_cast<int>(t);
            found_c = c;
        }
        if (found_t < 0) throw QueryError("unknown column '" + e.column + "'");
        e.bound_table = found_t;
        e.bound_column = found_c;
    }
};

/// Evaluates a bound expression against one joined row context.
class Evaluator {
public:
    Evaluator(const std::vector<BoundTable>& tables) : tables_(tables) {}

    Value eval(const Expr& e, const std::vector<RowId>& ctx) const {
        switch (e.kind) {
            case Expr::Kind::kLiteral:
                return e.literal;
            case Expr::Kind::kColumn:
                return tables_[e.bound_table].table->row(
                    ctx[e.bound_table])[e.bound_column];
            case Expr::Kind::kNot:
                return Value(static_cast<std::int64_t>(!truthy(eval(*e.right, ctx))));
            case Expr::Kind::kIsNull: {
                bool is_null = eval(*e.right, ctx).is_null();
                return Value(static_cast<std::int64_t>(e.negated ? !is_null
                                                                 : is_null));
            }
            case Expr::Kind::kBinary:
                return eval_binary(e, ctx);
            case Expr::Kind::kAggregate:
                throw QueryError("aggregate used outside aggregation context");
            case Expr::Kind::kStar:
                throw QueryError("'*' used outside COUNT(*)");
        }
        return Value::null();
    }

private:
    const std::vector<BoundTable>& tables_;

    Value eval_binary(const Expr& e, const std::vector<RowId>& ctx) const {
        // Short-circuit logic.
        if (e.op == BinaryOp::kAnd) {
            if (!truthy(eval(*e.left, ctx))) return Value(0);
            return Value(static_cast<std::int64_t>(truthy(eval(*e.right, ctx))));
        }
        if (e.op == BinaryOp::kOr) {
            if (truthy(eval(*e.left, ctx))) return Value(1);
            return Value(static_cast<std::int64_t>(truthy(eval(*e.right, ctx))));
        }

        Value a = eval(*e.left, ctx);
        Value b = eval(*e.right, ctx);
        switch (e.op) {
            case BinaryOp::kEq:
            case BinaryOp::kNe:
            case BinaryOp::kLt:
            case BinaryOp::kLe:
            case BinaryOp::kGt:
            case BinaryOp::kGe: {
                auto ord = a.compare(b);
                if (!ord) return Value::null();
                bool r = false;
                switch (e.op) {
                    case BinaryOp::kEq: r = *ord == std::strong_ordering::equal; break;
                    case BinaryOp::kNe: r = *ord != std::strong_ordering::equal; break;
                    case BinaryOp::kLt: r = *ord == std::strong_ordering::less; break;
                    case BinaryOp::kLe: r = *ord != std::strong_ordering::greater; break;
                    case BinaryOp::kGt: r = *ord == std::strong_ordering::greater; break;
                    default: r = *ord != std::strong_ordering::less; break;
                }
                return Value(static_cast<std::int64_t>(r));
            }
            case BinaryOp::kLike: {
                if (a.is_null() || b.is_null()) return Value::null();
                return Value(static_cast<std::int64_t>(
                    like_match(a.as_text(), b.as_text())));
            }
            case BinaryOp::kAdd:
            case BinaryOp::kSub:
            case BinaryOp::kMul:
            case BinaryOp::kDiv:
            case BinaryOp::kMod: {
                if (a.is_null() || b.is_null()) return Value::null();
                bool ints = a.type() == rdb::ValueType::kInteger &&
                            b.type() == rdb::ValueType::kInteger;
                if (ints) {
                    std::int64_t x = a.as_integer(), y = b.as_integer();
                    switch (e.op) {
                        case BinaryOp::kAdd: return Value(x + y);
                        case BinaryOp::kSub: return Value(x - y);
                        case BinaryOp::kMul: return Value(x * y);
                        case BinaryOp::kDiv:
                            if (y == 0) return Value::null();
                            return Value(x / y);
                        default:
                            if (y == 0) return Value::null();
                            return Value(x % y);
                    }
                }
                double x = a.as_real(), y = b.as_real();
                switch (e.op) {
                    case BinaryOp::kAdd: return Value(x + y);
                    case BinaryOp::kSub: return Value(x - y);
                    case BinaryOp::kMul: return Value(x * y);
                    case BinaryOp::kDiv:
                        if (y == 0) return Value::null();
                        return Value(x / y);
                    default:
                        return Value::null();
                }
            }
            default:
                return Value::null();
        }
    }
};

/// Highest table index referenced by an expression (-1 if none).
int max_table(const Expr& e) {
    switch (e.kind) {
        case Expr::Kind::kColumn: return e.bound_table;
        case Expr::Kind::kBinary:
            return std::max(max_table(*e.left), max_table(*e.right));
        case Expr::Kind::kNot:
        case Expr::Kind::kIsNull:
            return max_table(*e.right);
        case Expr::Kind::kAggregate:
            return e.right->kind == Expr::Kind::kStar ? -1 : max_table(*e.right);
        default:
            return -1;
    }
}

bool contains_aggregate(const Expr& e) {
    switch (e.kind) {
        case Expr::Kind::kAggregate: return true;
        case Expr::Kind::kBinary:
            return contains_aggregate(*e.left) || contains_aggregate(*e.right);
        case Expr::Kind::kNot:
        case Expr::Kind::kIsNull:
            return contains_aggregate(*e.right);
        default:
            return false;
    }
}

/// One stage of the left-deep join pipeline.
struct Stage {
    int table = 0;
    // Equi-join access: probe `outer` (bound to earlier tables) against
    // `inner_column` of this stage's table (via index or ad-hoc hash).
    const Expr* probe_outer = nullptr;
    int inner_column = -1;
    bool use_index = false;
    std::unordered_multimap<Value, RowId, rdb::ValueHash> hash;
    // Literal equality for the driving table (index scan).
    const Expr* driving_eq_literal = nullptr;
    int driving_column = -1;
    bool driving_index = false;
    // Structural (interval) join: range bounds on one ordered-indexed
    // column of this stage's table, the bound expressions referencing only
    // earlier tables.  Evaluated per outer context and answered by binary
    // search — how a.pre < d.pre AND d.pre < a.post containment runs.
    int range_column = -1;
    const Expr* range_lo = nullptr;
    bool range_lo_strict = false;
    const Expr* range_hi = nullptr;
    bool range_hi_strict = false;
    std::vector<const Expr*> residual;  ///< filters applied at this stage
};

/// Row hashing/equality over Values for DISTINCT (NULLs compare equal,
/// numerics compare numerically — the index_order convention).
struct RowHasher {
    std::size_t operator()(const Row& row) const {
        std::size_t h = 0x9e3779b97f4a7c15ULL;
        for (const auto& v : row) h = (h * 1099511628211ULL) ^ v.hash();
        return h;
    }
};
struct RowEqual {
    bool operator()(const Row& a, const Row& b) const {
        if (a.size() != b.size()) return false;
        for (std::size_t i = 0; i < a.size(); ++i)
            if (a[i].index_order(b[i]) != std::strong_ordering::equal)
                return false;
        return true;
    }
};

/// Approximate heap footprint of one output row, for byte budgets.
std::size_t approx_row_bytes(const Row& row) {
    std::size_t bytes = sizeof(Row) + row.size() * sizeof(Value);
    for (const auto& v : row)
        if (v.type() == rdb::ValueType::kText) bytes += v.as_text().size();
    return bytes;
}

class SelectExecutor {
public:
    SelectExecutor(rdb::ReadView db, SelectStmt& stmt, ExecStats* stats,
                   const CancelToken& cancel)
        : db_(db), stmt_(stmt), stats_(stats), cancel_(cancel) {}

    ResultSet run() {
        bind_tables();
        Binder binder(tables_);
        Evaluator eval(binder.tables());

        // Bind every expression.
        for (auto& item : stmt_.items)
            if (!item.star) binder.bind(*item.expr);
        for (auto& join : stmt_.joins)
            if (join.on) binder.bind(*join.on);
        if (stmt_.where) binder.bind(*stmt_.where);
        for (auto& g : stmt_.group_by) binder.bind(*g);
        if (stmt_.having) binder.bind(*stmt_.having);
        // ORDER BY may reference a select alias or a 1-based position; those
        // resolve against the output row, not a table column.
        order_output_idx_.assign(stmt_.order_by.size(), -1);
        for (std::size_t k = 0; k < stmt_.order_by.size(); ++k) {
            auto& o = stmt_.order_by[k];
            if (o.expr->kind == Expr::Kind::kLiteral &&
                o.expr->literal.type() == rdb::ValueType::kInteger) {
                order_output_idx_[k] =
                    static_cast<int>(o.expr->literal.as_integer()) - 1;
                continue;
            }
            if (o.expr->kind == Expr::Kind::kColumn && o.expr->table.empty()) {
                int out_idx = 0;
                bool matched = false;
                for (const auto& item : stmt_.items) {
                    if (!item.star && item.alias == o.expr->column) {
                        order_output_idx_[k] = out_idx;
                        matched = true;
                        break;
                    }
                    ++out_idx;
                }
                if (matched) continue;
            }
            binder.bind(*o.expr);
        }

        build_stages();

        // Aggregation?
        bool aggregate = !stmt_.group_by.empty();
        for (const auto& item : stmt_.items)
            if (!item.star && contains_aggregate(*item.expr)) aggregate = true;
        if (stmt_.having && contains_aggregate(*stmt_.having)) aggregate = true;

        ResultSet result;
        expand_columns(result);

        // A bare COUNT(*) over one unfiltered table needs no row
        // enumeration at all — the table knows its cardinality.  This is
        // the cold path of a structural count(//x), which translates to
        // exactly 'SELECT COUNT(*) FROM x'.
        if (aggregate && bare_count_star()) {
            result.rows.push_back(Row{rdb::Value(
                static_cast<std::int64_t>(tables_[0].table->row_count()))});
            if (stats_ != nullptr) stats_->add(local_);
            return result;
        }

        if (aggregate || !stmt_.order_by.empty()) {
            // Aggregation and sorting need every row context at once; each
            // buffered context counts against the row budget — this
            // intermediate buffer is exactly the memory a budget guards.
            std::vector<std::vector<RowId>> contexts;
            enumerate([&](const std::vector<RowId>& ctx) {
                cancel_.charge_rows();
                contexts.push_back(ctx);
            });
            if (aggregate) run_aggregate(eval, contexts, result);
            else run_plain(eval, contexts, result);
        } else {
            // Plain unsorted selects project straight out of the join
            // enumeration — no materialized context list, no second pass.
            // This keeps the cold path of a bare structural scan (a
            // join-free '//x' interval plan) at one row copy per result.
            enumerate([&](const std::vector<RowId>& ctx) {
                Row out;
                out.reserve(stmt_.items.size());
                for (const auto& item : stmt_.items) {
                    if (item.star) {
                        for (std::size_t t = 0; t < tables_.size(); ++t) {
                            const Row& r = tables_[t].table->row(ctx[t]);
                            out.insert(out.end(), r.begin(), r.end());
                        }
                    } else {
                        out.push_back(eval.eval(*item.expr, ctx));
                    }
                }
                charge_output(out);
                result.rows.push_back(std::move(out));
            });
        }

        if (stmt_.distinct) {
            // Hash directly on the Values (Value::hash is consistent with
            // index_order equality) — no per-cell string rendering, which
            // dominated DISTINCT-heavy translated queries.
            std::unordered_set<Row, RowHasher, RowEqual> seen;
            seen.reserve(result.rows.size());
            std::vector<Row> unique;
            for (auto& row : result.rows) {
                poll_cancel();
                if (seen.insert(row).second) unique.push_back(std::move(row));
            }
            result.rows = std::move(unique);
        }

        if (stmt_.limit && result.rows.size() > *stmt_.limit)
            result.rows.resize(*stmt_.limit);

        // Publish counters only now that the execution finished: callers
        // sharing one ExecStats across threads see whole-query totals.
        if (stats_ != nullptr) stats_->add(local_);
        return result;
    }

private:
    rdb::ReadView db_;
    SelectStmt& stmt_;
    ExecStats* stats_;
    const CancelToken& cancel_;
    std::size_t since_poll_ = 0;  ///< rows since the last cancellation poll
    ExecStats local_;  ///< this execution's counters; folded in at the end
    std::vector<BoundTable> tables_;
    std::vector<Stage> stages_;
    std::vector<const Expr*> final_filters_;
    std::vector<int> order_output_idx_;  ///< -1 = evaluate against the row ctx

    void count(std::atomic<std::size_t> ExecStats::*member, std::size_t n = 1) {
        (local_.*member).fetch_add(n, std::memory_order_relaxed);
    }

    /// Cancellation checkpoint (DESIGN.md §11): every kCancelPollInterval
    /// rows — whether scanned during join enumeration / range scans or
    /// visited by a final pass — the executor arms the `exec.cancel_poll`
    /// fault point and polls the token.  A fired deadline / cancel unwinds
    /// as the matching CancelledError with no state to clean up (SELECTs
    /// have no side effects; the local stats fold simply never happens).
    void poll_cancel() {
        if (++since_poll_ < kCancelPollInterval) return;
        since_poll_ = 0;
        count(&ExecStats::cancel_polls);
        fault::maybe_fail("exec.cancel_poll");
        cancel_.check();
    }

    /// Budget accounting for one materialized output row.
    void charge_output(const Row& row) {
        if (!cancel_.active()) return;
        cancel_.charge_rows();
        cancel_.charge_bytes(approx_row_bytes(row));
    }

    /// 'SELECT COUNT(*) FROM t' with no filter, grouping or sort — the
    /// answer is the table's row count.
    [[nodiscard]] bool bare_count_star() const {
        if (stages_.size() != 1 || stmt_.where != nullptr ||
            !stmt_.group_by.empty() || stmt_.having != nullptr ||
            stmt_.distinct || !stmt_.order_by.empty() ||
            stmt_.items.size() != 1)
            return false;
        const Stage& s = stages_[0];
        if (!s.residual.empty() || s.driving_eq_literal != nullptr)
            return false;
        const auto& item = stmt_.items[0];
        if (item.star) return false;
        const Expr& e = *item.expr;
        return e.kind == Expr::Kind::kAggregate &&
               e.fn == AggregateFn::kCount && !e.distinct &&
               e.right != nullptr && e.right->kind == Expr::Kind::kStar;
    }

    void bind_tables() {
        auto add = [&](const TableRef& ref) {
            const Table* t = db_.table(ref.table);
            if (t == nullptr)
                throw QueryError("unknown table '" + ref.table + "'");
            tables_.push_back({ref.effective_alias(), t});
        };
        add(stmt_.from);
        for (const auto& join : stmt_.joins) add(join.table);
    }

    void build_stages() {
        // Gather conjuncts of all ON clauses and WHERE, each annotated with
        // the latest stage it can run at.
        std::vector<const Expr*> conjuncts;
        std::vector<std::vector<ExprPtr>> storage;  // keep ownership
        auto split = [&](const ExprPtr& e) {
            if (!e) return;
            std::vector<ExprPtr> parts;
            // We cannot move from the statement (const); walk instead.
            std::function<void(const Expr*)> walk = [&](const Expr* node) {
                if (node->kind == Expr::Kind::kBinary &&
                    node->op == BinaryOp::kAnd) {
                    walk(node->left.get());
                    walk(node->right.get());
                    return;
                }
                conjuncts.push_back(node);
            };
            walk(e.get());
        };
        for (const auto& join : stmt_.joins) split(join.on);
        split(stmt_.where);
        (void)storage;

        stages_.resize(tables_.size());
        for (std::size_t i = 0; i < tables_.size(); ++i)
            stages_[i].table = static_cast<int>(i);

        std::vector<bool> used(conjuncts.size(), false);

        // Pick equi-join drivers for stages 1..n-1.
        for (std::size_t s = 1; s < stages_.size(); ++s) {
            for (std::size_t c = 0; c < conjuncts.size(); ++c) {
                if (used[c]) continue;
                const Expr* e = conjuncts[c];
                if (e->kind != Expr::Kind::kBinary || e->op != BinaryOp::kEq)
                    continue;
                const Expr *inner = nullptr, *outer = nullptr;
                auto classify = [&](const Expr* side, const Expr* other) {
                    if (side->kind == Expr::Kind::kColumn &&
                        side->bound_table == static_cast<int>(s) &&
                        max_table(*other) < static_cast<int>(s) &&
                        max_table(*other) >= -1) {
                        inner = side;
                        outer = other;
                    }
                };
                classify(e->left.get(), e->right.get());
                if (inner == nullptr) classify(e->right.get(), e->left.get());
                if (inner == nullptr) continue;
                stages_[s].probe_outer = outer;
                stages_[s].inner_column = inner->bound_column;
                used[c] = true;
                break;
            }
        }

        // Driving-table literal equality: consumed only when the column is
        // actually indexed — otherwise the conjunct must stay a residual
        // filter.  Chosen before range bounds so a literal-bounded range
        // scan of the driving table only kicks in without an equality.
        for (std::size_t c = 0; c < conjuncts.size(); ++c) {
            if (used[c]) continue;
            const Expr* e = conjuncts[c];
            if (e->kind != Expr::Kind::kBinary || e->op != BinaryOp::kEq) continue;
            auto try_side = [&](const Expr* col, const Expr* lit) {
                if (col->kind != Expr::Kind::kColumn || col->bound_table != 0 ||
                    lit->kind != Expr::Kind::kLiteral ||
                    stages_[0].driving_eq_literal != nullptr)
                    return false;
                const std::string& name =
                    tables_[0].table->def().columns[col->bound_column].name;
                if (!tables_[0].table->has_index(name)) return false;
                stages_[0].driving_eq_literal = lit;
                stages_[0].driving_column = col->bound_column;
                return true;
            };
            if (try_side(e->left.get(), e->right.get()) ||
                try_side(e->right.get(), e->left.get()))
                used[c] = true;
        }

        // Range probes for stages that found no equi-join driver: inequality
        // conjuncts bounding one ordered-indexed column of the stage's table
        // by expressions over earlier tables become a binary-searched range
        // scan instead of a nested loop.  At most one lower and one upper
        // bound, both on the same column; any further conjunct stays a
        // residual filter.  Stage 0 qualifies too (max_table < 0 means the
        // bounds are table-free): literal bounds on an ordered-indexed
        // column turn the driving full scan into a binary-searched range.
        for (std::size_t s = 0; s < stages_.size(); ++s) {
            Stage& st = stages_[s];
            if (st.probe_outer != nullptr) continue;
            if (s == 0 && st.driving_eq_literal != nullptr) continue;
            for (std::size_t c = 0; c < conjuncts.size(); ++c) {
                if (used[c]) continue;
                const Expr* e = conjuncts[c];
                if (e->kind != Expr::Kind::kBinary) continue;
                if (e->op != BinaryOp::kLt && e->op != BinaryOp::kLe &&
                    e->op != BinaryOp::kGt && e->op != BinaryOp::kGe)
                    continue;
                // Normalize to: column-of-stage-s OP outer-expr.
                const Expr *col = nullptr, *bound = nullptr;
                bool col_on_left = false;
                auto classify = [&](const Expr* side, const Expr* other,
                                    bool left) {
                    if (col == nullptr && side->kind == Expr::Kind::kColumn &&
                        side->bound_table == static_cast<int>(s) &&
                        max_table(*other) < static_cast<int>(s)) {
                        col = side;
                        bound = other;
                        col_on_left = left;
                    }
                };
                classify(e->left.get(), e->right.get(), true);
                classify(e->right.get(), e->left.get(), false);
                if (col == nullptr) continue;
                if (st.range_column >= 0 && st.range_column != col->bound_column)
                    continue;
                const std::string& name =
                    tables_[s].table->def().columns[col->bound_column].name;
                if (!tables_[s].table->has_ordered_index(name)) continue;
                // `col OP bound` with col on the right flips the direction.
                bool greater = e->op == BinaryOp::kGt || e->op == BinaryOp::kGe;
                if (!col_on_left) greater = !greater;
                bool strict = e->op == BinaryOp::kGt || e->op == BinaryOp::kLt;
                if (greater) {
                    if (st.range_lo != nullptr) continue;
                    st.range_lo = bound;
                    st.range_lo_strict = strict;
                } else {
                    if (st.range_hi != nullptr) continue;
                    st.range_hi = bound;
                    st.range_hi_strict = strict;
                }
                st.range_column = col->bound_column;
                used[c] = true;
            }
        }

        // Everything else becomes a residual at the earliest possible stage.
        for (std::size_t c = 0; c < conjuncts.size(); ++c) {
            if (used[c]) continue;
            int stage = std::max(0, max_table(*conjuncts[c]));
            stages_[stage].residual.push_back(conjuncts[c]);
        }

        // Prepare access paths.
        Stage& first = stages_[0];
        if (first.driving_eq_literal != nullptr) {
            const std::string& col =
                tables_[0].table->def().columns[first.driving_column].name;
            first.driving_index = tables_[0].table->has_index(col);
        }
        for (std::size_t s = 1; s < stages_.size(); ++s) {
            Stage& st = stages_[s];
            if (st.probe_outer == nullptr) continue;
            const Table* t = tables_[s].table;
            const std::string& col = t->def().columns[st.inner_column].name;
            // Prefer the table's own index over an ad-hoc hash; the pk
            // column's lookup structure counts as an index.
            if (t->has_index(col) ||
                t->def().columns[st.inner_column].primary_key) {
                st.use_index = true;
            } else {
                for (RowId id = 0; id < t->row_count(); ++id)
                    st.hash.emplace(t->row(id)[st.inner_column], id);
                count(&ExecStats::hash_joins);
            }
        }
    }

    void enumerate(const std::function<void(const std::vector<RowId>&)>& emit) {
        Evaluator eval(tables_);
        std::vector<RowId> ctx(tables_.size());

        std::function<void(std::size_t)> descend = [&](std::size_t s) {
            Stage& stage = stages_[s];
            const Table* t = tables_[s].table;

            auto accept = [&](RowId id) {
                ctx[s] = id;
                count(&ExecStats::rows_scanned);
                poll_cancel();
                for (const Expr* r : stage.residual)
                    if (!truthy(eval.eval(*r, ctx))) return;
                if (s + 1 == stages_.size()) emit(ctx);
                else descend(s + 1);
            };

            if (s == 0 && stage.driving_eq_literal != nullptr &&
                stage.driving_index) {
                const std::string& col =
                    t->def().columns[stage.driving_column].name;
                count(&ExecStats::index_lookups);
                for (RowId id :
                     t->index_lookup(col, stage.driving_eq_literal->literal))
                    accept(id);
                return;
            }

            if (stage.probe_outer != nullptr) {
                Value key = eval.eval(*stage.probe_outer, ctx);
                if (key.is_null()) return;
                if (stage.use_index) {
                    const auto& coldef = t->def().columns[stage.inner_column];
                    count(&ExecStats::index_lookups);
                    if (coldef.primary_key && !t->has_index(coldef.name)) {
                        if (auto id = t->find_pk_rowid(key.as_integer()))
                            accept(*id);
                    } else {
                        for (RowId id : t->index_lookup(coldef.name, key))
                            accept(id);
                    }
                } else {
                    auto range = stage.hash.equal_range(key);
                    for (auto it = range.first; it != range.second; ++it)
                        accept(it->second);
                }
                return;
            }

            if (stage.range_column >= 0) {
                // Stage 0 reaches here too: literal bounds evaluate against
                // the (empty) outer context and binary-search the driving
                // table's ordered index instead of scanning it.
                const std::string& col =
                    t->def().columns[stage.range_column].name;
                Value lo, hi;
                const Value *lop = nullptr, *hip = nullptr;
                if (stage.range_lo != nullptr) {
                    lo = eval.eval(*stage.range_lo, ctx);
                    if (lo.is_null()) return;  // unknown bound: no matches
                    lop = &lo;
                }
                if (stage.range_hi != nullptr) {
                    hi = eval.eval(*stage.range_hi, ctx);
                    if (hi.is_null()) return;
                    hip = &hi;
                }
                count(&ExecStats::range_scans);
                for (RowId id :
                     t->index_range_lookup(col, lop, stage.range_lo_strict,
                                           hip, stage.range_hi_strict))
                    accept(id);
                return;
            }

            if (s > 0) count(&ExecStats::nested_loop_joins);
            for (RowId id = 0; id < t->row_count(); ++id) accept(id);
        };

        if (tables_.empty()) return;
        descend(0);
    }

    void expand_columns(ResultSet& result) const {
        for (const auto& item : stmt_.items) {
            if (item.star) {
                for (const auto& bt : tables_)
                    for (const auto& c : bt.table->def().columns)
                        result.columns.push_back(bt.alias + "." + c.name);
            } else {
                result.columns.push_back(item.alias.empty()
                                             ? item.expr->to_string()
                                             : item.alias);
            }
        }
    }

    void run_plain(const Evaluator& eval,
                   const std::vector<std::vector<RowId>>& contexts,
                   ResultSet& result) {
        for (const auto& ctx : contexts) {
            poll_cancel();
            Row out;
            for (const auto& item : stmt_.items) {
                if (item.star) {
                    for (std::size_t t = 0; t < tables_.size(); ++t) {
                        const Row& r = tables_[t].table->row(ctx[t]);
                        out.insert(out.end(), r.begin(), r.end());
                    }
                } else {
                    out.push_back(eval.eval(*item.expr, ctx));
                }
            }
            charge_output(out);
            result.rows.push_back(std::move(out));
        }
        sort_rows(eval, contexts, result);
    }

    void sort_rows(const Evaluator& eval,
                   const std::vector<std::vector<RowId>>& contexts,
                   ResultSet& result) {
        if (stmt_.order_by.empty()) return;
        // Evaluate sort keys per row, then sort row/key pairs together.
        struct Keyed {
            Row row;
            std::vector<Value> keys;
        };
        std::vector<Keyed> keyed;
        keyed.reserve(result.rows.size());
        for (std::size_t i = 0; i < result.rows.size(); ++i) {
            poll_cancel();
            Keyed k;
            k.row = std::move(result.rows[i]);
            for (std::size_t j = 0; j < stmt_.order_by.size(); ++j) {
                int out = order_output_idx_[j];
                if (out >= 0 && out < static_cast<int>(k.row.size()))
                    k.keys.push_back(k.row[out]);
                else if (i < contexts.size())
                    k.keys.push_back(eval.eval(*stmt_.order_by[j].expr, contexts[i]));
                else
                    k.keys.push_back(Value::null());
            }
            keyed.push_back(std::move(k));
        }
        std::stable_sort(keyed.begin(), keyed.end(),
                         [&](const Keyed& a, const Keyed& b) {
                             for (std::size_t k = 0; k < stmt_.order_by.size(); ++k) {
                                 auto ord = a.keys[k].index_order(b.keys[k]);
                                 if (ord == std::strong_ordering::equal) continue;
                                 bool less = ord == std::strong_ordering::less;
                                 return stmt_.order_by[k].descending ? !less : less;
                             }
                             return false;
                         });
        result.rows.clear();
        for (auto& k : keyed) result.rows.push_back(std::move(k.row));
    }

    // -- aggregation -----------------------------------------------------------

    struct Accumulator {
        std::int64_t count = 0;
        double sum = 0;
        bool sum_is_int = true;
        std::int64_t isum = 0;
        Value min, max;
        std::set<std::string> distinct_seen;
    };

    void run_aggregate(const Evaluator& eval,
                       const std::vector<std::vector<RowId>>& contexts,
                       ResultSet& result) {
        // Collect aggregate expressions across items + HAVING.
        std::vector<const Expr*> aggs;
        std::function<void(const Expr*)> find = [&](const Expr* e) {
            if (e->kind == Expr::Kind::kAggregate) {
                aggs.push_back(e);
                return;
            }
            if (e->kind == Expr::Kind::kBinary) {
                find(e->left.get());
                find(e->right.get());
            } else if (e->kind == Expr::Kind::kNot ||
                       e->kind == Expr::Kind::kIsNull) {
                find(e->right.get());
            }
        };
        for (const auto& item : stmt_.items)
            if (!item.star) find(item.expr.get());
        if (stmt_.having) find(stmt_.having.get());

        struct Group {
            std::vector<RowId> representative;
            std::vector<Accumulator> accs;
        };
        std::map<std::vector<std::string>, Group> groups;

        for (const auto& ctx : contexts) {
            poll_cancel();
            std::vector<std::string> key;
            for (const auto& g : stmt_.group_by)
                key.push_back(eval.eval(*g, ctx).to_string());
            auto [it, inserted] = groups.try_emplace(std::move(key));
            Group& group = it->second;
            if (inserted) {
                group.representative = ctx;
                group.accs.resize(aggs.size());
            }
            for (std::size_t a = 0; a < aggs.size(); ++a)
                accumulate(eval, *aggs[a], ctx, group.accs[a]);
        }
        // A global aggregate over zero rows still yields one group.
        if (groups.empty() && stmt_.group_by.empty()) {
            Group group;
            group.accs.resize(aggs.size());
            groups.emplace(std::vector<std::string>{}, std::move(group));
        }

        for (const auto& [key, group] : groups) {
            auto final_value = [&](const Expr* e) {
                for (std::size_t a = 0; a < aggs.size(); ++a)
                    if (aggs[a] == e) return finalize(*e, group.accs[a]);
                throw QueryError("unregistered aggregate");
            };
            std::function<Value(const Expr&)> eval_out =
                [&](const Expr& e) -> Value {
                if (e.kind == Expr::Kind::kAggregate) return final_value(&e);
                if (e.kind == Expr::Kind::kBinary) {
                    // Rebuild with children evaluated (aggregates possible on
                    // either side).
                    Expr tmp;
                    tmp.kind = Expr::Kind::kBinary;
                    tmp.op = e.op;
                    tmp.left = make_literal(eval_out(*e.left));
                    tmp.right = make_literal(eval_out(*e.right));
                    return eval.eval(tmp, group.representative.empty()
                                              ? std::vector<RowId>{}
                                              : group.representative);
                }
                if (group.representative.empty()) return Value::null();
                return eval.eval(e, group.representative);
            };

            if (stmt_.having && !truthy(eval_out(*stmt_.having))) continue;

            Row out;
            for (const auto& item : stmt_.items) {
                if (item.star)
                    throw QueryError("'*' cannot appear in an aggregate select");
                out.push_back(eval_out(*item.expr));
            }
            charge_output(out);
            result.rows.push_back(std::move(out));
        }

        // ORDER BY in aggregate mode: match select aliases / positions.
        if (!stmt_.order_by.empty()) {
            std::vector<std::pair<int, bool>> keys;  // column idx, desc
            for (std::size_t k = 0; k < stmt_.order_by.size(); ++k) {
                const auto& o = stmt_.order_by[k];
                int idx = order_output_idx_[k];
                if (idx < 0) {
                    for (std::size_t i = 0; i < stmt_.items.size(); ++i) {
                        const auto& item = stmt_.items[i];
                        if (item.star) continue;
                        if (item.expr->to_string() == o.expr->to_string())
                            idx = static_cast<int>(i);
                    }
                }
                if (idx < 0 || idx >= static_cast<int>(result.columns.size()))
                    throw QueryError(
                        "ORDER BY in aggregate queries must name a select "
                        "column or position");
                keys.emplace_back(idx, o.descending);
            }
            std::stable_sort(result.rows.begin(), result.rows.end(),
                             [&](const Row& a, const Row& b) {
                                 for (auto [idx, desc] : keys) {
                                     auto ord = a[idx].index_order(b[idx]);
                                     if (ord == std::strong_ordering::equal)
                                         continue;
                                     bool less = ord == std::strong_ordering::less;
                                     return desc ? !less : less;
                                 }
                                 return false;
                             });
        }
    }

    void accumulate(const Evaluator& eval, const Expr& agg,
                    const std::vector<RowId>& ctx, Accumulator& acc) {
        if (agg.right->kind == Expr::Kind::kStar) {
            ++acc.count;
            return;
        }
        Value v = eval.eval(*agg.right, ctx);
        if (v.is_null()) return;
        if (agg.distinct && !acc.distinct_seen.insert(v.to_string()).second)
            return;
        ++acc.count;
        if (v.type() == rdb::ValueType::kInteger) {
            acc.isum += v.as_integer();
            acc.sum += v.as_real();
        } else if (v.type() == rdb::ValueType::kReal) {
            acc.sum_is_int = false;
            acc.sum += v.as_real();
        }
        if (acc.min.is_null() || v.index_order(acc.min) == std::strong_ordering::less)
            acc.min = v;
        if (acc.max.is_null() ||
            v.index_order(acc.max) == std::strong_ordering::greater)
            acc.max = v;
    }

    Value finalize(const Expr& agg, const Accumulator& acc) const {
        switch (agg.fn) {
            case AggregateFn::kCount:
                return Value(acc.count);
            case AggregateFn::kSum:
                if (acc.count == 0) return Value::null();
                return acc.sum_is_int ? Value(acc.isum) : Value(acc.sum);
            case AggregateFn::kMin:
                return acc.min;
            case AggregateFn::kMax:
                return acc.max;
            case AggregateFn::kAvg:
                if (acc.count == 0) return Value::null();
                return Value(acc.sum / static_cast<double>(acc.count));
        }
        return Value::null();
    }
};

}  // namespace

std::string ResultSet::to_string() const {
    TablePrinter printer(columns);
    for (const auto& row : rows) {
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (const auto& v : row) cells.push_back(v.to_string());
        printer.add_row(std::move(cells));
    }
    return printer.to_string();
}

ResultSet execute(rdb::Database& db, std::string_view sql, ExecStats* stats,
                  const CancelToken& cancel, const PlannerOptions* planner) {
    Statement stmt = parse(sql);
    switch (stmt.kind) {
        case Statement::Kind::kSelect:
            return execute_select(db, stmt.select, stats, cancel, planner);
        case Statement::Kind::kInsert: {
            Table* t = db.table(stmt.insert.table);
            if (t == nullptr)
                throw QueryError("unknown table '" + stmt.insert.table + "'");
            for (const auto& values : stmt.insert.rows) {
                Row row(t->column_count());
                if (stmt.insert.columns.empty()) {
                    if (values.size() != t->column_count())
                        throw QueryError("INSERT arity mismatch for '" +
                                         stmt.insert.table + "'");
                    row = values;
                } else {
                    if (values.size() != stmt.insert.columns.size())
                        throw QueryError("INSERT arity mismatch for '" +
                                         stmt.insert.table + "'");
                    for (std::size_t i = 0; i < values.size(); ++i) {
                        int c = t->def().column_index(stmt.insert.columns[i]);
                        if (c < 0)
                            throw QueryError("unknown column '" +
                                             stmt.insert.columns[i] + "'");
                        row[c] = values[i];
                    }
                }
                t->insert(std::move(row));
            }
            return {};
        }
        case Statement::Kind::kCreateTable: {
            rdb::TableDef def;
            def.name = stmt.create_table.table;
            for (const auto& c : stmt.create_table.columns)
                def.columns.push_back({c.name, c.type, c.not_null, c.primary_key});
            db.create_table(std::move(def));
            for (const auto& c : stmt.create_table.columns) {
                if (!c.references_table.empty())
                    db.add_foreign_key({stmt.create_table.table, c.name,
                                        c.references_table, c.references_column});
            }
            return {};
        }
        case Statement::Kind::kCreateIndex: {
            Table* t = db.table(stmt.create_index.table);
            if (t == nullptr)
                throw QueryError("unknown table '" + stmt.create_index.table + "'");
            t->create_index(stmt.create_index.column);
            return {};
        }
    }
    return {};
}

ResultSet execute_read(const rdb::ReadView& db, std::string_view sql,
                       ExecStats* stats, const CancelToken& cancel,
                       const PlannerOptions* planner) {
    Statement stmt = parse(sql);
    if (stmt.kind != Statement::Kind::kSelect)
        throw QueryError("read-only execution: statement is not a SELECT");
    return execute_select(db, stmt.select, stats, cancel, planner);
}

ResultSet execute_select(const rdb::ReadView& db, SelectStmt& stmt,
                         ExecStats* stats, const CancelToken& cancel,
                         const PlannerOptions* planner) {
    PlannerOptions popts = planner != nullptr ? *planner : PlannerOptions{};
    // The cost-based pass only changes anything for joins; single-table
    // statements already get their access path from build_stages().
    if (popts.enable && !stmt.joins.empty()) plan_select(db, stmt, popts);
    SelectExecutor executor(db, stmt, stats, cancel);
    return executor.run();
}

ResultSet execute_select(rdb::Database& db, SelectStmt& stmt, ExecStats* stats,
                         const CancelToken& cancel,
                         const PlannerOptions* planner) {
    return execute_select(rdb::ReadView(db), stmt, stats, cancel, planner);
}

}  // namespace xr::sql
