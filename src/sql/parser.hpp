// SQL parser for the MiniRDB dialect: SELECT (joins, WHERE, GROUP BY,
// HAVING, ORDER BY, LIMIT, aggregates), INSERT ... VALUES, CREATE TABLE,
// CREATE INDEX.
#pragma once

#include <string_view>

#include "sql/ast.hpp"

namespace xr::sql {

/// Parse one SQL statement (a trailing ';' is allowed).
[[nodiscard]] Statement parse(std::string_view sql);

/// Parse a statement known to be a SELECT.
[[nodiscard]] SelectStmt parse_select(std::string_view sql);

}  // namespace xr::sql
