// SQL lexer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace xr::sql {

enum class TokenType {
    kIdentifier,  ///< bare or "quoted"
    kKeyword,     ///< recognized SQL keyword (normalized upper-case)
    kInteger,
    kReal,
    kString,   ///< 'single quoted'
    kSymbol,   ///< operators and punctuation: = <> <= >= < > ( ) , . * + - / %
    kEnd,
};

struct Token {
    TokenType type = TokenType::kEnd;
    std::string text;  ///< keyword upper-cased; identifier as written
    SourceLocation where;

    [[nodiscard]] bool is_keyword(std::string_view kw) const {
        return type == TokenType::kKeyword && text == kw;
    }
    [[nodiscard]] bool is_symbol(std::string_view s) const {
        return type == TokenType::kSymbol && text == s;
    }
};

/// Tokenize SQL text.  Throws xr::ParseError on malformed input.
[[nodiscard]] std::vector<Token> lex(std::string_view sql);

}  // namespace xr::sql
