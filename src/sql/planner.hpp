// Cost-based planning for SELECTs over MiniRDB (DESIGN.md §13).
//
// The xquery translator emits join chains in *path order* — fine for
// `/a/b/c` walked root-down, terrible when the selective predicate sits
// at the tail of the chain.  plan_select() re-costs the translated (or
// hand-written) statement using per-table statistics (rdb/stats.hpp):
// sargable single-table predicates estimate per-table selectivity,
// equi-/range-join conjuncts estimate join selectivity, and a Selinger-
// style left-deep search (exhaustive DP up to dp_table_limit tables,
// greedy beyond) picks the join order with the cheapest access-path-
// aware cost.  The winning order is written back into the statement —
// ON conjuncts merge into WHERE (all joins in this dialect are inner),
// and the executor's existing stage builder then re-derives index
// probes, range scans and residual placement for the new order, which
// is also what pushes sargable predicates to their earliest stage.
//
// The pass is purely a rewrite: it never changes the result multiset,
// only the enumeration order — verified continuously by the SQL-vs-DOM
// differential fuzzer running with the planner on and off.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rdb/database.hpp"
#include "sql/ast.hpp"

namespace xr::sql {

struct PlannerOptions {
    /// Master switch: off leaves the statement exactly as written (the
    /// as-translated baseline the fuzzer and benches compare against).
    bool enable = true;
    /// Exhaustive dynamic-programming join search up to this many tables;
    /// larger chains fall back to a greedy min-cost-increment order.
    std::size_t dp_table_limit = 7;
};

/// Access path the executor will use for one stage of the chosen order.
enum class AccessPath {
    kScan,        ///< full scan of the driving table
    kIndexEq,     ///< driving table: literal equality via index
    kRange,       ///< binary-searched range on an ordered index
    kProbe,       ///< equi-join probe via existing index / pk lookup
    kHashProbe,   ///< equi-join probe via ad-hoc hash build
    kNestedLoop,  ///< no usable join conjunct: scan per outer row
};

[[nodiscard]] std::string_view to_string(AccessPath p);

/// One stage of the (re)ordered pipeline, for EXPLAIN and plan-shape
/// tests.  est_rows is the estimated *cumulative* cardinality after the
/// stage; est_cost the stage's incremental cost in row-visit units.
struct StagePlan {
    std::string alias;
    std::string table;
    AccessPath path = AccessPath::kScan;
    std::string detail;  ///< column driving the access path, if any
    double est_rows = 0;
    double est_cost = 0;
};

struct PlanInfo {
    bool planned = false;    ///< the pass ran (resolvable tables)
    bool reordered = false;  ///< chosen order differs from as-written
    double total_cost = 0;
    double est_rows = 0;     ///< final cardinality estimate
    std::uint64_t stats_epoch = 0;
    std::vector<StagePlan> stages;  ///< in chosen execution order

    /// Compact plan fingerprint for golden tests: one token per stage,
    /// `path(alias)` or `path(alias.column)`, space-separated.
    [[nodiscard]] std::string shape() const;
    /// Multi-line EXPLAIN rendering with costs.
    [[nodiscard]] std::string to_string() const;
};

/// Cost and (when options.enable and it wins) reorder `stmt` in place.
/// Reads table statistics through a ReadView — either a pinned
/// DatabaseVersion (the query service plans inside its ReadSnapshot,
/// latch-free) or the live database (writer-thread / quiesced callers,
/// via ReadView's implicit conversion).  Statements the
/// pass cannot reason about — unknown tables, ambiguous columns, `SELECT
/// *` with joins (column order depends on table order) — are left
/// untouched with planned=false; the executor then reports the error or
/// runs the statement as written.
PlanInfo plan_select(const rdb::ReadView& db, SelectStmt& stmt,
                     const PlannerOptions& options = {});

}  // namespace xr::sql
