// SQL abstract syntax.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rdb/value.hpp"

namespace xr::sql {

// -- expressions --------------------------------------------------------------

enum class BinaryOp {
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAnd, kOr,
    kAdd, kSub, kMul, kDiv, kMod,
    kLike,
};

enum class AggregateFn { kCount, kSum, kMin, kMax, kAvg };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
    enum class Kind {
        kLiteral,
        kColumn,     ///< [table.]column
        kBinary,
        kNot,
        kIsNull,     ///< expr IS [NOT] NULL (negated flag)
        kAggregate,  ///< COUNT(*) / COUNT(x) / SUM / MIN / MAX / AVG
        kStar,       ///< '*' in COUNT(*)
    };

    Kind kind = Kind::kLiteral;
    rdb::Value literal;

    std::string table;   ///< qualifier for kColumn (may be empty)
    std::string column;  ///< kColumn

    BinaryOp op = BinaryOp::kEq;
    ExprPtr left;
    ExprPtr right;   ///< also the operand of kNot / kIsNull / kAggregate

    bool negated = false;         ///< kIsNull: IS NOT NULL
    AggregateFn fn = AggregateFn::kCount;
    bool distinct = false;        ///< COUNT(DISTINCT x)

    // Resolution results (filled by the executor's binder).
    int bound_table = -1;
    int bound_column = -1;

    [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] ExprPtr make_literal(rdb::Value v);
[[nodiscard]] ExprPtr make_column(std::string table, std::string column);
[[nodiscard]] ExprPtr make_binary(BinaryOp op, ExprPtr left, ExprPtr right);

// -- statements ---------------------------------------------------------------

struct TableRef {
    std::string table;
    std::string alias;  ///< defaults to table name

    [[nodiscard]] const std::string& effective_alias() const {
        return alias.empty() ? table : alias;
    }
};

struct JoinClause {
    TableRef table;
    ExprPtr on;
};

struct SelectItem {
    ExprPtr expr;
    std::string alias;
    bool star = false;  ///< bare '*'
};

struct OrderItem {
    ExprPtr expr;
    bool descending = false;
};

struct SelectStmt {
    std::vector<SelectItem> items;
    TableRef from;
    std::vector<JoinClause> joins;
    ExprPtr where;
    std::vector<ExprPtr> group_by;
    ExprPtr having;
    std::vector<OrderItem> order_by;
    std::optional<std::size_t> limit;
    bool distinct = false;
};

struct InsertStmt {
    std::string table;
    std::vector<std::string> columns;  ///< empty = all, in order
    std::vector<std::vector<rdb::Value>> rows;
};

struct CreateTableStmt {
    std::string table;
    struct ColumnDef {
        std::string name;
        rdb::ValueType type = rdb::ValueType::kText;
        bool not_null = false;
        bool primary_key = false;
        std::string references_table;   ///< REFERENCES t(c), if any
        std::string references_column;
    };
    std::vector<ColumnDef> columns;
};

struct CreateIndexStmt {
    std::string table;
    std::string column;
};

struct Statement {
    enum class Kind { kSelect, kInsert, kCreateTable, kCreateIndex };
    Kind kind = Kind::kSelect;
    SelectStmt select;
    InsertStmt insert;
    CreateTableStmt create_table;
    CreateIndexStmt create_index;
};

}  // namespace xr::sql
