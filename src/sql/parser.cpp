#include "sql/parser.hpp"

#include "common/strings.hpp"
#include "sql/lexer.hpp"

namespace xr::sql {

namespace {

class Parser {
public:
    explicit Parser(std::string_view sql) : tokens_(lex(sql)) {}

    Statement statement() {
        Statement stmt;
        if (peek().is_keyword("SELECT")) {
            stmt.kind = Statement::Kind::kSelect;
            stmt.select = select();
        } else if (peek().is_keyword("INSERT")) {
            stmt.kind = Statement::Kind::kInsert;
            stmt.insert = insert();
        } else if (peek().is_keyword("CREATE")) {
            advance();
            if (peek().is_keyword("TABLE")) {
                stmt.kind = Statement::Kind::kCreateTable;
                stmt.create_table = create_table();
            } else if (peek().is_keyword("INDEX") || peek().is_keyword("UNIQUE")) {
                stmt.kind = Statement::Kind::kCreateIndex;
                stmt.create_index = create_index();
            } else {
                fail("expected TABLE or INDEX after CREATE");
            }
        } else {
            fail("expected SELECT, INSERT or CREATE");
        }
        consume_symbol(";");  // optional
        if (peek().type != TokenType::kEnd) fail("trailing input after statement");
        return stmt;
    }

    SelectStmt select() {
        expect_keyword("SELECT");
        SelectStmt stmt;
        if (consume_keyword("DISTINCT")) stmt.distinct = true;

        // Select list.
        for (;;) {
            SelectItem item;
            if (peek().is_symbol("*")) {
                advance();
                item.star = true;
            } else {
                item.expr = expr();
                if (consume_keyword("AS")) {
                    item.alias = expect_identifier("column alias");
                } else if (peek().type == TokenType::kIdentifier) {
                    item.alias = advance().text;
                }
            }
            stmt.items.push_back(std::move(item));
            if (!consume_symbol(",")) break;
        }

        expect_keyword("FROM");
        stmt.from = table_ref();

        while (peek().is_keyword("JOIN") || peek().is_keyword("INNER") ||
               peek().is_keyword("LEFT")) {
            consume_keyword("INNER");
            if (consume_keyword("LEFT"))
                fail("LEFT JOIN is not supported by this dialect");
            expect_keyword("JOIN");
            JoinClause join;
            join.table = table_ref();
            expect_keyword("ON");
            join.on = expr();
            stmt.joins.push_back(std::move(join));
        }

        if (consume_keyword("WHERE")) stmt.where = expr();
        if (consume_keyword("GROUP")) {
            expect_keyword("BY");
            do {
                stmt.group_by.push_back(expr());
            } while (consume_symbol(","));
        }
        if (consume_keyword("HAVING")) stmt.having = expr();
        if (consume_keyword("ORDER")) {
            expect_keyword("BY");
            do {
                OrderItem item;
                item.expr = expr();
                if (consume_keyword("DESC")) item.descending = true;
                else consume_keyword("ASC");
                stmt.order_by.push_back(std::move(item));
            } while (consume_symbol(","));
        }
        if (consume_keyword("LIMIT")) {
            const Token& t = peek();
            if (t.type != TokenType::kInteger) fail("expected integer after LIMIT");
            stmt.limit = static_cast<std::size_t>(std::stoll(advance().text));
        }
        return stmt;
    }

private:
    std::vector<Token> tokens_;
    std::size_t pos_ = 0;

    const Token& peek(std::size_t n = 0) const {
        std::size_t i = pos_ + n;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }
    const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

    [[noreturn]] void fail(const std::string& message) const {
        throw ParseError(message, peek().where);
    }

    bool consume_keyword(std::string_view kw) {
        if (!peek().is_keyword(kw)) return false;
        advance();
        return true;
    }
    void expect_keyword(std::string_view kw) {
        if (!consume_keyword(kw)) fail("expected " + std::string(kw));
    }
    bool consume_symbol(std::string_view s) {
        if (!peek().is_symbol(s)) return false;
        advance();
        return true;
    }
    void expect_symbol(std::string_view s) {
        if (!consume_symbol(s)) fail("expected '" + std::string(s) + "'");
    }
    std::string expect_identifier(const std::string& what) {
        if (peek().type != TokenType::kIdentifier &&
            peek().type != TokenType::kKeyword)
            fail("expected " + what);
        return advance().text;
    }

    TableRef table_ref() {
        TableRef ref;
        ref.table = expect_identifier("table name");
        if (consume_keyword("AS")) {
            ref.alias = expect_identifier("table alias");
        } else if (peek().type == TokenType::kIdentifier) {
            ref.alias = advance().text;
        }
        return ref;
    }

    InsertStmt insert() {
        expect_keyword("INSERT");
        expect_keyword("INTO");
        InsertStmt stmt;
        stmt.table = expect_identifier("table name");
        if (consume_symbol("(")) {
            do {
                stmt.columns.push_back(expect_identifier("column name"));
            } while (consume_symbol(","));
            expect_symbol(")");
        }
        expect_keyword("VALUES");
        do {
            expect_symbol("(");
            std::vector<rdb::Value> row;
            do {
                row.push_back(literal_value());
            } while (consume_symbol(","));
            expect_symbol(")");
            stmt.rows.push_back(std::move(row));
        } while (consume_symbol(","));
        return stmt;
    }

    rdb::Value literal_value() {
        const Token& t = peek();
        bool negative = false;
        if (t.is_symbol("-")) {
            advance();
            negative = true;
        }
        const Token& v = peek();
        switch (v.type) {
            case TokenType::kInteger: {
                auto n = static_cast<std::int64_t>(std::stoll(advance().text));
                return rdb::Value(negative ? -n : n);
            }
            case TokenType::kReal: {
                double d = std::stod(advance().text);
                return rdb::Value(negative ? -d : d);
            }
            case TokenType::kString:
                if (negative) fail("cannot negate a string literal");
                return rdb::Value(advance().text);
            case TokenType::kKeyword:
                if (v.text == "NULL") {
                    advance();
                    return rdb::Value::null();
                }
                [[fallthrough]];
            default:
                fail("expected literal value");
        }
    }

    CreateTableStmt create_table() {
        expect_keyword("TABLE");
        CreateTableStmt stmt;
        stmt.table = expect_identifier("table name");
        expect_symbol("(");
        do {
            CreateTableStmt::ColumnDef c;
            c.name = expect_identifier("column name");
            if (consume_keyword("INTEGER")) c.type = rdb::ValueType::kInteger;
            else if (consume_keyword("REAL")) c.type = rdb::ValueType::kReal;
            else if (consume_keyword("TEXT")) c.type = rdb::ValueType::kText;
            else fail("expected column type (INTEGER/REAL/TEXT)");
            for (;;) {
                if (consume_keyword("PRIMARY")) {
                    expect_keyword("KEY");
                    c.primary_key = true;
                    c.not_null = true;
                } else if (consume_keyword("NOT")) {
                    expect_keyword("NULL");
                    c.not_null = true;
                } else if (consume_keyword("REFERENCES")) {
                    c.references_table = expect_identifier("referenced table");
                    expect_symbol("(");
                    c.references_column = expect_identifier("referenced column");
                    expect_symbol(")");
                } else {
                    break;
                }
            }
            stmt.columns.push_back(std::move(c));
        } while (consume_symbol(","));
        expect_symbol(")");
        return stmt;
    }

    CreateIndexStmt create_index() {
        consume_keyword("UNIQUE");
        expect_keyword("INDEX");
        // Optional index name.
        if (peek().type == TokenType::kIdentifier &&
            !peek(1).is_keyword("ON") )
            advance();
        else if (peek().type == TokenType::kIdentifier && peek(1).is_keyword("ON"))
            advance();
        expect_keyword("ON");
        CreateIndexStmt stmt;
        stmt.table = expect_identifier("table name");
        expect_symbol("(");
        stmt.column = expect_identifier("column name");
        expect_symbol(")");
        return stmt;
    }

    // -- expression grammar ----------------------------------------------------

    ExprPtr expr() { return or_expr(); }

    ExprPtr or_expr() {
        ExprPtr left = and_expr();
        while (consume_keyword("OR"))
            left = make_binary(BinaryOp::kOr, std::move(left), and_expr());
        return left;
    }

    ExprPtr and_expr() {
        ExprPtr left = not_expr();
        while (consume_keyword("AND"))
            left = make_binary(BinaryOp::kAnd, std::move(left), not_expr());
        return left;
    }

    ExprPtr not_expr() {
        if (consume_keyword("NOT")) {
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::kNot;
            node->right = not_expr();
            return node;
        }
        return comparison();
    }

    ExprPtr comparison() {
        ExprPtr left = additive();
        if (consume_keyword("IS")) {
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::kIsNull;
            node->negated = consume_keyword("NOT");
            expect_keyword("NULL");
            node->right = std::move(left);
            return node;
        }
        if (consume_keyword("LIKE"))
            return make_binary(BinaryOp::kLike, std::move(left), additive());
        struct OpMap {
            const char* sym;
            BinaryOp op;
        };
        static const OpMap ops[] = {{"=", BinaryOp::kEq}, {"<>", BinaryOp::kNe},
                                    {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                                    {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
        for (const auto& [sym, op] : ops) {
            if (consume_symbol(sym))
                return make_binary(op, std::move(left), additive());
        }
        return left;
    }

    ExprPtr additive() {
        ExprPtr left = multiplicative();
        for (;;) {
            if (consume_symbol("+"))
                left = make_binary(BinaryOp::kAdd, std::move(left), multiplicative());
            else if (consume_symbol("-"))
                left = make_binary(BinaryOp::kSub, std::move(left), multiplicative());
            else
                return left;
        }
    }

    ExprPtr multiplicative() {
        ExprPtr left = unary();
        for (;;) {
            if (consume_symbol("*"))
                left = make_binary(BinaryOp::kMul, std::move(left), unary());
            else if (consume_symbol("/"))
                left = make_binary(BinaryOp::kDiv, std::move(left), unary());
            else if (consume_symbol("%"))
                left = make_binary(BinaryOp::kMod, std::move(left), unary());
            else
                return left;
        }
    }

    ExprPtr unary() {
        if (consume_symbol("-")) {
            // Fold negation into numeric literals; otherwise 0 - x.
            ExprPtr operand = unary();
            if (operand->kind == Expr::Kind::kLiteral &&
                operand->literal.type() == rdb::ValueType::kInteger)
                return make_literal(rdb::Value(-operand->literal.as_integer()));
            if (operand->kind == Expr::Kind::kLiteral &&
                operand->literal.type() == rdb::ValueType::kReal)
                return make_literal(rdb::Value(-operand->literal.as_real()));
            return make_binary(BinaryOp::kSub, make_literal(rdb::Value(0)),
                               std::move(operand));
        }
        return primary();
    }

    ExprPtr primary() {
        const Token& t = peek();
        switch (t.type) {
            case TokenType::kInteger:
                return make_literal(rdb::Value(static_cast<std::int64_t>(std::stoll(advance().text))));
            case TokenType::kReal:
                return make_literal(rdb::Value(std::stod(advance().text)));
            case TokenType::kString:
                return make_literal(rdb::Value(advance().text));
            case TokenType::kKeyword: {
                if (t.text == "NULL") {
                    advance();
                    return make_literal(rdb::Value::null());
                }
                AggregateFn fn;
                if (t.text == "COUNT") fn = AggregateFn::kCount;
                else if (t.text == "SUM") fn = AggregateFn::kSum;
                else if (t.text == "MIN") fn = AggregateFn::kMin;
                else if (t.text == "MAX") fn = AggregateFn::kMax;
                else if (t.text == "AVG") fn = AggregateFn::kAvg;
                else fail("unexpected keyword '" + t.text + "' in expression");
                advance();
                expect_symbol("(");
                auto node = std::make_unique<Expr>();
                node->kind = Expr::Kind::kAggregate;
                node->fn = fn;
                if (consume_keyword("DISTINCT")) node->distinct = true;
                if (peek().is_symbol("*")) {
                    advance();
                    node->right = std::make_unique<Expr>();
                    node->right->kind = Expr::Kind::kStar;
                } else {
                    node->right = expr();
                }
                expect_symbol(")");
                return node;
            }
            case TokenType::kIdentifier: {
                std::string first = advance().text;
                if (consume_symbol(".")) {
                    std::string second = expect_identifier("column name");
                    return make_column(std::move(first), std::move(second));
                }
                return make_column("", std::move(first));
            }
            case TokenType::kSymbol:
                if (t.text == "(") {
                    advance();
                    ExprPtr inner = expr();
                    expect_symbol(")");
                    return inner;
                }
                [[fallthrough]];
            default:
                fail("expected expression");
        }
    }
};

}  // namespace

std::string Expr::to_string() const {
    switch (kind) {
        case Kind::kLiteral:
            return literal.type() == rdb::ValueType::kText
                       ? sql_quote(literal.as_text())
                       : literal.to_string();
        case Kind::kColumn:
            return table.empty() ? column : table + "." + column;
        case Kind::kStar:
            return "*";
        case Kind::kNot:
            return "NOT (" + right->to_string() + ")";
        case Kind::kIsNull:
            return right->to_string() + (negated ? " IS NOT NULL" : " IS NULL");
        case Kind::kAggregate: {
            const char* name = "COUNT";
            switch (fn) {
                case AggregateFn::kCount: name = "COUNT"; break;
                case AggregateFn::kSum: name = "SUM"; break;
                case AggregateFn::kMin: name = "MIN"; break;
                case AggregateFn::kMax: name = "MAX"; break;
                case AggregateFn::kAvg: name = "AVG"; break;
            }
            return std::string(name) + "(" + (distinct ? "DISTINCT " : "") +
                   right->to_string() + ")";
        }
        case Kind::kBinary: {
            const char* sym = "=";
            switch (op) {
                case BinaryOp::kEq: sym = "="; break;
                case BinaryOp::kNe: sym = "<>"; break;
                case BinaryOp::kLt: sym = "<"; break;
                case BinaryOp::kLe: sym = "<="; break;
                case BinaryOp::kGt: sym = ">"; break;
                case BinaryOp::kGe: sym = ">="; break;
                case BinaryOp::kAnd: sym = "AND"; break;
                case BinaryOp::kOr: sym = "OR"; break;
                case BinaryOp::kAdd: sym = "+"; break;
                case BinaryOp::kSub: sym = "-"; break;
                case BinaryOp::kMul: sym = "*"; break;
                case BinaryOp::kDiv: sym = "/"; break;
                case BinaryOp::kMod: sym = "%"; break;
                case BinaryOp::kLike: sym = "LIKE"; break;
            }
            return left->to_string() + " " + sym + " " + right->to_string();
        }
    }
    return "?";
}

ExprPtr make_literal(rdb::Value v) {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kLiteral;
    node->literal = std::move(v);
    return node;
}

ExprPtr make_column(std::string table, std::string column) {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kColumn;
    node->table = std::move(table);
    node->column = std::move(column);
    return node;
}

ExprPtr make_binary(BinaryOp op, ExprPtr left, ExprPtr right) {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->op = op;
    node->left = std::move(left);
    node->right = std::move(right);
    return node;
}

Statement parse(std::string_view sql) {
    Parser parser(sql);
    return parser.statement();
}

SelectStmt parse_select(std::string_view sql) {
    Statement stmt = parse(sql);
    if (stmt.kind != Statement::Kind::kSelect)
        throw ParseError("expected a SELECT statement");
    return std::move(stmt.select);
}

}  // namespace xr::sql
