// Mapping metadata (paper Sections 3 and 5).
//
// Properties of DTDs that the relational model cannot express — schema
// ordering, occurrence/repeatability, group provenance, distilled
// attributes, mixed content — are captured here during the mapping and
// later materialized as relational metadata tables (xr::rel), so data
// loading and query processing can consult them.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dtd/content_model.hpp"

namespace xr::mapping {

/// Schema ordering (paper Section 3, Ordering): the left-to-right order of
/// subelement references in an element's original content model.
struct SchemaOrderEntry {
    std::string element;
    std::vector<std::string> children_in_order;
};

/// Occurrence of a content particle within its parent (paper Section 3,
/// Occurrence): saved when the relational mapping drops the indicator.
struct OccurrenceEntry {
    std::string parent;
    std::string particle;  ///< subelement or group-element name
    dtd::Occurrence occurrence = dtd::Occurrence::kOne;
};

/// A #PCDATA subelement moved into an attribute list by step 2.  The entry
/// preserves the ordering information the paper notes is otherwise lost
/// ("by moving an element to the attribute list, the ordering relationship
/// among elements is lost ... could be maintained as a metadata").
struct DistilledAttribute {
    std::string element;         ///< owner after distillation
    std::string attribute;       ///< attribute name == original child name
    std::string original_child;  ///< the removed subelement
    bool optional = false;       ///< '?' on the original reference
    std::size_t position = 0;    ///< index among the original children
};

/// A virtual element created for a group by step 1.
struct GroupElement {
    std::string name;    ///< G1, G2, ...
    std::string parent;  ///< element the group was extracted from
    dtd::ParticleKind kind = dtd::ParticleKind::kSequence;
    std::string particle_text;  ///< group body as DTD text
    dtd::Occurrence occurrence = dtd::Occurrence::kOne;  ///< of the group ref
    std::size_t position = 0;  ///< index within the parent's children
};

/// Mixed-content membership, preserved for loading (text interleaving is a
/// data-ordering concern handled by ord columns).
struct MixedContentEntry {
    std::string element;
    std::vector<std::string> members;
};

struct Metadata {
    std::vector<SchemaOrderEntry> schema_order;
    std::vector<OccurrenceEntry> occurrences;
    std::vector<DistilledAttribute> distilled;
    std::vector<GroupElement> groups;
    std::vector<MixedContentEntry> mixed;

    [[nodiscard]] const GroupElement* group(std::string_view name) const;
    [[nodiscard]] std::optional<dtd::Occurrence> occurrence_of(
        std::string_view parent, std::string_view particle) const;
    [[nodiscard]] std::vector<const DistilledAttribute*> distilled_of(
        std::string_view element) const;

    /// Tabular dump for examples / debugging.
    [[nodiscard]] std::string to_string() const;
};

}  // namespace xr::mapping
