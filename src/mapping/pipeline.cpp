#include "mapping/pipeline.hpp"

namespace xr::mapping {

MappingResult map_dtd(const dtd::Dtd& logical, const MappingOptions& options) {
    MappingResult result;
    result.grouped = define_group_elements(logical, result.metadata, options);
    result.distilled = distill_attributes(result.grouped, result.metadata, options);
    result.converted =
        identify_relationships(result.distilled, result.metadata, options);
    result.model = generate_diagram(result.converted);
    return result;
}

}  // namespace xr::mapping
