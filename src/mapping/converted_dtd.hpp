// The converted DTD — output of mapping step 3 (paper Example 2).
//
// After groups are hoisted, attributes distilled, and relationships
// identified, "the only declarations in the DTD [are] 'empty' and 'any'
// elements, attribute lists, and relationships".  ConvertedDtd is that
// form: element entries with no structural content, plus explicit
// NESTED_GROUP / NESTED / REFERENCE declarations.  to_string() renders the
// paper's pseudo-DTD syntax so Example 2 can be checked verbatim.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dtd/dtd.hpp"

namespace xr::mapping {

/// What remains of an element's content after relationship extraction.
enum class ResidualContent {
    kStripped,  ///< all structure moved into relationships — prints '()'
    kEmpty,     ///< originally declared EMPTY
    kAny,       ///< originally declared ANY
    kPCData,    ///< undistilled text-only element — prints '(#PCDATA)'
    kMixed,     ///< mixed content (members appear as nested relationships)
};

[[nodiscard]] std::string_view to_string(ResidualContent r);

struct ConvertedElement {
    std::string name;
    ResidualContent residual = ResidualContent::kStripped;
    std::vector<dtd::AttributeDecl> attributes;
};

/// <!NESTED_GROUP NGk parent (group)> — the group keeps inner occurrence
/// indicators ('author*' in NG1); the group's own occurrence under the
/// parent lives in metadata, mirrored here for convenience.
struct NestedGroupDecl {
    std::string name;    ///< NG1, NG2, ...
    std::string parent;
    dtd::Particle group;  ///< flat group of element references
    dtd::Occurrence occurrence = dtd::Occurrence::kOne;
    std::vector<dtd::AttributeDecl> attributes;  ///< relationship attributes
    std::size_t position = 0;  ///< schema order within the parent
    /// Members of `group` that are themselves hoisted groups (their own
    /// NESTED_GROUP declaration chains to this one via `parent`).
    std::vector<std::string> virtual_members;

    [[nodiscard]] bool is_virtual_member(std::string_view name) const {
        for (const auto& v : virtual_members)
            if (v == name) return true;
        return false;
    }
};

/// <!NESTED Nchild parent child>
struct NestedDecl {
    std::string name;
    std::string parent;
    std::string child;
    dtd::Occurrence occurrence = dtd::Occurrence::kOne;
    std::size_t position = 0;
    bool from_mixed = false;  ///< member of a mixed-content model
};

/// <!REFERENCE attr source (target | target ...)>
struct ReferenceDecl {
    std::string attribute;
    std::string source;
    std::vector<std::string> targets;  ///< all ID-bearing element types
    bool multiple = false;             ///< IDREFS
    bool required = false;             ///< #REQUIRED on the IDREF attribute
};

class ConvertedDtd {
public:
    std::vector<ConvertedElement> elements;
    std::vector<NestedGroupDecl> nested_groups;
    std::vector<NestedDecl> nested;
    std::vector<ReferenceDecl> references;

    [[nodiscard]] const ConvertedElement* element(std::string_view name) const;
    [[nodiscard]] const NestedGroupDecl* nested_group(std::string_view name) const;
    [[nodiscard]] const NestedDecl* nested_decl(std::string_view name) const;

    /// Relationships (groups + nested) under one parent, in schema order.
    [[nodiscard]] std::vector<std::string> relationships_of(
        std::string_view parent) const;

    /// Paper Example 2 syntax, grouped per element in declaration order.
    [[nodiscard]] std::string to_string() const;
};

}  // namespace xr::mapping
