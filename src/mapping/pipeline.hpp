// End-to-end DTD→ER pipeline (paper Figure 1).
#pragma once

#include "mapping/steps.hpp"

namespace xr::mapping {

/// Everything the pipeline produces, including intermediate stages — the
/// tests compare each against the paper's running example, and the
/// relational translation consumes `converted` + `metadata`.
struct MappingResult {
    dtd::Dtd grouped;        ///< after step 1 (groups are virtual elements)
    dtd::Dtd distilled;      ///< after step 2 (attributes distilled)
    ConvertedDtd converted;  ///< after step 3 (paper Example 2)
    er::Model model;         ///< after step 4 (paper Figure 2)
    Metadata metadata;       ///< ordering / occurrence / provenance capture
};

/// Run all four steps on a logical DTD.
[[nodiscard]] MappingResult map_dtd(const dtd::Dtd& logical,
                                    const MappingOptions& options = {});

}  // namespace xr::mapping
