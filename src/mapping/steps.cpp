#include "mapping/steps.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace xr::mapping {

namespace {

using dtd::ContentCategory;
using dtd::Occurrence;
using dtd::Particle;
using dtd::ParticleKind;

/// Collapse groups with exactly one member into the member, composing the
/// occurrence indicators: '((a | b)*)' becomes '(a | b)*'.
Particle collapse_unary(Particle p) {
    for (auto& c : p.children) c = collapse_unary(std::move(c));
    if (p.is_group() && p.children.size() == 1) {
        Particle child = std::move(p.children.front());
        child.occurrence = dtd::compose(p.occurrence, child.occurrence);
        return child;
    }
    return p;
}

/// Allocates G1, G2, ... names that do not collide with declared elements.
class GroupNamer {
public:
    GroupNamer(const dtd::Dtd& dtd, std::string prefix)
        : prefix_(std::move(prefix)) {
        for (const auto& e : dtd.elements()) used_.insert(e.name);
    }

    std::string next() {
        for (;;) {
            std::string candidate = prefix_ + std::to_string(counter_++);
            if (used_.insert(candidate).second) return candidate;
        }
    }

private:
    std::string prefix_;
    std::set<std::string> used_;
    int counter_ = 1;
};

void record_schema_order(const dtd::Dtd& in, Metadata& meta) {
    for (const auto& e : in.elements()) {
        std::vector<std::string> children = e.content.referenced_names();
        if (children.empty()) continue;
        meta.schema_order.push_back({e.name, std::move(children)});
    }
}

}  // namespace

dtd::Dtd define_group_elements(const dtd::Dtd& in, Metadata& meta,
                               const MappingOptions& options) {
    record_schema_order(in, meta);

    dtd::Dtd out;
    for (const auto& e : in.elements()) out.add_element(e);

    GroupNamer namer(in, options.group_prefix);
    std::set<std::string> group_names;

    // Hoists `group` into a fresh virtual element, returning the reference
    // particle that replaces it.  The group's occurrence indicator moves to
    // the reference; occurrence inside the group body is preserved.
    auto hoist = [&](Particle group, const std::string& parent,
                     std::size_t position) -> Particle {
        Occurrence ref_occurrence = group.occurrence;
        group.occurrence = Occurrence::kOne;

        GroupElement record;
        record.kind = group.kind;
        record.particle_text = group.to_string();
        record.occurrence = ref_occurrence;
        record.parent = parent;
        record.position = position;

        std::string name = namer.next();
        record.name = name;
        meta.groups.push_back(record);
        group_names.insert(name);

        dtd::ElementDecl decl;
        decl.name = name;
        decl.content = dtd::ContentModel::children(std::move(group));
        out.add_element(std::move(decl));

        return Particle::element(name, ref_occurrence);
    };

    // Iterate by index: hoisting appends new virtual elements whose bodies
    // are processed in later iterations — the paper's "repeated until no
    // element contains a group" fixpoint.
    for (std::size_t i = 0; i < out.elements().size(); ++i) {
        // Take a copy of the content; out.elements() may reallocate while
        // hoisting appends declarations.
        std::string name = out.elements()[i].name;
        dtd::ContentModel content = out.elements()[i].content;
        if (content.category != ContentCategory::kChildren) continue;

        Particle top = options.collapse_unary_groups
                           ? collapse_unary(std::move(content.particle))
                           : std::move(content.particle);
        bool is_virtual = group_names.contains(name);

        if (top.is_group() && !is_virtual &&
            (top.occurrence != Occurrence::kOne ||
             (top.kind == ParticleKind::kChoice && options.hoist_top_level_choice))) {
            // The whole content is a repeated or alternative group: hoist it
            // entirely so its semantics become one relationship.
            Particle ref = hoist(std::move(top), name, 0);
            top = Particle::sequence({std::move(ref)});
        } else if (top.is_group()) {
            for (std::size_t m = 0; m < top.children.size(); ++m) {
                if (top.children[m].is_group())
                    top.children[m] = hoist(std::move(top.children[m]), name, m);
            }
        }
        out.elements()[i].content = dtd::ContentModel::children(std::move(top));
    }
    return out;
}

dtd::Dtd distill_attributes(const dtd::Dtd& in, Metadata& meta,
                            const MappingOptions& options) {
    // Work on a mutable copy of the declarations.
    std::vector<dtd::ElementDecl> elements(in.elements().begin(),
                                           in.elements().end());
    std::set<std::string> removal_candidates;

    auto lookup = [&](std::string_view name) -> const dtd::ElementDecl* {
        for (const auto& e : elements)
            if (e.name == name) return &e;
        return nullptr;
    };

    for (auto& e : elements) {
        if (e.content.category != ContentCategory::kChildren) continue;
        Particle& top = e.content.particle;

        // Uniform view: a bare element reference behaves as a 1-member list.
        const bool single = top.is_element();
        const bool choice_context =
            !single && top.kind == ParticleKind::kChoice;
        if (choice_context && !options.distill_from_choice) continue;

        std::vector<Particle> members =
            single ? std::vector<Particle>{top} : std::move(top.children);

        // Count references per name — a subelement mentioned twice in the
        // model "occurs multiple times" and is not distilled.
        std::map<std::string, int> mention_count;
        for (const auto& m : members)
            if (m.is_element()) ++mention_count[m.name];

        std::vector<Particle> kept;
        for (std::size_t idx = 0; idx < members.size(); ++idx) {
            Particle& m = members[idx];
            bool distill = false;
            if (m.is_element() && !dtd::is_repeatable(m.occurrence) &&
                mention_count[m.name] == 1) {
                const dtd::ElementDecl* target = lookup(m.name);
                if (target != nullptr &&
                    target->content.category == ContentCategory::kPCData &&
                    (target->attributes.empty() ||
                     options.distill_attributed_elements) &&
                    e.attribute(m.name) == nullptr) {
                    distill = true;
                }
            }
            if (!distill) {
                kept.push_back(std::move(m));
                continue;
            }
            bool optional = dtd::is_optional(m.occurrence);
            dtd::AttributeDecl attr;
            attr.name = m.name;
            attr.type = dtd::AttrType::kPCData;
            attr.default_kind = optional ? dtd::AttrDefaultKind::kImplied
                                         : dtd::AttrDefaultKind::kRequired;
            e.attributes.push_back(std::move(attr));
            meta.distilled.push_back({e.name, m.name, m.name, optional, idx});
            removal_candidates.insert(m.name);
        }

        if (single) {
            if (kept.size() == 1) {
                top = std::move(kept.front());
            } else {
                top = Particle::sequence({});
            }
        } else {
            top.children = std::move(kept);
        }
    }

    // Drop distilled #PCDATA declarations that are no longer referenced by
    // any content model (booktitle, title, firstname, lastname in Example 2).
    std::set<std::string> still_referenced;
    for (const auto& e : elements)
        for (const auto& n : e.content.referenced_names())
            still_referenced.insert(n);

    dtd::Dtd out;
    for (auto& e : elements) {
        if (removal_candidates.contains(e.name) &&
            !still_referenced.contains(e.name))
            continue;
        out.add_element(std::move(e));
    }
    return out;
}

namespace {

/// Allocate NESTED relationship names: "N<child>" when unique, otherwise
/// "N<parent>_<child>".
class NestedNamer {
public:
    explicit NestedNamer(const std::vector<std::pair<std::string, std::string>>&
                             parent_child_pairs) {
        for (const auto& [parent, child] : parent_child_pairs)
            ++child_count_[child];
    }

    std::string name(const std::string& parent, const std::string& child) {
        std::string candidate =
            child_count_[child] <= 1 ? "N" + child : "N" + parent + "_" + child;
        int suffix = 1;
        std::string name = candidate;
        while (!used_.insert(name).second)
            name = candidate + std::to_string(++suffix);
        return name;
    }

private:
    std::map<std::string, int> child_count_;
    std::set<std::string> used_;
};

}  // namespace

ConvertedDtd identify_relationships(const dtd::Dtd& in, Metadata& meta,
                                    const MappingOptions&) {
    ConvertedDtd out;

    auto is_virtual = [&](std::string_view name) {
        return meta.group(name) != nullptr;
    };

    // Pre-collect (parent, child) pairs of future NESTED declarations so
    // the namer can detect children nested under several parents.
    std::vector<std::pair<std::string, std::string>> nested_pairs;
    for (const auto& e : in.elements()) {
        if (is_virtual(e.name)) continue;
        if (e.content.category == ContentCategory::kChildren) {
            const Particle& top = e.content.particle;
            auto consider = [&](const Particle& m) {
                if (m.is_element() && !is_virtual(m.name))
                    nested_pairs.emplace_back(e.name, m.name);
            };
            if (top.is_element()) consider(top);
            else for (const auto& m : top.children) consider(m);
        } else if (e.content.category == ContentCategory::kMixed) {
            for (const auto& n : e.content.mixed_names)
                nested_pairs.emplace_back(e.name, n);
        }
    }
    NestedNamer namer(nested_pairs);

    const std::vector<std::string> id_targets = in.id_bearing_elements();

    // Emits the NESTED_GROUP declaration for virtual element `group_name`
    // referenced from `parent` (an element or an enclosing group
    // relationship), then recursively emits chained declarations for group
    // members that are themselves virtual.
    auto emit_group = [&](auto&& self, const std::string& group_name,
                          const std::string& parent, Occurrence occurrence,
                          std::size_t position) -> void {
        const dtd::ElementDecl* g = in.element(group_name);
        NestedGroupDecl decl;
        decl.name = "N" + group_name;
        decl.parent = parent;
        decl.occurrence = occurrence;
        decl.position = position;
        if (g != nullptr) {
            decl.attributes = g->attributes;
            if (g->content.category == ContentCategory::kChildren)
                decl.group = g->content.particle;
        }
        struct Chained {
            std::string name;
            Occurrence occurrence;
            std::size_t position;
        };
        std::vector<Chained> chained;
        // Members fill the position gaps left by attributes distilled out
        // of this group's body (same convention as element content).
        std::set<std::size_t> taken;
        for (const auto& d : meta.distilled)
            if (d.element == group_name) taken.insert(d.position);
        std::size_t next_position = 0;
        for (const auto& gm : decl.group.children) {
            if (!gm.is_element()) continue;
            while (taken.contains(next_position)) ++next_position;
            std::size_t pos = next_position++;
            meta.occurrences.push_back({decl.name, gm.name, gm.occurrence});
            if (is_virtual(gm.name)) {
                decl.virtual_members.push_back(gm.name);
                chained.push_back({gm.name, gm.occurrence, pos});
            }
        }
        const std::string rel_name = decl.name;
        out.nested_groups.push_back(std::move(decl));
        for (const auto& c : chained)
            self(self, c.name, rel_name, c.occurrence, c.position);
    };

    for (const auto& e : in.elements()) {
        if (is_virtual(e.name)) continue;

        ConvertedElement entry;
        entry.name = e.name;
        switch (e.content.category) {
            case ContentCategory::kEmpty: entry.residual = ResidualContent::kEmpty; break;
            case ContentCategory::kAny: entry.residual = ResidualContent::kAny; break;
            case ContentCategory::kPCData: entry.residual = ResidualContent::kPCData; break;
            case ContentCategory::kMixed: entry.residual = ResidualContent::kMixed; break;
            case ContentCategory::kChildren: entry.residual = ResidualContent::kStripped; break;
        }

        // IDREF attributes become REFERENCE declarations; everything else
        // stays in the attribute list.
        for (const auto& a : e.attributes) {
            if (a.type == dtd::AttrType::kIdRef || a.type == dtd::AttrType::kIdRefs) {
                ReferenceDecl ref;
                ref.attribute = a.name;
                ref.source = e.name;
                ref.targets = id_targets;
                ref.multiple = a.type == dtd::AttrType::kIdRefs;
                ref.required = a.required();
                out.references.push_back(std::move(ref));
            } else {
                entry.attributes.push_back(a);
            }
        }

        // Structural relationships.  Relationship positions live on the
        // *pre-distillation* index scale (step 2 removed #PCDATA members
        // but recorded their original positions), so surviving members
        // fill the gaps the distilled ones left — reconstruction can then
        // interleave columns and relationship instances correctly.
        if (e.content.category == ContentCategory::kChildren) {
            const Particle& top = e.content.particle;
            std::vector<const Particle*> members;
            if (top.is_element()) members.push_back(&top);
            else for (const auto& m : top.children) members.push_back(&m);

            std::set<std::size_t> taken;
            for (const auto& d : meta.distilled)
                if (d.element == e.name) taken.insert(d.position);
            std::size_t next_position = 0;
            auto allocate_position = [&] {
                while (taken.contains(next_position)) ++next_position;
                return next_position++;
            };

            for (std::size_t idx = 0; idx < members.size(); ++idx) {
                const Particle& m = *members[idx];
                if (!m.is_element()) continue;  // cannot happen after step 1
                meta.occurrences.push_back({e.name, m.name, m.occurrence});
                std::size_t position = allocate_position();

                if (is_virtual(m.name)) {
                    emit_group(emit_group, m.name, e.name, m.occurrence,
                               position);
                } else {
                    NestedDecl decl;
                    decl.name = namer.name(e.name, m.name);
                    decl.parent = e.name;
                    decl.child = m.name;
                    decl.occurrence = m.occurrence;
                    decl.position = position;
                    out.nested.push_back(std::move(decl));
                }
            }
        } else if (e.content.category == ContentCategory::kMixed) {
            meta.mixed.push_back({e.name, e.content.mixed_names});
            for (std::size_t idx = 0; idx < e.content.mixed_names.size(); ++idx) {
                const std::string& child = e.content.mixed_names[idx];
                NestedDecl decl;
                decl.name = namer.name(e.name, child);
                decl.parent = e.name;
                decl.child = child;
                decl.occurrence = Occurrence::kZeroOrMore;
                decl.position = idx;
                decl.from_mixed = true;
                meta.occurrences.push_back({e.name, child, decl.occurrence});
                out.nested.push_back(std::move(decl));
            }
        }

        out.elements.push_back(std::move(entry));
    }
    return out;
}

er::Model generate_diagram(const ConvertedDtd& in) {
    er::Model model;

    auto map_attribute = [](const dtd::AttributeDecl& a) {
        er::EntityAttribute out;
        out.name = a.name;
        out.type = a.type;
        out.required = a.default_kind == dtd::AttrDefaultKind::kRequired ||
                       a.default_kind == dtd::AttrDefaultKind::kFixed;
        out.origin = a.type == dtd::AttrType::kPCData
                         ? er::AttributeOrigin::kDistilled
                         : er::AttributeOrigin::kDeclared;
        out.enumeration = a.enumeration;
        return out;
    };

    for (const auto& e : in.elements) {
        er::Entity entity;
        entity.name = e.name;
        switch (e.residual) {
            case ResidualContent::kEmpty:
                entity.origin = er::EntityOrigin::kEmptyElement;
                break;
            case ResidualContent::kAny:
                entity.origin = er::EntityOrigin::kAnyElement;
                entity.has_text = true;
                break;
            case ResidualContent::kPCData:
            case ResidualContent::kMixed:
                entity.has_text = true;
                break;
            case ResidualContent::kStripped:
                break;
        }
        for (const auto& a : e.attributes)
            entity.attributes.push_back(map_attribute(a));
        model.add_entity(std::move(entity));
    }

    for (const auto& g : in.nested_groups) {
        er::Relationship rel;
        rel.name = g.name;
        rel.kind = er::RelationshipKind::kNestedGroup;
        rel.parent = g.parent;
        rel.occurrence = g.occurrence;
        bool choice = g.group.kind == ParticleKind::kChoice;
        std::size_t pos = 0;
        for (const auto& m : g.group.children) {
            if (!m.is_element()) continue;
            // A member that is itself a hoisted group appears as an arc to
            // its chained relationship node rather than to an entity.
            std::string member = g.is_virtual_member(m.name) ? "N" + m.name : m.name;
            rel.members.push_back({std::move(member), choice, m.occurrence, pos++});
        }
        for (const auto& a : g.attributes)
            rel.attributes.push_back(map_attribute(a));
        model.add_relationship(std::move(rel));
    }

    for (const auto& n : in.nested) {
        er::Relationship rel;
        rel.name = n.name;
        rel.kind = er::RelationshipKind::kNested;
        rel.parent = n.parent;
        rel.members.push_back({n.child, false, n.occurrence, 0});
        model.add_relationship(std::move(rel));
    }

    for (const auto& r : in.references) {
        er::Relationship rel;
        // Two elements may declare IDREF attributes of the same name;
        // qualify with the source element when needed.
        rel.name = model.relationship(r.attribute) == nullptr
                       ? r.attribute
                       : r.attribute + "_" + r.source;
        rel.kind = er::RelationshipKind::kReference;
        rel.parent = r.source;
        rel.occurrence = r.multiple ? Occurrence::kZeroOrMore
                         : r.required ? Occurrence::kOne
                                      : Occurrence::kOptional;
        std::size_t pos = 0;
        for (const auto& t : r.targets)
            rel.members.push_back({t, /*choice=*/true, Occurrence::kOne, pos++});
        model.add_relationship(std::move(rel));
    }

    return model;
}

}  // namespace xr::mapping
