#include "mapping/converted_dtd.hpp"

#include <algorithm>

namespace xr::mapping {

std::string_view to_string(ResidualContent r) {
    switch (r) {
        case ResidualContent::kStripped: return "()";
        case ResidualContent::kEmpty: return "EMPTY";
        case ResidualContent::kAny: return "ANY";
        case ResidualContent::kPCData: return "(#PCDATA)";
        case ResidualContent::kMixed: return "(#PCDATA | ...)*";
    }
    return "?";
}

const ConvertedElement* ConvertedDtd::element(std::string_view name) const {
    for (const auto& e : elements)
        if (e.name == name) return &e;
    return nullptr;
}

const NestedGroupDecl* ConvertedDtd::nested_group(std::string_view name) const {
    for (const auto& g : nested_groups)
        if (g.name == name) return &g;
    return nullptr;
}

const NestedDecl* ConvertedDtd::nested_decl(std::string_view name) const {
    for (const auto& n : nested)
        if (n.name == name) return &n;
    return nullptr;
}

std::vector<std::string> ConvertedDtd::relationships_of(
    std::string_view parent) const {
    struct Item {
        std::size_t position;
        std::string name;
    };
    std::vector<Item> items;
    for (const auto& g : nested_groups)
        if (g.parent == parent) items.push_back({g.position, g.name});
    for (const auto& n : nested)
        if (n.parent == parent) items.push_back({n.position, n.name});
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.position < b.position; });
    std::vector<std::string> out;
    for (auto& i : items) out.push_back(std::move(i.name));
    return out;
}

std::string ConvertedDtd::to_string() const {
    std::string out;
    for (const auto& e : elements) {
        out += "<!ELEMENT " + e.name + " " +
               std::string(xr::mapping::to_string(e.residual)) + ">\n";
        if (!e.attributes.empty()) {
            out += "<!ATTLIST " + e.name;
            if (e.attributes.size() == 1) {
                out += " " + e.attributes.front().to_string();
            } else {
                for (const auto& a : e.attributes) out += "\n    " + a.to_string();
            }
            out += ">\n";
        }
        // Relationship declarations under this element, in schema order.
        struct RelItem {
            std::size_t position;
            std::string text;
        };
        std::vector<RelItem> rels;
        for (const auto& g : nested_groups) {
            if (g.parent != e.name) continue;
            std::string text =
                "<!NESTED_GROUP " + g.name + " " + g.parent + " " +
                g.group.to_string() + ">";
            for (const auto& a : g.attributes)
                text += "\n<!ATTLIST " + g.name + " " + a.to_string() + ">";
            rels.push_back({g.position, std::move(text)});
        }
        for (const auto& n : nested) {
            if (n.parent != e.name) continue;
            rels.push_back({n.position, "<!NESTED " + n.name + " " + n.parent +
                                            " " + n.child + ">"});
        }
        std::sort(rels.begin(), rels.end(), [](const RelItem& a, const RelItem& b) {
            return a.position < b.position;
        });
        for (const auto& r : rels) out += r.text + "\n";

        for (const auto& r : references) {
            if (r.source != e.name) continue;
            out += "<!REFERENCE " + r.attribute + " " + r.source + " (";
            for (std::size_t i = 0; i < r.targets.size(); ++i) {
                if (i != 0) out += " | ";
                out += r.targets[i];
            }
            out += ")>\n";
        }
    }
    return out;
}

}  // namespace xr::mapping
