// The four steps of the paper's DTD→ER algorithm (Figure 1):
//
//   1. define_group_elements — hoist every parenthesized group into a fresh
//      virtual element (G1, G2, ...), repeated until no element contains a
//      group;
//   2. distill_attributes — move #PCDATA subelements occurring at most once
//      into the parent's attribute list ('?' → #IMPLIED, else #REQUIRED);
//   3. identify_relationships — rewrite the structure into explicit
//      NESTED_GROUP / NESTED / REFERENCE declarations (the converted DTD of
//      Example 2);
//   4. generate_diagram — emit the ER model (Figure 2).
//
// Each step is exposed separately so tests can check intermediate results
// against the paper and benches can time stages; map_dtd() in pipeline.hpp
// chains them.
#pragma once

#include "dtd/dtd.hpp"
#include "er/model.hpp"
#include "mapping/converted_dtd.hpp"
#include "mapping/metadata.hpp"

namespace xr::mapping {

struct MappingOptions {
    /// Prefix for virtual group elements (paper uses "G").
    std::string group_prefix = "G";
    /// Collapse groups with a single member into the member (composing
    /// occurrence indicators) before hoisting.  '((a | b)*)' thereby hoists
    /// only the choice, matching the paper's editor example.
    bool collapse_unary_groups = true;
    /// Treat a top-level choice group (or a repeated top-level group) as a
    /// group to hoist, so its semantics survive relationship extraction.
    bool hoist_top_level_choice = true;
    /// Step 2: also distill #PCDATA subelements that carry attribute lists
    /// of their own (lossy — their attributes would be dropped).
    bool distill_attributed_elements = false;
    /// Step 2: also distill members of choice groups (changes choice arity;
    /// off by default).
    bool distill_from_choice = false;
};

/// Step 1.  Returns a new DTD in which every group is a virtual element.
[[nodiscard]] dtd::Dtd define_group_elements(const dtd::Dtd& in, Metadata& meta,
                                             const MappingOptions& options = {});

/// Step 2.  Returns a new DTD with qualifying #PCDATA subelements moved
/// into attribute lists; their declarations are dropped once unreferenced.
[[nodiscard]] dtd::Dtd distill_attributes(const dtd::Dtd& in, Metadata& meta,
                                          const MappingOptions& options = {});

/// Step 3.  Produces the converted DTD with explicit relationships.
[[nodiscard]] ConvertedDtd identify_relationships(
    const dtd::Dtd& in, Metadata& meta, const MappingOptions& options = {});

/// Step 4.  Produces the ER model.
[[nodiscard]] er::Model generate_diagram(const ConvertedDtd& in);

}  // namespace xr::mapping
