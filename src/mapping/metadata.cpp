#include "mapping/metadata.hpp"

namespace xr::mapping {

const GroupElement* Metadata::group(std::string_view name) const {
    for (const auto& g : groups)
        if (g.name == name) return &g;
    return nullptr;
}

std::optional<dtd::Occurrence> Metadata::occurrence_of(
    std::string_view parent, std::string_view particle) const {
    for (const auto& o : occurrences)
        if (o.parent == parent && o.particle == particle) return o.occurrence;
    return std::nullopt;
}

std::vector<const DistilledAttribute*> Metadata::distilled_of(
    std::string_view element) const {
    std::vector<const DistilledAttribute*> out;
    for (const auto& d : distilled)
        if (d.element == element) out.push_back(&d);
    return out;
}

std::string Metadata::to_string() const {
    std::string out;
    for (const auto& s : schema_order) {
        out += "order " + s.element + ":";
        for (const auto& c : s.children_in_order) out += " " + c;
        out += "\n";
    }
    for (const auto& o : occurrences) {
        out += "occurrence " + o.parent + "/" + o.particle + ": '" +
               std::string(dtd::to_string(o.occurrence)) + "'\n";
    }
    for (const auto& d : distilled) {
        out += "distilled " + d.element + "/@" + d.attribute + " <- " +
               d.original_child + (d.optional ? " (optional)" : "") + " @" +
               std::to_string(d.position) + "\n";
    }
    for (const auto& g : groups) {
        out += "group " + g.name + " from " + g.parent + " " + g.particle_text +
               std::string(dtd::to_string(g.occurrence)) + " @" +
               std::to_string(g.position) + "\n";
    }
    for (const auto& m : mixed) {
        out += "mixed " + m.element + ":";
        for (const auto& n : m.members) out += " " + n;
        out += "\n";
    }
    return out;
}

}  // namespace xr::mapping
