// Graphviz DOT export for ER models — regenerates the paper's Figure 2.
//
// Rendering follows classic ER notation: rectangles for entities, diamonds
// for relationship nodes, ellipses for attributes; arcs out of choice
// groups carry the paper's circled-plus marker as an edge label.
#pragma once

#include <string>

#include "er/model.hpp"

namespace xr::er {

struct DotOptions {
    /// Render attribute ellipses (Figure 2 shows them; large diagrams may
    /// prefer to drop them).
    bool attributes = true;
    /// Graph title.
    std::string title;
};

[[nodiscard]] std::string to_dot(const Model& model, const DotOptions& options = {});

}  // namespace xr::er
