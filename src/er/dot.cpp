#include "er/dot.hpp"

namespace xr::er {

namespace {
std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    out += '"';
    return out;
}
}  // namespace

std::string to_dot(const Model& model, const DotOptions& options) {
    std::string out = "graph er {\n";
    if (!options.title.empty())
        out += "  label=" + quote(options.title) + ";\n  labelloc=t;\n";
    out += "  layout=dot;\n  rankdir=LR;\n";
    out += "  node [fontsize=10];\n";

    for (const auto& e : model.entities()) {
        out += "  " + quote(e.name) + " [shape=box];\n";
        if (options.attributes) {
            for (const auto& a : e.attributes) {
                std::string node = e.name + "." + a.name;
                out += "  " + quote(node) + " [shape=ellipse, label=" +
                       quote(a.name) + "];\n";
                out += "  " + quote(e.name) + " -- " + quote(node) + ";\n";
            }
        }
    }

    for (const auto& r : model.relationships()) {
        out += "  " + quote(r.name) + " [shape=diamond];\n";
        out += "  " + quote(r.parent) + " -- " + quote(r.name);
        if (r.occurrence != dtd::Occurrence::kOne)
            out += " [label=" + quote(std::string(dtd::to_string(r.occurrence))) + "]";
        out += ";\n";
        for (const auto& m : r.members) {
            out += "  " + quote(r.name) + " -- " + quote(m.entity);
            std::string label;
            if (m.choice) label += "(+)";
            label += dtd::to_string(m.occurrence);
            if (!label.empty()) out += " [label=" + quote(label) + "]";
            out += ";\n";
        }
        if (options.attributes) {
            for (const auto& a : r.attributes) {
                std::string node = r.name + "." + a.name;
                out += "  " + quote(node) + " [shape=ellipse, label=" +
                       quote(a.name) + "];\n";
                out += "  " + quote(r.name) + " -- " + quote(node) + ";\n";
            }
        }
    }

    out += "}\n";
    return out;
}

}  // namespace xr::er
