// Entity-Relationship model — the target of the paper's mapping (step 4,
// "Generate Diagram").
//
// Entities correspond to surviving element types; relationship nodes come
// in the paper's three kinds (nested group / nested / reference).  Arcs out
// of a relationship node may carry the paper's circled-plus choice marker
// (rendered '(+)'), and every arc records the occurrence indicator of the
// member it leads to, which downstream becomes cardinality metadata.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "dtd/dtd.hpp"

namespace xr::er {

/// Provenance of an entity attribute.
enum class AttributeOrigin {
    kDeclared,   ///< from an <!ATTLIST ...> in the source DTD
    kDistilled,  ///< hoisted #PCDATA subelement (mapping step 2)
    kImplicit,   ///< synthesized (e.g. character data of mixed elements)
};

struct EntityAttribute {
    std::string name;
    dtd::AttrType type = dtd::AttrType::kCData;
    bool required = false;
    AttributeOrigin origin = AttributeOrigin::kDeclared;
    std::vector<std::string> enumeration;  ///< for enumerated types

    friend bool operator==(const EntityAttribute&, const EntityAttribute&) = default;
};

/// Why the entity exists in the diagram.
enum class EntityOrigin {
    kElement,       ///< ordinary element type
    kEmptyElement,  ///< declared EMPTY (paper: Existence)
    kAnyElement,    ///< declared ANY
};

struct Entity {
    std::string name;
    EntityOrigin origin = EntityOrigin::kElement;
    std::vector<EntityAttribute> attributes;
    /// True when the element holds character data (PCDATA or mixed); the
    /// loader stores it in an implicit value column.
    bool has_text = false;

    [[nodiscard]] const EntityAttribute* attribute(std::string_view name) const;
};

enum class RelationshipKind {
    kNestedGroup,  ///< NESTED_GROUP — group hoisted from a parent element
    kNested,       ///< NESTED — parent/subelement link
    kReference,    ///< REFERENCE — IDREF attribute to ID-bearing entities
};

[[nodiscard]] std::string_view to_string(RelationshipKind k);

/// An arc from a relationship node to a member entity.
struct Arc {
    std::string entity;
    /// The paper's circled-plus marker on arcs leaving choice groups and
    /// reference relationships.
    bool choice = false;
    /// Occurrence of this member within the relationship (metadata).
    dtd::Occurrence occurrence = dtd::Occurrence::kOne;
    /// Schema ordering: position of the member within the group.
    std::size_t position = 0;
};

struct Relationship {
    std::string name;  ///< NG1, Nauthor, authorid, ...
    RelationshipKind kind = RelationshipKind::kNested;
    std::string parent;  ///< the entity the arc comes in from
    std::vector<Arc> members;
    /// Relationship attributes (paper step 4a: attributes associated with a
    /// nested group become relationship attributes).
    std::vector<EntityAttribute> attributes;
    /// Occurrence of the whole relationship under the parent (metadata):
    /// e.g. NG2 in 'article (title, (author, affiliation?)+, ...)' is '+'.
    dtd::Occurrence occurrence = dtd::Occurrence::kOne;

    [[nodiscard]] const Arc* member(std::string_view entity) const;
};

/// The ER diagram: ordered entities and relationship nodes.
class Model {
public:
    Entity& add_entity(Entity e);
    Relationship& add_relationship(Relationship r);

    [[nodiscard]] const Entity* entity(std::string_view name) const;
    [[nodiscard]] Entity* entity(std::string_view name);
    [[nodiscard]] const Relationship* relationship(std::string_view name) const;

    [[nodiscard]] const std::vector<Entity>& entities() const { return entities_; }
    [[nodiscard]] const std::vector<Relationship>& relationships() const {
        return relationships_;
    }

    /// Relationships in which `entity` participates (as parent or member).
    [[nodiscard]] std::vector<const Relationship*> relationships_of(
        std::string_view entity) const;

    /// Total attribute count across entities (diagram size metric).
    [[nodiscard]] std::size_t attribute_count() const;

    /// Human-readable structural summary for golden tests / examples.
    [[nodiscard]] std::string to_string() const;

private:
    std::vector<Entity> entities_;
    std::vector<Relationship> relationships_;
};

}  // namespace xr::er
