#include "er/model.hpp"

#include <algorithm>

namespace xr::er {

std::string_view to_string(RelationshipKind k) {
    switch (k) {
        case RelationshipKind::kNestedGroup: return "NESTED_GROUP";
        case RelationshipKind::kNested: return "NESTED";
        case RelationshipKind::kReference: return "REFERENCE";
    }
    return "?";
}

const EntityAttribute* Entity::attribute(std::string_view attr_name) const {
    for (const auto& a : attributes)
        if (a.name == attr_name) return &a;
    return nullptr;
}

const Arc* Relationship::member(std::string_view entity) const {
    for (const auto& m : members)
        if (m.entity == entity) return &m;
    return nullptr;
}

Entity& Model::add_entity(Entity e) {
    if (entity(e.name) != nullptr)
        throw SchemaError("duplicate ER entity '" + e.name + "'");
    entities_.push_back(std::move(e));
    return entities_.back();
}

Relationship& Model::add_relationship(Relationship r) {
    if (relationship(r.name) != nullptr)
        throw SchemaError("duplicate ER relationship '" + r.name + "'");
    relationships_.push_back(std::move(r));
    return relationships_.back();
}

const Entity* Model::entity(std::string_view name) const {
    for (const auto& e : entities_)
        if (e.name == name) return &e;
    return nullptr;
}

Entity* Model::entity(std::string_view name) {
    for (auto& e : entities_)
        if (e.name == name) return &e;
    return nullptr;
}

const Relationship* Model::relationship(std::string_view name) const {
    for (const auto& r : relationships_)
        if (r.name == name) return &r;
    return nullptr;
}

std::vector<const Relationship*> Model::relationships_of(
    std::string_view entity) const {
    std::vector<const Relationship*> out;
    for (const auto& r : relationships_) {
        if (r.parent == entity || r.member(entity) != nullptr)
            out.push_back(&r);
    }
    return out;
}

std::size_t Model::attribute_count() const {
    std::size_t n = 0;
    for (const auto& e : entities_) n += e.attributes.size();
    return n;
}

std::string Model::to_string() const {
    std::string out;
    for (const auto& e : entities_) {
        out += "entity " + e.name;
        if (e.origin == EntityOrigin::kEmptyElement) out += " [empty]";
        if (e.origin == EntityOrigin::kAnyElement) out += " [any]";
        if (e.has_text) out += " [text]";
        out += "\n";
        for (const auto& a : e.attributes) {
            out += "  attr " + a.name;
            if (a.required) out += " required";
            if (a.origin == AttributeOrigin::kDistilled) out += " (distilled)";
            if (a.origin == AttributeOrigin::kImplicit) out += " (implicit)";
            out += "\n";
        }
    }
    for (const auto& r : relationships_) {
        out += std::string(xr::er::to_string(r.kind)) + " " + r.name + ": " +
               r.parent + " ->";
        for (const auto& m : r.members) {
            out += " " + m.entity;
            out += dtd::to_string(m.occurrence);
            if (m.choice) out += "(+)";
        }
        if (r.occurrence != dtd::Occurrence::kOne)
            out += "  [occurs " + std::string(dtd::to_string(r.occurrence)) + "]";
        out += "\n";
        for (const auto& a : r.attributes)
            out += "  rel-attr " + a.name + (a.required ? " required" : "") + "\n";
    }
    return out;
}

}  // namespace xr::er
