#include "rdb/database.hpp"

#include <algorithm>

namespace xr::rdb {

Table& Database::create_table(TableDef def) {
    if (table(def.name) != nullptr)
        throw SchemaError("table '" + def.name + "' already exists");
    tables_.push_back(std::make_unique<Table>(std::move(def)));
    if (bulk_) tables_.back()->begin_bulk();
    for (std::size_t d = 0; d < unit_depth_; ++d) tables_.back()->begin_unit();
    return *tables_.back();
}

void Database::begin_unit() {
    for (auto& t : tables_) t->begin_unit();
    ++unit_depth_;
}

void Database::commit_unit() {
    if (unit_depth_ == 0)
        throw SchemaError("commit_unit without an open load unit");
    for (auto& t : tables_) t->commit_unit();
    --unit_depth_;
}

void Database::rollback_unit() {
    if (unit_depth_ == 0)
        throw SchemaError("rollback_unit without an open load unit");
    for (auto& t : tables_) t->rollback_unit();
    --unit_depth_;
    bulk_ = false;  // an interrupted merge leaves no bracket behind
}

void Database::begin_bulk() {
    bulk_ = true;
    for (auto& t : tables_) t->begin_bulk();
}

void Database::end_bulk() {
    bulk_ = false;
    for (auto& t : tables_) t->end_bulk();
}

void Database::drop_table(std::string_view name) {
    if (unit_depth_ > 0)
        throw SchemaError("cannot drop '" + std::string(name) +
                          "' while a load unit is open");
    auto it = std::find_if(tables_.begin(), tables_.end(),
                           [&](const auto& t) { return t->name() == name; });
    if (it == tables_.end())
        throw SchemaError("no table '" + std::string(name) + "' to drop");
    tables_.erase(it);
}

Table* Database::table(std::string_view name) {
    for (auto& t : tables_)
        if (t->name() == name) return t.get();
    return nullptr;
}

const Table* Database::table(std::string_view name) const {
    for (const auto& t : tables_)
        if (t->name() == name) return t.get();
    return nullptr;
}

Table& Database::require(std::string_view name) {
    Table* t = table(name);
    if (t == nullptr) throw SchemaError("no table '" + std::string(name) + "'");
    return *t;
}

const Table& Database::require(std::string_view name) const {
    const Table* t = table(name);
    if (t == nullptr) throw SchemaError("no table '" + std::string(name) + "'");
    return *t;
}

std::vector<std::string> Database::table_names() const {
    std::vector<std::string> out;
    out.reserve(tables_.size());
    for (const auto& t : tables_) out.push_back(t->name());
    return out;
}

std::vector<std::string> Database::check_foreign_keys() const {
    std::vector<std::string> violations;
    for (const auto& fk : fks_) {
        const Table* src = table(fk.table);
        const Table* dst = table(fk.ref_table);
        if (src == nullptr || dst == nullptr) {
            violations.push_back("foreign key references missing table: " +
                                 fk.table + " -> " + fk.ref_table);
            continue;
        }
        int col = src->def().column_index(fk.column);
        if (col < 0) {
            violations.push_back("foreign key on missing column " + fk.table +
                                 "." + fk.column);
            continue;
        }
        for (const auto& row : src->rows()) {
            const Value& v = row[col];
            if (v.is_null()) continue;
            if (dst->find_pk(v.as_integer()) == nullptr) {
                violations.push_back(fk.table + "." + fk.column + "=" +
                                     v.to_string() + " has no match in " +
                                     fk.ref_table);
                if (violations.size() > 64) return violations;
            }
        }
    }
    return violations;
}

std::size_t Database::total_rows() const {
    std::size_t n = 0;
    for (const auto& t : tables_) n += t->row_count();
    return n;
}

std::size_t Database::memory_bytes() const {
    std::size_t n = 0;
    for (const auto& t : tables_) n += t->memory_bytes();
    return n;
}

}  // namespace xr::rdb
