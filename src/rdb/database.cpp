#include "rdb/database.hpp"

#include <algorithm>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <string>

#include "common/fault.hpp"
#include "rdb/snapshot.hpp"
#include "rdb/wal.hpp"

namespace xr::rdb {

namespace fs = std::filesystem;

const Table& DatabaseVersion::require(std::string_view name) const {
    const Table* t = table(name);
    if (t == nullptr) throw SchemaError("no table '" + std::string(name) + "'");
    return *t;
}

const Table* ReadView::table(std::string_view name) const {
    return version_ != nullptr ? version_->table(name) : db_->table(name);
}

const Table& ReadView::require(std::string_view name) const {
    return version_ != nullptr ? version_->require(name) : db_->require(name);
}

std::vector<std::string> ReadView::table_names() const {
    return version_ != nullptr ? version_->table_names() : db_->table_names();
}

const std::vector<ForeignKeyDef>& ReadView::foreign_keys() const {
    return version_ != nullptr ? version_->foreign_keys() : db_->foreign_keys();
}

std::uint64_t ReadView::stats_epoch() const {
    return version_ != nullptr ? version_->stats_epoch() : db_->stats_epoch();
}

std::string MvccStats::to_string() const {
    std::ostringstream out;
    out << "mvcc: " << versions_published << " version(s) published, "
        << versions_live << " live, " << versions_retired << " retired; "
        << tables_republished << " table clone(s), " << chunks_cowed
        << " chunk(s) and " << indexes_cowed << " index(es) copied on write";
    return out.str();
}

Database::Database() : published_(std::make_shared<DatabaseVersion>()) {}

Database::~Database() {
    // A database destroyed with a unit still open (error paths, tests)
    // would otherwise destroy a locked writer mutex.
    if (unit_depth_ > 0) writer_mu_.unlock();
}

// The mutexes and watermark are per-object (a std::mutex cannot move);
// moving is only legal with no open unit and no readers, so the fresh
// mutexes of the destination are equivalent to the source's idle ones.
Database::Database(Database&& other) noexcept
    : tables_(std::move(other.tables_)),
      fks_(std::move(other.fks_)),
      bulk_(other.bulk_),
      unit_depth_(other.unit_depth_),
      published_(std::move(other.published_)),
      version_registry_(std::move(other.version_registry_)),
      versions_published_(other.versions_published_),
      tables_republished_(other.tables_republished_),
      dir_(std::move(other.dir_)),
      dopts_(other.dopts_),
      wal_seq_(other.wal_seq_),
      wal_(std::move(other.wal_)) {
    commit_watermark_.store(
        other.commit_watermark_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    stats_epoch_.store(other.stats_epoch_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    other.bulk_ = false;
    other.unit_depth_ = 0;
    other.wal_seq_ = 0;
    other.published_ = std::make_shared<DatabaseVersion>();
    other.versions_published_ = 0;
    other.tables_republished_ = 0;
}

Database& Database::operator=(Database&& other) noexcept {
    if (this == &other) return *this;
    tables_ = std::move(other.tables_);
    fks_ = std::move(other.fks_);
    bulk_ = other.bulk_;
    unit_depth_ = other.unit_depth_;
    published_ = std::move(other.published_);
    version_registry_ = std::move(other.version_registry_);
    versions_published_ = other.versions_published_;
    tables_republished_ = other.tables_republished_;
    dir_ = std::move(other.dir_);
    dopts_ = other.dopts_;
    wal_seq_ = other.wal_seq_;
    wal_ = std::move(other.wal_);
    commit_watermark_.store(
        other.commit_watermark_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    stats_epoch_.store(other.stats_epoch_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    other.bulk_ = false;
    other.unit_depth_ = 0;
    other.wal_seq_ = 0;
    other.published_ = std::make_shared<DatabaseVersion>();
    other.versions_published_ = 0;
    other.tables_republished_ = 0;
    return *this;
}

void Database::publish_version() {
    auto version = std::make_shared<DatabaseVersion>();
    version->watermark_ = commit_watermark_.load(std::memory_order_relaxed);
    version->stats_epoch_ = stats_epoch_.load(std::memory_order_relaxed);
    version->fks_ = fks_;
    version->tables_.reserve(tables_.size());
    for (auto& t : tables_) {
        if (t->version_dirty()) ++tables_republished_;
        version->tables_.push_back(t->publish());
    }
    std::shared_ptr<const DatabaseVersion> frozen = std::move(version);
    std::lock_guard<std::mutex> guard(version_mu_);
    published_ = frozen;
    ++versions_published_;
    version_registry_.erase(
        std::remove_if(version_registry_.begin(), version_registry_.end(),
                       [](const auto& w) { return w.expired(); }),
        version_registry_.end());
    version_registry_.push_back(frozen);
}

MvccStats Database::mvcc_stats() const {
    MvccStats stats;
    {
        std::lock_guard<std::mutex> guard(version_mu_);
        stats.versions_published = versions_published_;
        for (const auto& w : version_registry_)
            if (!w.expired()) ++stats.versions_live;
        stats.versions_retired = versions_published_ - stats.versions_live;
        stats.tables_republished = tables_republished_;
    }
    // Per-table COW counters are writer-side state; reading them here is
    // advisory (call quiesced for exact numbers).
    for (const auto& t : tables_) {
        stats.chunks_cowed += t->chunks_cowed();
        stats.indexes_cowed += t->indexes_cowed();
    }
    return stats;
}

bool SalvageReport::any() const {
    return snapshot_sections_dropped > 0 || snapshot_bytes_dropped > 0 ||
           wal_records_skipped > 0 || wal_bytes_dropped > 0 ||
           wal_segments_missing > 0 || docs_quarantined > 0 || rows_purged > 0;
}

std::string SalvageReport::to_string() const {
    if (!attempted) return "salvage: not attempted";
    if (!any()) return "salvage: nothing to repair";
    std::ostringstream out;
    out << "salvage:";
    if (snapshot_sections_dropped > 0)
        out << " " << snapshot_sections_dropped << " snapshot section(s) ("
            << snapshot_bytes_dropped << " bytes) dropped,";
    if (wal_bytes_dropped > 0)
        out << " " << wal_bytes_dropped << " unreadable WAL byte(s) dropped,";
    if (wal_records_skipped > 0)
        out << " " << wal_records_skipped << " WAL record(s) skipped,";
    if (wal_segments_missing > 0)
        out << " " << wal_segments_missing << " WAL segment(s) missing,";
    out << " " << docs_quarantined << " document(s) quarantined, " << rows_purged
        << " row(s) purged";
    return out.str();
}

std::string RecoveryReport::to_string() const {
    std::ostringstream out;
    out << "recovered '" << dir << "': ";
    if (snapshot_path.empty())
        out << "no snapshot";
    else
        out << "snapshot seq " << snapshot_seq << " (" << tables_restored
            << " tables)";
    if (snapshots_skipped > 0)
        out << ", " << snapshots_skipped << " corrupt snapshot(s) skipped";
    out << ", " << records_replayed << " WAL record(s) across " << wal_segments
        << " segment(s)";
    if (torn_bytes_dropped > 0)
        out << ", " << torn_bytes_dropped << " torn byte(s) dropped";
    if (units_rolled_back > 0)
        out << ", " << units_rolled_back << " uncommitted unit(s) rolled back";
    out << "; " << rows_restored << " row(s) live";
    if (salvage.attempted && salvage.any()) out << "; " << salvage.to_string();
    return out.str();
}

RecoveryReport Database::open(const std::string& dir,
                              const DurabilityOptions& opts) {
    if (!tables_.empty() || wal_ != nullptr || unit_depth_ != 0)
        throw SchemaError("Database::open requires a fresh, empty database");
    fs::create_directories(dir);

    RecoveryReport report;
    report.dir = dir;
    const bool salvage = opts.recovery == RecoveryMode::kSalvage;
    SalvageReport& sr = report.salvage;
    sr.attempted = salvage;

    std::vector<std::uint64_t> snaps;
    std::vector<std::uint64_t> wals;
    for (const auto& entry : fs::directory_iterator(dir)) {
        std::uint64_t seq = 0;
        std::string name = entry.path().filename().string();
        if (parse_seq(name, "snapshot-", ".xrs", seq))
            snaps.push_back(seq);
        else if (parse_seq(name, "wal-", ".log", seq))
            wals.push_back(seq);
    }
    std::sort(snaps.begin(), snaps.end());
    std::sort(wals.begin(), wals.end());

    // Recover into a scratch database so a failure midway never leaves
    // *this half-populated.
    Database scratch;

    // Newest snapshot whose checksums verify wins; corrupt ones are
    // skipped, falling back to an older image plus a longer replay.
    std::uint64_t base = 0;
    bool have_snapshot = false;
    for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
        std::string path = snapshot_file(dir, *it);
        Database candidate;
        try {
            // Qualified: the unqualified name resolves to the
            // Database::read_snapshot() member in this scope.
            xr::rdb::read_snapshot(path, candidate);
        } catch (const Error&) {
            ++report.snapshots_skipped;
            continue;
        }
        scratch = std::move(candidate);
        base = *it;
        have_snapshot = true;
        report.snapshot_path = std::move(path);
        report.snapshot_seq = base;
        break;
    }
    // No snapshot read cleanly.  Strict recovery can still rebuild from
    // WAL segments alone; salvage first tries to keep what a partial
    // read of the newest damaged snapshot yields (a clean *older*
    // snapshot plus full replay is lossless and already preferred above).
    if (!have_snapshot && report.snapshots_skipped > 0) {
        if (salvage) {
            for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
                std::string path = snapshot_file(dir, *it);
                Database candidate;
                SalvageReport trial;
                try {
                    read_snapshot_salvage(path, candidate, trial);
                } catch (const Error& e) {
                    sr.notes.push_back("unsalvageable snapshot '" + path +
                                       "': " + e.bare_message());
                    continue;
                }
                scratch = std::move(candidate);
                base = *it;
                have_snapshot = true;
                report.snapshot_path = std::move(path);
                report.snapshot_seq = base;
                sr.snapshot_sections_dropped += trial.snapshot_sections_dropped;
                sr.snapshot_bytes_dropped += trial.snapshot_bytes_dropped;
                sr.notes.insert(sr.notes.end(), trial.notes.begin(),
                                trial.notes.end());
                break;
            }
        }
        if (!have_snapshot && wals.empty())
            throw CorruptionError(
                "cannot recover '" + dir +
                    "': every snapshot is corrupt and no WAL segments exist",
                dir, 0, "recovery");
    }

    // Replay wal-base .. wal-max in order.  Segments are created eagerly
    // at open/checkpoint, so a hole in that range means a file was lost
    // and the chain to the present is broken.
    if (!wals.empty() && wals.back() >= base) {
        std::uint64_t max_seq = wals.back();
        for (std::uint64_t seq = base; seq <= max_seq; ++seq) {
            std::string path = wal_file(dir, seq);
            if (!fs::exists(path)) {
                if (!salvage)
                    throw CorruptionError(
                        "cannot recover '" + dir + "': WAL segment " +
                            std::to_string(seq) +
                            " is missing from the chain (snapshot seq " +
                            std::to_string(base) + ", newest segment " +
                            std::to_string(max_seq) + ")",
                        path, 0, "recovery");
                ++sr.wal_segments_missing;
                sr.notes.push_back("WAL segment " + std::to_string(seq) +
                                   " missing from the chain");
                continue;
            }
            WalReplayMode mode =
                salvage ? WalReplayMode::kSalvage
                        : (seq == max_seq ? WalReplayMode::kTail
                                          : WalReplayMode::kMidChain);
            WalReplayStats stats =
                replay_wal(path, scratch, mode, salvage ? &sr : nullptr);
            ++report.wal_segments;
            report.records_replayed += stats.records;
            report.torn_bytes_dropped += stats.torn_bytes;
        }
    }

    // Units still open at end-of-log never committed; discard them the
    // same way the in-memory machinery would have.
    while (scratch.in_unit()) {
        scratch.rollback_unit();
        ++report.units_rolled_back;
    }

    tables_ = std::move(scratch.tables_);
    fks_ = std::move(scratch.fks_);

    dir_ = dir;
    dopts_ = opts;
    wal_seq_ = wals.empty() ? base : std::max(base, wals.back());

    if (salvage) {
        // Repair pass: quarantine and purge every document whose
        // invariants the surviving data breaks.  The mutations are
        // unlogged (no WAL is attached yet); the checkpoint below makes
        // them durable and rotates the damaged files out of the chain —
        // a salvage open always ends on a freshly verified snapshot, so
        // the next strict open never re-reads damaged files.
        salvage_repair(*this, sr);
        checkpoint();
    }

    report.tables_restored = tables_.size();
    report.rows_restored = total_rows();

    if (opts.use_wal) {
        wal_ = std::make_unique<Wal>(wal_file(dir_, wal_seq_),
                                     opts.sync_on_commit);
        for (auto& t : tables_) t->set_mutation_log(wal_.get());
    }
    if (!salvage) {
        load_stats_catalog();
    } else {
        try {
            load_stats_catalog();
        } catch (const Error&) {
            // A salvaged xrel_stats can be self-consistent yet carry the
            // wrong column types; statistics are advisory, so drop the
            // catalog rather than fail the open.
            sr.notes.push_back(
                "stats catalog unreadable after salvage — dropped");
            drop_table(kStatsTable);
            load_stats_catalog();
        }
    }
    // Recovery is complete: publish the recovered state as the first
    // epoch, so snapshots opened from here on read it latch-free.
    publish_version();
    return report;
}

SnapshotStats Database::checkpoint() {
    if (!durable())
        throw SchemaError("checkpoint() requires an open() data directory");
    if (unit_depth_ != 0)
        throw SchemaError("cannot checkpoint while a load unit is open");
    // Writer-exclusive for the whole snapshot + WAL rotation: the image
    // must be a single consistent state.  No new epoch is published (the
    // logical contents did not change); readers keep flowing on pinned
    // versions throughout.
    std::lock_guard<std::mutex> guard(writer_mu_);
    if (wal_ != nullptr) wal_->flush(/*sync=*/true);

    std::uint64_t next_seq = wal_seq_ + 1;
    const std::string snap_path = snapshot_file(dir_, next_seq);
    SnapshotStats stats = write_snapshot(*this, snap_path);

    if (dopts_.verify_checkpoints) {
        // Read the image back before the WAL rotates: a snapshot that
        // cannot be re-read (disk fault, write-path bug) must not become
        // the recovery chain's new base.  On failure the file is removed
        // and the previous snapshot + WAL stay authoritative.
        try {
            fault::maybe_fail("snapshot.verify");
            Database check;
            xr::rdb::read_snapshot(snap_path, check);
            if (check.tables_.size() != tables_.size())
                throw CorruptionError(
                    "checkpoint verification: snapshot holds " +
                        std::to_string(check.tables_.size()) +
                        " table(s), database has " +
                        std::to_string(tables_.size()),
                    snap_path, 0, "verify");
            for (auto& t : tables_) {
                const Table* c = check.table(t->def().name);
                if (c == nullptr)
                    throw CorruptionError("checkpoint verification: table '" +
                                              t->def().name +
                                              "' missing from the snapshot",
                                          snap_path, 0, "verify");
                if (c->row_count() != t->row_count())
                    throw CorruptionError(
                        "checkpoint verification: table '" + t->def().name +
                            "' has " + std::to_string(c->row_count()) +
                            " row(s) in the snapshot, " +
                            std::to_string(t->row_count()) + " in memory",
                        snap_path, 0, "verify");
                if (c->peek_next_pk() != t->peek_next_pk())
                    throw CorruptionError(
                        "checkpoint verification: table '" + t->def().name +
                            "' pk counter disagrees with the snapshot",
                        snap_path, 0, "verify");
            }
        } catch (...) {
            std::error_code ec;
            fs::remove(snap_path, ec);
            throw;
        }
    }
    // The snapshot is durable under its real name; rotate the WAL so the
    // new segment starts exactly at the image it chains from.
    if (wal_ != nullptr) {
        for (auto& t : tables_) t->set_mutation_log(nullptr);
        wal_.reset();
        wal_ = std::make_unique<Wal>(wal_file(dir_, next_seq),
                                     dopts_.sync_on_commit);
        for (auto& t : tables_) t->set_mutation_log(wal_.get());
    }
    wal_seq_ = next_seq;
    return stats;
}

IntegrityReport Database::verify() const {
    // Writer-exclusive so every invariant is checked against one live
    // state (including mutations not yet published as an epoch); readers
    // keep flowing on pinned versions meanwhile.
    std::lock_guard<std::mutex> guard(writer_mu_);
    return verify_database(*this);
}

void Database::flush_wal() {
    if (wal_ != nullptr) wal_->flush(/*sync=*/true);
}

std::uint64_t Database::wal_bytes_appended() const {
    return wal_ != nullptr ? wal_->bytes_appended() : 0;
}

std::uint64_t Database::wal_lsn() const {
    return wal_ != nullptr ? wal_->lsn() : 0;
}

Table& Database::create_table(TableDef def) {
    // Depth-0 DDL is its own (tiny) writer-exclusive section; inside a
    // unit the writer mutex is already held by this thread.
    std::unique_lock<std::mutex> guard(writer_mu_, std::defer_lock);
    if (unit_depth_ == 0) guard.lock();
    if (table(def.name) != nullptr)
        throw SchemaError("table '" + def.name + "' already exists");
    tables_.push_back(std::make_unique<Table>(std::move(def)));
    Table& t = *tables_.back();
    if (bulk_) t.begin_bulk();
    for (std::size_t d = 0; d < unit_depth_; ++d) t.begin_unit();
    if (wal_ != nullptr) {
        try {
            wal_->log_create_table(t.def());
        } catch (...) {
            // Keep memory and log agreed: an unlogged table must not
            // exist, or later logged inserts into it would be
            // unreplayable.
            tables_.pop_back();
            throw;
        }
        t.set_mutation_log(wal_.get());
    }
    if (unit_depth_ == 0) {
        commit_watermark_.fetch_add(1, std::memory_order_release);
        publish_version();
    }
    return t;
}

void Database::begin_unit() {
    // The outermost unit takes the writer mutex: units, checkpoints and
    // depth-0 DDL serialize against each other.  Readers are unaffected —
    // they pin the last published epoch.  Nested begins run on the thread
    // that already holds the mutex, which is why testing unit_depth_
    // before locking is race-free (writers are single-threaded per the
    // unit contract).
    if (unit_depth_ == 0) writer_mu_.lock();
    try {
        if (wal_ != nullptr) wal_->log_begin_unit();
        for (auto& t : tables_) t->begin_unit();
    } catch (...) {
        if (unit_depth_ == 0) writer_mu_.unlock();
        throw;
    }
    ++unit_depth_;
}

void Database::commit_unit() {
    if (unit_depth_ == 0)
        throw SchemaError("commit_unit without an open load unit");
    // Durability first: flush (and fsync) the commit frame before the
    // in-memory commit.  If this throws, the unit is still open and the
    // caller's rollback leaves both sides at the pre-unit state.
    if (wal_ != nullptr) wal_->log_commit_unit(/*outermost=*/unit_depth_ == 1);
    for (auto& t : tables_) t->commit_unit();
    --unit_depth_;
    if (unit_depth_ == 0) {
        // Fold statistics over the rows this unit appended — O(new rows),
        // the same shape of work as index maintenance — while the writer
        // mutex is still held.  Material growth advances the statistics
        // epoch so cached plans re-cost against the new cardinalities.
        bool grew = false;
        for (auto& t : tables_) {
            t->refresh_stats();
            grew = t->note_material_growth() || grew;
        }
        if (grew) stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
        // Publication point: bump the watermark, then publish the new
        // epoch while still writer-exclusive.  Snapshots opened before
        // the swap keep their old epoch; snapshots opened after see this
        // unit complete — never a partially-committed state.
        commit_watermark_.fetch_add(1, std::memory_order_release);
        publish_version();
        writer_mu_.unlock();
    }
}

void Database::rollback_unit() {
    if (unit_depth_ == 0)
        throw SchemaError("rollback_unit without an open load unit");
    for (auto& t : tables_) t->rollback_unit();
    --unit_depth_;
    bulk_ = false;  // an interrupted merge leaves no bracket behind
    if (wal_ != nullptr) wal_->log_rollback_unit();
    // No watermark bump and no publication: readers never observed the
    // discarded rows, so the previous epoch still describes the state.
    if (unit_depth_ == 0) writer_mu_.unlock();
}

void Database::begin_bulk() {
    bulk_ = true;
    for (auto& t : tables_) t->begin_bulk();
}

void Database::end_bulk() {
    bulk_ = false;
    for (auto& t : tables_) t->end_bulk();
}

void Database::drop_table(std::string_view name) {
    if (unit_depth_ > 0)
        throw SchemaError("cannot drop '" + std::string(name) +
                          "' while a load unit is open");
    std::lock_guard<std::mutex> guard(writer_mu_);
    auto it = std::find_if(tables_.begin(), tables_.end(),
                           [&](const auto& t) { return t->name() == name; });
    if (it == tables_.end())
        throw SchemaError("no table '" + std::string(name) + "' to drop");
    if (wal_ != nullptr) wal_->log_drop_table(name);
    tables_.erase(it);
    commit_watermark_.fetch_add(1, std::memory_order_release);
    publish_version();
}

void Database::add_foreign_key(ForeignKeyDef fk) {
    if (wal_ != nullptr) wal_->log_add_foreign_key(fk);
    if (unit_depth_ == 0) {
        // Keys only matter to verification; republishing (same watermark)
        // lets a pinned-epoch verify see them without a watermark bump.
        std::lock_guard<std::mutex> guard(writer_mu_);
        fks_.push_back(std::move(fk));
        publish_version();
    } else {
        fks_.push_back(std::move(fk));
    }
}

Table* Database::table(std::string_view name) {
    for (auto& t : tables_)
        if (t->name() == name) return t.get();
    return nullptr;
}

const Table* Database::table(std::string_view name) const {
    for (const auto& t : tables_)
        if (t->name() == name) return t.get();
    return nullptr;
}

Table& Database::require(std::string_view name) {
    Table* t = table(name);
    if (t == nullptr) throw SchemaError("no table '" + std::string(name) + "'");
    return *t;
}

const Table& Database::require(std::string_view name) const {
    const Table* t = table(name);
    if (t == nullptr) throw SchemaError("no table '" + std::string(name) + "'");
    return *t;
}

std::vector<std::string> Database::table_names() const {
    std::vector<std::string> out;
    out.reserve(tables_.size());
    for (const auto& t : tables_) out.push_back(t->name());
    return out;
}

std::vector<std::string> Database::check_foreign_keys() const {
    std::vector<std::string> violations;
    for (const auto& fk : fks_) {
        const Table* src = table(fk.table);
        const Table* dst = table(fk.ref_table);
        if (src == nullptr || dst == nullptr) {
            violations.push_back("foreign key references missing table: " +
                                 fk.table + " -> " + fk.ref_table);
            continue;
        }
        int col = src->def().column_index(fk.column);
        if (col < 0) {
            violations.push_back("foreign key on missing column " + fk.table +
                                 "." + fk.column);
            continue;
        }
        for (RowId id = 0; id < src->row_count(); ++id) {
            const Value& v = src->row(id)[col];
            if (v.is_null()) continue;
            if (dst->find_pk(v.as_integer()) == nullptr) {
                violations.push_back(fk.table + "." + fk.column + "=" +
                                     v.to_string() + " has no match in " +
                                     fk.ref_table);
                if (violations.size() > 64) return violations;
            }
        }
    }
    return violations;
}

std::string AnalyzeReport::to_string() const {
    std::ostringstream out;
    out << "analyzed " << tables << " table(s), " << columns
        << " column(s), " << rows << " row(s); statistics epoch " << epoch;
    if (!persisted) out << " (in-memory only)";
    return out.str();
}

namespace {

/// Statistics values round-trip through TEXT catalog cells; the declared
/// type of the described column recovers the numeric ones.
Value parse_stat_value(const Value& stored, ValueType want) {
    if (stored.is_null()) return Value::null();
    const std::string& s = stored.as_text();
    try {
        switch (want) {
            case ValueType::kInteger:
                return Value(static_cast<std::int64_t>(std::stoll(s)));
            case ValueType::kReal:
                return Value(std::stod(s));
            default:
                return Value(s);
        }
    } catch (const std::exception&) {
        return Value::null();  // unparseable bound: treat as unknown
    }
}

}  // namespace

AnalyzeReport Database::analyze() {
    if (unit_depth_ != 0)
        throw SchemaError("cannot analyze while a load unit is open");
    AnalyzeReport report;
    {
        // Rebuilds mutate per-table statistics; hold the writer mutex
        // like depth-0 DDL.  Planner threads reading through pinned
        // epochs see those epochs' statistics copies, untouched.
        std::lock_guard<std::mutex> guard(writer_mu_);
        for (auto& t : tables_) {
            if (t->name() == kStatsTable) continue;
            t->rebuild_stats();
            ++report.tables;
            report.columns += t->stats().columns.size();
            report.rows += t->stats().rows;
        }
    }
    report.epoch = stats_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;

    // Persist to the catalog: drop + re-create + fill under one committed
    // unit.  Each step takes the writer mutex itself and logs to the WAL,
    // so a recovered database replays its way back to the same catalog
    // rows; the commit publishes the rebuilt statistics as a new epoch.
    if (table(kStatsTable) != nullptr) drop_table(kStatsTable);
    TableDef def;
    def.name = std::string(kStatsTable);
    def.columns = {{"tbl", ValueType::kText, true, false},
                   {"col", ValueType::kText, true, false},
                   {"row_count", ValueType::kInteger, true, false},
                   {"ndv", ValueType::kInteger, true, false},
                   {"nulls", ValueType::kInteger, true, false},
                   {"min_v", ValueType::kText, false, false},
                   {"max_v", ValueType::kText, false, false},
                   {"epoch", ValueType::kInteger, true, false}};
    Table& cat = create_table(std::move(def));
    begin_unit();
    try {
        for (auto& t : tables_) {
            if (t->name() == kStatsTable) continue;
            const TableStats& s = t->stats();
            for (std::size_t c = 0; c < s.columns.size(); ++c) {
                const ColumnStats& cs = s.columns[c];
                Row row;
                row.reserve(8);
                row.push_back(Value(t->name()));
                row.push_back(Value(t->def().columns[c].name));
                row.push_back(Value(static_cast<std::int64_t>(s.rows)));
                row.push_back(Value(static_cast<std::int64_t>(cs.ndv())));
                row.push_back(Value(static_cast<std::int64_t>(cs.nulls)));
                row.push_back(cs.min.is_null() ? Value::null()
                                               : Value(cs.min.to_string()));
                row.push_back(cs.max.is_null() ? Value::null()
                                               : Value(cs.max.to_string()));
                row.push_back(
                    Value(static_cast<std::int64_t>(report.epoch)));
                cat.insert(std::move(row));
            }
        }
    } catch (...) {
        rollback_unit();
        throw;
    }
    commit_unit();
    report.persisted = durable();
    return report;
}

void Database::load_stats_catalog() {
    const Table* cat = table(kStatsTable);
    std::uint64_t max_epoch = 0;
    if (cat != nullptr && cat->column_count() >= 8) {
        // Stage per-table statistics from the catalog rows.
        std::map<std::string, TableStats> staged;
        for (RowId id = 0; id < cat->row_count(); ++id) {
            const Row& row = cat->row(id);
            Table* target = table(row[0].as_text());
            if (target == nullptr) continue;  // dropped since the analyze
            int c = target->def().column_index(row[1].as_text());
            if (c < 0) continue;
            TableStats& ts = staged[target->name()];
            if (ts.columns.size() != target->column_count())
                ts.columns.resize(target->column_count());
            ts.rows = std::max<std::uint64_t>(
                ts.rows, static_cast<std::uint64_t>(row[2].as_integer()));
            ColumnStats& cs = ts.columns[static_cast<std::size_t>(c)];
            cs.ndv_hint = static_cast<std::uint64_t>(row[3].as_integer());
            cs.nulls = static_cast<std::uint64_t>(row[4].as_integer());
            ValueType want = target->def().columns[c].type;
            cs.min = parse_stat_value(row[5], want);
            cs.max = parse_stat_value(row[6], want);
            max_epoch = std::max(
                max_epoch, static_cast<std::uint64_t>(row[7].as_integer()));
        }
        for (auto& [name, ts] : staged) {
            Table* target = table(name);
            // WAL replay may have re-folded past the analyze point (its
            // commits run the incremental fold); keep whichever covers
            // more rows.
            if (target->stats().rows < ts.rows)
                target->load_stats(std::move(ts));
        }
    }
    // Fold whatever remains uncovered (snapshot-restored rows that no
    // catalog entry or replayed commit described), so the planner has
    // numbers immediately after recovery.
    for (auto& t : tables_) t->refresh_stats();
    if (max_epoch > stats_epoch_.load(std::memory_order_relaxed))
        stats_epoch_.store(max_epoch, std::memory_order_release);
}

std::size_t Database::total_rows() const {
    std::size_t n = 0;
    for (const auto& t : tables_) n += t->row_count();
    return n;
}

std::size_t Database::memory_bytes() const {
    std::size_t n = 0;
    for (const auto& t : tables_) n += t->memory_bytes();
    return n;
}

}  // namespace xr::rdb
