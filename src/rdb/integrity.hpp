// Online integrity checking (DESIGN.md §14).
//
// verify_database() walks a Database and validates every invariant the
// storage and shredding layers promise: per-table (row arity and types,
// NOT NULL, pk uniqueness and pk-index agreement, secondary index ↔ row
// agreement, ordered-index sortedness, pk-counter monotonicity) and
// cross-table XML invariants derived from the shredded-schema
// conventions (every `doc` cell names a registered document in
// `xrel_docs`, per-document Dietz label ranges are disjoint and fully
// covered, `pre`/`post` intervals nest properly, document roots exist,
// quarantine rows are well-formed, the stats catalog references live
// tables).  The checker only reads; it never repairs.
//
// Findings come back as a structured IntegrityReport instead of an
// exception: corruption rarely travels alone, and a report that lists
// every broken invariant (capped) is far more useful for salvage and
// for operators than the first failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xr::rdb {

class Database;
class ReadView;
struct SalvageReport;

/// One violated invariant.  `doc` is the owning document id when the
/// damage is attributable to a single document (the unit the salvage
/// path can quarantine), -1 otherwise.
struct IntegrityIssue {
    enum class Severity { kError, kWarning };

    Severity severity = Severity::kError;
    std::string check;   // invariant name, e.g. "pk-index", "dietz-nesting"
    std::string table;   // table involved, empty for cross-table checks
    std::int64_t doc = -1;
    std::string detail;

    [[nodiscard]] std::string to_string() const;
};

/// Everything verify() looked at and everything it found.  `clean()`
/// means no *errors*; warnings (e.g. stale stats-catalog rows, which
/// drop_table legitimately leaves behind) do not fail verification.
struct IntegrityReport {
    static constexpr std::size_t kMaxIssues = 256;

    std::size_t tables_checked = 0;
    std::uint64_t rows_checked = 0;
    std::size_t indexes_checked = 0;
    std::size_t docs_checked = 0;
    std::size_t issues_suppressed = 0;  // found beyond kMaxIssues
    std::vector<IntegrityIssue> issues;

    /// Record an issue, capping the list at kMaxIssues (a thoroughly
    /// corrupted store should not OOM its own checker).
    void add(IntegrityIssue issue);

    [[nodiscard]] std::size_t errors() const;
    [[nodiscard]] std::size_t warnings() const;
    [[nodiscard]] bool clean() const { return errors() == 0; }
    [[nodiscard]] std::string to_string() const;
};

/// Check every invariant visible through `db` — either a live Database
/// (Database::verify() holds the writer mutex around this; recovery
/// calls it before readers exist) or a pinned epoch
/// (`snapshot.view()`), which needs no isolation at all: the epoch is
/// immutable, so verification runs to completion while writers keep
/// committing beside it (DESIGN.md §15).
[[nodiscard]] IntegrityReport verify_database(const ReadView& db);

/// Salvage repair pass (DESIGN.md §14): verify `db`, quarantine every
/// document implicated in an error (a row in `xrel_quarantine`, then
/// purge its rows from every doc-carrying table and drop its `xrel_docs`
/// registration), and repeat until verification is doc-clean or no
/// further progress is possible.  Mutations are unlogged; the caller
/// (Database::open in salvage mode) checkpoints immediately after.
/// Returns the number of documents quarantined; accounting lands in
/// `report`.
std::size_t salvage_repair(Database& db, SalvageReport& report);

}  // namespace xr::rdb
