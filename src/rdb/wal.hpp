// Append-only write-ahead log for MiniRDB (DESIGN.md §8).
//
// The WAL is a redo log of the database's durable mutation API: table /
// index / foreign-key DDL, row inserts, in-place cell updates, deletes,
// and load-unit begin / commit / rollback frames.  Records are buffered
// in memory and written out on the outermost commit_unit(), which also
// fsyncs — so the durability boundary is exactly the atomicity boundary
// the loaders already use.  Uncommitted frames that do reach disk (large
// buffers spill early) are discarded by recovery, never replayed.
//
// Record framing: u8 type | u32 payload_len | payload | u32 crc, where
// the CRC covers type + length + payload.  Recovery reads frames until
// EOF or the first frame whose header, length or CRC does not check out.
// What happens next depends on what follows the bad frame (DESIGN.md
// §14): if *no* valid frame exists after it, the damage is a *torn
// tail* — the expected signature of a crash mid-append — counted,
// reported in RecoveryReport, and (newest segment only) physically
// truncated so new appends start on a clean record boundary.  If valid
// frames DO follow the bad one, a crash cannot explain the hole (writes
// are sequential): that is mid-segment corruption and recovery fails
// with a typed xr::CorruptionError even in the newest segment, so a
// flipped byte can never silently swallow committed records behind it.
// A "valid header, truncated payload" frame at EOF is indistinguishable
// from any other tear and handled the same way.
//
// Thread-safety: appends follow the single-writer contract of the unit
// machinery (Table's begin_unit() documentation); the WAL adds no locks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "rdb/table.hpp"

namespace xr::rdb {

class Database;
struct ForeignKeyDef;

/// wal-<seq>.log inside `dir`; seq ties the segment to the snapshot it
/// follows (wal-N holds every mutation after snapshot-N was taken).
[[nodiscard]] std::string wal_file(const std::string& dir, std::uint64_t seq);

class Wal final : public MutationLog {
public:
    /// Opens `path` for appending (created if absent).  `sync_on_commit`
    /// controls whether the outermost commit fsyncs or merely write()s.
    Wal(std::string path, bool sync_on_commit);
    ~Wal() override;
    Wal(const Wal&) = delete;
    Wal& operator=(const Wal&) = delete;

    // MutationLog (called by Table after the in-memory mutation):
    void log_insert(const Table& table, const Row& row) override;
    void log_update(const Table& table, RowId row, int column,
                    const Value& value) override;
    void log_delete_where(const Table& table, int column,
                          const Value& value) override;
    void log_create_index(const Table& table, std::string_view column,
                          IndexKind kind) override;

    // Database-level records:
    void log_create_table(const TableDef& def);
    void log_drop_table(std::string_view name);
    void log_add_foreign_key(const ForeignKeyDef& fk);
    void log_begin_unit();
    /// Append the commit frame; an outermost commit also flushes (and,
    /// under sync_on_commit, fsyncs) so the unit is durable before the
    /// caller treats it as committed.  If making the frame durable fails
    /// before any byte reached the file, the frame is removed from the
    /// buffer again — the unit then reads as uncommitted on disk, which
    /// matches the rollback the caller performs on the way out.
    void log_commit_unit(bool outermost);
    /// Rollback frames are advisory (recovery discards open units with or
    /// without them), so logging one never throws; a broken log skips it.
    void log_rollback_unit() noexcept;

    /// Write buffered records out; with `sync`, fsync afterwards.
    /// Fault points: `wal.fsync` (before any byte moves), then the write.
    void flush(bool sync);

    /// Best-effort final flush + fsync + close.  Errors are swallowed —
    /// destructors call this; uncommitted tail loss is recovery-safe.
    void close() noexcept;

    [[nodiscard]] const std::string& path() const { return path_; }
    /// Total record bytes appended (buffered + written) — bench metric.
    [[nodiscard]] std::uint64_t bytes_appended() const { return appended_; }
    /// Records appended to this segment — the log sequence number of the
    /// most recent mutation.  Together with the segment's seq it totally
    /// orders everything the database ever logged; the query layer uses
    /// it as a fine-grained durable change tick.
    [[nodiscard]] std::uint64_t lsn() const { return records_; }

private:
    void append(std::uint8_t type, std::string_view payload);

    std::string path_;
    int fd_ = -1;
    bool sync_on_commit_ = true;
    /// Set on a write/fsync failure: the file may end mid-record, so the
    /// log refuses further data records (rollback frames are skipped).
    bool broken_ = false;
    std::string buf_;
    std::uint64_t appended_ = 0;
    std::uint64_t records_ = 0;
};

struct SalvageReport;

struct WalReplayStats {
    std::size_t records = 0;          ///< frames decoded and applied
    std::size_t torn_bytes = 0;       ///< bytes in the torn tail, if any
    std::size_t records_skipped = 0;  ///< salvage: valid frames that failed to apply
    std::uint64_t bytes_dropped = 0;  ///< salvage: unreadable bytes resynced past
};

/// How replay treats damage (see the framing comment above).
enum class WalReplayMode {
    /// Newest segment: a true torn tail (no valid frame after the bad
    /// one) is truncated in place; mid-segment corruption still throws.
    kTail,
    /// Older segment: any damage breaks the chain to the next snapshot —
    /// always a typed error.
    kMidChain,
    /// Salvage: resynchronize past unreadable regions, skip records that
    /// fail to apply, account everything dropped, never throw for
    /// damage.  Nothing is truncated — the salvaging open checkpoints
    /// immediately, superseding the damaged segment.
    kSalvage,
};

/// Replay one WAL segment into `db` by re-driving its mutation API (the
/// db's own logging must be detached).  Damage handling per `mode`;
/// strict-mode failures throw xr::CorruptionError with the file, byte
/// offset and record number.  With kSalvage, `report` (required)
/// accumulates what was dropped.  Fault point: `recovery.replay` per
/// record.
WalReplayStats replay_wal(const std::string& path, Database& db,
                          WalReplayMode mode, SalvageReport* report = nullptr);

}  // namespace xr::rdb
