// Binary encode/decode helpers shared by the snapshot and WAL formats.
//
// Everything on disk is little-endian, length-prefixed, and read through
// a bounds-checked reader that throws xr::Error (with the artifact name
// in the message) instead of walking past a truncated buffer — recovery
// code never trusts a byte it has not range-checked.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "rdb/table.hpp"
#include "rdb/value.hpp"

namespace xr::rdb::serial {

// -- writing ------------------------------------------------------------------

inline void put_u8(std::string& out, std::uint8_t v) {
    out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

inline void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

inline void put_i64(std::string& out, std::int64_t v) {
    put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_f64(std::string& out, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(out, bits);
}

inline void put_string(std::string& out, std::string_view s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

/// Value wire format: u8 type tag, then the payload for that type.
inline void put_value(std::string& out, const Value& v) {
    switch (v.type()) {
        case ValueType::kNull:
            put_u8(out, 0);
            break;
        case ValueType::kInteger:
            put_u8(out, 1);
            put_i64(out, v.as_integer());
            break;
        case ValueType::kReal:
            put_u8(out, 2);
            put_f64(out, v.as_real());
            break;
        case ValueType::kText:
            put_u8(out, 3);
            put_string(out, v.as_text());
            break;
    }
}

// -- reading ------------------------------------------------------------------

/// Bounds-checked cursor over an on-disk payload.  `context` names the
/// artifact ("snapshot 'x'", "WAL record 12") for error messages.
class Reader {
public:
    Reader(std::string_view data, std::string context)
        : data_(data), context_(std::move(context)) {}

    [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

    std::uint8_t u8() {
        need(1);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double f64() {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string string() {
        std::uint32_t len = u32();
        need(len);
        std::string s(data_.substr(pos_, len));
        pos_ += len;
        return s;
    }

    Value value() {
        switch (u8()) {
            case 0: return Value::null();
            case 1: return Value(i64());
            case 2: return Value(f64());
            case 3: return Value(string());
            default: throw Error(context_ + ": unknown value type tag");
        }
    }

    /// Fail loudly if fewer than `n` bytes remain.
    void need(std::size_t n) const {
        if (data_.size() - pos_ < n)
            throw Error(context_ + ": truncated (need " + std::to_string(n) +
                        " bytes, " + std::to_string(data_.size() - pos_) +
                        " left)");
    }

private:
    std::string_view data_;
    std::size_t pos_ = 0;
    std::string context_;
};

// -- composite codecs shared by the WAL and snapshot formats ------------------

inline void put_table_def(std::string& out, const TableDef& def) {
    put_string(out, def.name);
    put_u32(out, static_cast<std::uint32_t>(def.columns.size()));
    for (const ColumnDef& c : def.columns) {
        put_string(out, c.name);
        put_u8(out, static_cast<std::uint8_t>(c.type));
        put_u8(out, c.not_null ? 1 : 0);
        put_u8(out, c.primary_key ? 1 : 0);
    }
}

inline TableDef read_table_def(Reader& in) {
    TableDef def;
    def.name = in.string();
    std::uint32_t cols = in.u32();
    def.columns.reserve(cols);
    for (std::uint32_t i = 0; i < cols; ++i) {
        ColumnDef c;
        c.name = in.string();
        c.type = static_cast<ValueType>(in.u8());
        c.not_null = in.u8() != 0;
        c.primary_key = in.u8() != 0;
        def.columns.push_back(std::move(c));
    }
    return def;
}

inline void put_row(std::string& out, const Row& row) {
    put_u32(out, static_cast<std::uint32_t>(row.size()));
    for (const Value& v : row) put_value(out, v);
}

inline Row read_row(Reader& in) {
    std::uint32_t cells = in.u32();
    Row row;
    row.reserve(cells);
    for (std::uint32_t i = 0; i < cells; ++i) row.push_back(in.value());
    return row;
}

}  // namespace xr::rdb::serial
