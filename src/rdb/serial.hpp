// Binary encode/decode helpers shared by the snapshot and WAL formats.
//
// Everything on disk is little-endian, length-prefixed, and read through
// a bounds-checked reader that throws xr::CorruptionError (with the
// artifact name, and when known the file and byte offset) instead of
// walking past a truncated buffer — recovery code never trusts a byte it
// has not range-checked, and every length that sizes an allocation is
// capped against the bytes actually present.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "rdb/table.hpp"
#include "rdb/value.hpp"

namespace xr::rdb::serial {

// -- writing ------------------------------------------------------------------

inline void put_u8(std::string& out, std::uint8_t v) {
    out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

inline void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

inline void put_i64(std::string& out, std::int64_t v) {
    put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_f64(std::string& out, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(out, bits);
}

inline void put_string(std::string& out, std::string_view s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

/// Value wire format: u8 type tag, then the payload for that type.
inline void put_value(std::string& out, const Value& v) {
    switch (v.type()) {
        case ValueType::kNull:
            put_u8(out, 0);
            break;
        case ValueType::kInteger:
            put_u8(out, 1);
            put_i64(out, v.as_integer());
            break;
        case ValueType::kReal:
            put_u8(out, 2);
            put_f64(out, v.as_real());
            break;
        case ValueType::kText:
            put_u8(out, 3);
            put_string(out, v.as_text());
            break;
    }
}

// -- reading ------------------------------------------------------------------

/// Bounds-checked cursor over an on-disk payload.  `context` names the
/// artifact ("snapshot 'x'", "WAL record 12") for error messages; when
/// the caller knows the containing file and the payload's byte offset in
/// it, the second constructor threads them into every CorruptionError.
class Reader {
public:
    Reader(std::string_view data, std::string context)
        : data_(data), context_(std::move(context)) {}

    Reader(std::string_view data, std::string context, std::string file,
           std::uint64_t base_offset)
        : data_(data),
          context_(std::move(context)),
          file_(std::move(file)),
          base_offset_(base_offset) {}

    [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

    std::uint8_t u8() {
        need(1);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double f64() {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string string() {
        std::uint32_t len = u32();
        need(len);
        std::string s(data_.substr(pos_, len));
        pos_ += len;
        return s;
    }

    Value value() {
        switch (u8()) {
            case 0: return Value::null();
            case 1: return Value(i64());
            case 2: return Value(f64());
            case 3: return Value(string());
            default: fail("unknown value type tag");
        }
    }

    /// Fail loudly if fewer than `n` bytes remain.
    void need(std::size_t n) const {
        if (data_.size() - pos_ < n)
            fail("truncated (need " + std::to_string(n) + " bytes, " +
                 std::to_string(data_.size() - pos_) + " left)");
    }

    /// Validate a count that is about to size an allocation: each of the
    /// `count` items occupies at least `min_item_bytes`, so a count that
    /// claims more items than the remaining bytes could hold is corrupt —
    /// reject it before reserve() turns it into a giant allocation.
    void need_items(std::uint64_t count, std::size_t min_item_bytes,
                    const char* what) const {
        if (count > remaining() / (min_item_bytes == 0 ? 1 : min_item_bytes))
            fail("implausible " + std::string(what) + " count " +
                 std::to_string(count) + " (" + std::to_string(remaining()) +
                 " bytes left)");
    }

    [[noreturn]] void fail(const std::string& what) const {
        throw CorruptionError(what, file_, base_offset_ + pos_, context_);
    }

private:
    std::string_view data_;
    std::size_t pos_ = 0;
    std::string context_;
    std::string file_;
    std::uint64_t base_offset_ = 0;
};

// -- composite codecs shared by the WAL and snapshot formats ------------------

inline void put_table_def(std::string& out, const TableDef& def) {
    put_string(out, def.name);
    put_u32(out, static_cast<std::uint32_t>(def.columns.size()));
    for (const ColumnDef& c : def.columns) {
        put_string(out, c.name);
        put_u8(out, static_cast<std::uint8_t>(c.type));
        put_u8(out, c.not_null ? 1 : 0);
        put_u8(out, c.primary_key ? 1 : 0);
    }
}

inline TableDef read_table_def(Reader& in) {
    TableDef def;
    def.name = in.string();
    std::uint32_t cols = in.u32();
    // Each column is at least name-len(4) + type + not_null + primary_key.
    in.need_items(cols, 7, "column");
    def.columns.reserve(cols);
    for (std::uint32_t i = 0; i < cols; ++i) {
        ColumnDef c;
        c.name = in.string();
        std::uint8_t type = in.u8();
        if (type > static_cast<std::uint8_t>(ValueType::kText))
            in.fail("unknown column type tag " + std::to_string(type) +
                    " for column '" + c.name + "'");
        c.type = static_cast<ValueType>(type);
        c.not_null = in.u8() != 0;
        c.primary_key = in.u8() != 0;
        def.columns.push_back(std::move(c));
    }
    return def;
}

inline void put_row(std::string& out, const Row& row) {
    put_u32(out, static_cast<std::uint32_t>(row.size()));
    for (const Value& v : row) put_value(out, v);
}

inline Row read_row(Reader& in) {
    std::uint32_t cells = in.u32();
    in.need_items(cells, 1, "cell");  // a null cell is one tag byte
    Row row;
    row.reserve(cells);
    for (std::uint32_t i = 0; i < cells; ++i) row.push_back(in.value());
    return row;
}

}  // namespace xr::rdb::serial
