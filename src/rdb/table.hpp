// MiniRDB tables: row storage, constraints, and indexes.
//
// Row-oriented storage in copy-on-write chunks (DESIGN.md §15).  Each
// table may declare one auto-increment INTEGER primary key; inserts
// validate types, NOT NULL and primary-key uniqueness.  Secondary
// indexes come in two flavours — hash (equality lookups, used for ID
// resolution during loading) and ordered (range scans) — mirroring the
// ablation called out in DESIGN.md.
//
// MVCC read path: publish() snapshots the table into an immutable
// frozen clone that structurally shares row chunks and index
// containers with the live table.  The single writer then copies a
// chunk (or an index) the first time it mutates one that a published
// version still references, so readers of any pinned version never see
// a concurrent mutation and never take a latch.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "rdb/stats.hpp"
#include "rdb/value.hpp"

namespace xr::rdb {

struct ColumnDef {
    std::string name;
    ValueType type = ValueType::kText;
    bool not_null = false;
    bool primary_key = false;  ///< at most one; INTEGER, auto-increment
};

struct TableDef {
    std::string name;
    std::vector<ColumnDef> columns;

    [[nodiscard]] int column_index(std::string_view name) const;
    [[nodiscard]] const ColumnDef* column(std::string_view name) const;
};

using Row = std::vector<Value>;
using RowId = std::uint32_t;

enum class IndexKind { kHash, kOrdered };

class Table;
struct IntegrityReport;

/// Observer of durable table mutations, implemented by the write-ahead
/// log and attached by Database when a data directory is open.  Hooks run
/// *after* the in-memory mutation succeeded (redo logging): a logged
/// record that never commits is discarded by recovery, and an in-memory
/// mutation whose logging throws is undone by the enclosing load unit's
/// rollback.  Calls follow the same single-threaded contract as the
/// mutations themselves.
class MutationLog {
public:
    virtual ~MutationLog() = default;
    virtual void log_insert(const Table& table, const Row& row) = 0;
    virtual void log_update(const Table& table, RowId row, int column,
                            const Value& value) = 0;
    virtual void log_delete_where(const Table& table, int column,
                                  const Value& value) = 0;
    virtual void log_create_index(const Table& table, std::string_view column,
                                  IndexKind kind) = 0;
};

/// Chunked row storage with per-chunk copy-on-write (DESIGN.md §15).
///
/// Rows live in fixed-size chunks behind shared_ptrs.  publish() marks
/// every chunk shared and returns a structurally sharing copy for a
/// frozen table version — O(#chunks), no row copies.  The single writer
/// clones a chunk the first time it mutates one that is marked shared
/// (`owned == false`), so a published chunk is immutable for its whole
/// lifetime and concurrent readers of pinned versions are race-free by
/// construction.  Ownership flags are writer-private state: no refcount
/// inspection, no atomics, deterministic under TSan.
class RowStore {
public:
    static constexpr std::size_t kChunkShift = 10;
    static constexpr std::size_t kChunkRows = std::size_t{1} << kChunkShift;
    static constexpr std::size_t kChunkMask = kChunkRows - 1;

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] const Row& operator[](std::size_t i) const {
        return slots_[i >> kChunkShift].chunk->rows[i & kChunkMask];
    }
    /// Mutable access for the writer; copies the containing chunk first
    /// when a published version still shares it.
    [[nodiscard]] Row& mut(std::size_t i) {
        Slot& s = slots_[i >> kChunkShift];
        if (!s.owned) own(s, s.chunk->rows.size());
        return s.chunk->rows[i & kChunkMask];
    }

    void push_back(Row&& row) {
        if ((size_ & kChunkMask) == 0) {
            slots_.push_back(Slot{std::make_shared<Chunk>(), true});
            slots_.back().chunk->rows.reserve(kChunkRows);
        }
        Slot& s = slots_.back();
        if (!s.owned) own(s, s.chunk->rows.size());
        s.chunk->rows.push_back(std::move(row));
        ++size_;
    }
    void pop_back() { truncate(size_ - 1); }
    /// Truncate to `n` rows (unit rollback); whole chunks past the cut
    /// are dropped, a shared tail chunk is cloned up to the cut.
    void truncate(std::size_t n);
    void clear() {
        slots_.clear();
        size_ = 0;
    }
    void reserve(std::size_t additional) {
        slots_.reserve((size_ + additional + kChunkRows - 1) >> kChunkShift);
    }

    /// Mark every chunk shared and return a structurally sharing copy
    /// for a frozen version.  Writer-side only.
    [[nodiscard]] RowStore publish();

    /// Chunks cloned by copy-on-write since construction (MVCC metric).
    [[nodiscard]] std::uint64_t chunks_cowed() const { return chunks_cowed_; }

private:
    struct Chunk {
        std::vector<Row> rows;
    };
    struct Slot {
        std::shared_ptr<Chunk> chunk;
        bool owned = true;  ///< writer-private: no published version shares it
    };

    /// Replace a shared chunk with a private copy of its first `keep` rows.
    void own(Slot& s, std::size_t keep);

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    std::uint64_t chunks_cowed_ = 0;
};

class Table {
public:
    explicit Table(TableDef def);

    [[nodiscard]] const TableDef& def() const { return def_; }
    [[nodiscard]] const std::string& name() const { return def_.name; }
    [[nodiscard]] std::size_t row_count() const { return store_.size(); }
    [[nodiscard]] std::size_t column_count() const { return def_.columns.size(); }

    /// Insert a row (one value per column, in declared order).  A NULL in
    /// the auto-increment primary-key column is assigned the next key.
    /// Returns the primary-key value (or the row index if no PK declared).
    std::int64_t insert(Row row);

    /// Append a whole batch of rows.  The batch's shape is validated once
    /// (arity of the first row); per-row cell validation runs only when
    /// `validate_rows` is set — staging pipelines that built the rows from
    /// a trusted plan skip it.  Rows with a NULL auto-increment primary key
    /// are assigned keys; returns the number of rows appended.
    std::size_t insert_batch(std::vector<Row> rows, bool validate_rows = true);

    /// Reserve the next primary-key value without inserting — bulk loaders
    /// allocate keys up front so child rows can reference a parent row that
    /// is still being assembled.  Thread safe.
    std::int64_t allocate_pk() {
        return next_pk_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Reserve `count` consecutive primary keys and return the first.
    /// Thread safe — parallel shredders reserve disjoint ranges up front
    /// and hand keys out locally without touching shared state again.
    std::int64_t allocate_pk_range(std::int64_t count) {
        return next_pk_.fetch_add(count, std::memory_order_relaxed);
    }

    /// Return the unused tail [first, end) of a reserved range.  Succeeds
    /// only when no later reservation happened (the counter still sits at
    /// `end`); callers count a failed return as leaked key space.
    bool try_release_pk_range(std::int64_t first, std::int64_t end) {
        std::int64_t expected = end;
        return first < end &&
               next_pk_.compare_exchange_strong(expected, first,
                                                std::memory_order_relaxed);
    }

    /// Pre-size row storage for `additional` upcoming inserts.
    void reserve_rows(std::size_t additional) { store_.reserve(additional); }

    // -- bulk (deferred-index) mode ------------------------------------------
    /// Between begin_bulk() and end_bulk(), inserts skip secondary-index
    /// maintenance; end_bulk() rebuilds every index in one pass.  The
    /// primary-key index stays live so duplicate keys are still rejected.
    /// end_bulk() keeps the bulk flag set until the rebuild succeeds, so
    /// an interrupted rebuild is recoverable via rollback_unit().
    void begin_bulk() { bulk_ = true; }
    void end_bulk();
    [[nodiscard]] bool in_bulk() const { return bulk_; }

    // -- atomic load units (savepoint / undo) --------------------------------
    /// begin_unit() records a watermark — row count, pk counter, undo-log
    /// position; rollback_unit() truncates back to it: cell updates made
    /// since are undone (update() logs old values while a unit is open),
    /// appended rows are removed from storage and every index, and the
    /// pk counter is restored.  Units nest (a per-document unit inside a
    /// per-corpus unit); commit_unit() folds the frame into its parent.
    ///
    /// Thread-safety contract: begin/commit/rollback and any logged
    /// mutation are single-threaded operations.  Concurrent workers may
    /// only touch allocate_pk_range() while a unit is open, and must be
    /// joined before rollback_unit() restores the counter (which is how
    /// the bulk loader reclaims reserved ranges of a failed load).
    void begin_unit();
    void commit_unit();
    void rollback_unit();
    [[nodiscard]] bool in_unit() const { return !units_.empty(); }

    /// Drop and repopulate every secondary index from current row storage.
    void rebuild_indexes();

    [[nodiscard]] const Row& row(RowId id) const { return store_[id]; }

    /// Value of the named column in row `id`.
    [[nodiscard]] const Value& at(RowId id, std::string_view column) const;

    /// Row with the given primary-key value, or nullptr.
    [[nodiscard]] const Row* find_pk(std::int64_t pk) const;
    [[nodiscard]] std::optional<RowId> find_pk_rowid(std::int64_t pk) const;

    /// In-place update of one cell (keeps indexes consistent).
    void update(RowId id, std::string_view column, Value value);

    /// Delete every row whose `column` equals `value`; returns the number
    /// removed.  Row ids are compacted (all indexes rebuilt), so previously
    /// held RowIds are invalidated — primary keys remain stable handles.
    /// Refused while a load unit is open (compaction would invalidate the
    /// unit's watermarks).
    std::size_t delete_where(std::string_view column, const Value& value);

    // -- secondary indexes ----------------------------------------------------
    void create_index(std::string_view column, IndexKind kind = IndexKind::kHash);
    [[nodiscard]] bool has_index(std::string_view column) const;

    /// Declared secondary indexes, in creation order — the snapshot writer
    /// persists these so a recovered table has identical access paths.
    struct IndexDef {
        std::string column;
        IndexKind kind = IndexKind::kHash;
    };
    [[nodiscard]] std::vector<IndexDef> index_defs() const {
        std::vector<IndexDef> defs;
        defs.reserve(indexes_.size());
        for (const SecondaryIndex& idx : indexes_)
            defs.push_back({def_.columns[idx.column].name, idx.kind});
        return defs;
    }
    /// Matching row ids via index; throws SchemaError if not indexed.
    [[nodiscard]] std::vector<RowId> index_lookup(std::string_view column,
                                                  const Value& value) const;
    /// True when `column` carries an *ordered* secondary index (range scans).
    [[nodiscard]] bool has_ordered_index(std::string_view column) const;
    /// Row ids whose `column` value lies in the given range, found by
    /// binary search on the ordered index.  A null bound pointer leaves
    /// that side unbounded; `*_strict` selects < / > over <= / >=.  Throws
    /// SchemaError when the column has no ordered index.
    [[nodiscard]] std::vector<RowId> index_range_lookup(
        std::string_view column, const Value* lo, bool lo_strict,
        const Value* hi, bool hi_strict) const;
    /// Matching row ids using the index when present, else a scan.
    [[nodiscard]] std::vector<RowId> lookup(std::string_view column,
                                            const Value& value) const;

    /// Attach (or detach, with nullptr) the mutation observer.  Owned by
    /// Database; plain Tables stay log-free.
    void set_mutation_log(MutationLog* log) { log_ = log; }

    /// Restore the pk counter from a snapshot.  Recovery only: the saved
    /// counter may sit above max(pk)+1 when ranges leaked before the
    /// snapshot, and re-creating those gaps keeps key allocation
    /// bit-identical across a restart.
    void restore_next_pk(std::int64_t next) {
        next_pk_.store(next, std::memory_order_relaxed);
        dirty_ = true;
    }
    [[nodiscard]] std::int64_t peek_next_pk() const {
        return next_pk_.load(std::memory_order_relaxed);
    }

    // -- MVCC versioning (DESIGN.md §15) --------------------------------------
    /// Snapshot this table into an immutable frozen clone sharing row
    /// chunks and index containers (O(#chunks + #indexes), no data
    /// copies).  While the table is unchanged since the last publish the
    /// cached clone is returned, so an idle table costs one shared_ptr
    /// copy per database publication.  Writer-side only (the caller
    /// holds writer exclusivity); subsequent writer mutations trigger
    /// copy-on-write and never disturb the clone.
    [[nodiscard]] std::shared_ptr<const Table> publish();

    /// True when a mutation since the last publish() means the next
    /// publication must cut a fresh frozen clone.
    [[nodiscard]] bool version_dirty() const { return dirty_; }

    /// Index structures cloned by copy-on-write since construction.
    [[nodiscard]] std::uint64_t indexes_cowed() const { return index_cows_; }
    /// Row chunks cloned by copy-on-write since construction.
    [[nodiscard]] std::uint64_t chunks_cowed() const {
        return store_.chunks_cowed();
    }

    // -- statistics (DESIGN.md §13) -------------------------------------------
    /// Current statistics; may cover fewer rows than row_count() between
    /// folds.  Reading is safe wherever reading rows is (the planner reads
    /// a frozen version's copy; folds happen under writer exclusivity).
    [[nodiscard]] const TableStats& stats() const { return stats_; }
    /// Fold rows appended since the last fold into the statistics; a
    /// stale table (compaction since the last fold) rebuilds from row
    /// zero.  Called by Database::commit_unit() at the outermost commit.
    void refresh_stats();
    /// Full rebuild from current storage (ANALYZE).
    void rebuild_stats();
    /// Install recovered statistics (ndv hints, min/max, NULL counts);
    /// the fold watermark is clamped to current storage.
    void load_stats(TableStats stats);
    /// Advance the per-table epoch watermark when the covered row count
    /// grew materially (~2x) since the last bump; Database aggregates the
    /// answer into its statistics epoch.
    [[nodiscard]] bool note_material_growth();

    // -- integrity (DESIGN.md §14) --------------------------------------------
    /// Append this table's integrity findings to `report`: row arity and
    /// cell types against the schema, NOT NULL, pk uniqueness and
    /// pk-index agreement, pk-counter monotonicity, and for every
    /// secondary index entry-count, key↔row agreement, in-range row ids
    /// and (ordered indexes) sortedness.  Read-only; index checks are
    /// skipped (with a warning) while bulk mode has them deferred.
    void verify_into(IntegrityReport& report) const;

    /// Rough memory footprint in bytes (bench metric).
    [[nodiscard]] std::size_t memory_bytes() const;

    /// Fraction of non-PK cells that are NULL (schema-comparison metric).
    [[nodiscard]] double null_fraction() const;

private:
    using PkIndex = std::unordered_map<std::int64_t, RowId>;
    using HashIndexMap = std::unordered_multimap<Value, RowId, ValueHash>;
    using OrderedIndexMap = std::multimap<Value, RowId>;

    struct SecondaryIndex {
        int column = -1;
        IndexKind kind = IndexKind::kHash;
        std::shared_ptr<HashIndexMap> hash;
        std::shared_ptr<OrderedIndexMap> ordered;
        bool owned = true;  ///< writer-private, like RowStore::Slot::owned
    };

    /// Frozen-clone constructor backing publish(): shares chunks and
    /// index containers, snapshots scalar state, drops the mutation log.
    struct FrozenTag {};
    Table(FrozenTag, Table& live);

    TableDef def_;
    int pk_column_ = -1;
    std::atomic<std::int64_t> next_pk_{1};
    MutationLog* log_ = nullptr;
    bool bulk_ = false;
    bool frozen_ = false;  ///< immutable published clone (never mutated)
    bool dirty_ = true;    ///< mutated since last publish()
    bool pk_owned_ = true;
    std::uint64_t index_cows_ = 0;
    RowStore store_;
    std::shared_ptr<PkIndex> pk_index_ = std::make_shared<PkIndex>();
    std::vector<SecondaryIndex> indexes_;
    std::shared_ptr<const Table> last_published_;  ///< reused while !dirty_

    /// Savepoint frame: state to restore on rollback_unit().
    struct UnitFrame {
        std::size_t rows = 0;
        std::int64_t next_pk = 0;
        std::size_t undo_size = 0;
    };
    std::vector<UnitFrame> units_;
    struct UndoCell {
        RowId row = 0;
        int column = -1;
        Value old_value;
    };
    std::vector<UndoCell> undo_;  ///< update() log, shared by nested frames
    TableStats stats_;

    /// Writer-side copy-on-write helpers: hand back a privately owned
    /// container, cloning (or, for rebuilds, replacing with a fresh empty
    /// one) when a published version still shares the current one.
    PkIndex& own_pk();
    HashIndexMap& own_hash(SecondaryIndex& idx, bool preserve);
    OrderedIndexMap& own_ordered(SecondaryIndex& idx, bool preserve);

    void validate(const Row& row) const;
    void index_row(RowId id);
    std::int64_t do_insert(Row&& row, bool validate_row);
    void bump_next_pk(std::int64_t pk);
};

}  // namespace xr::rdb
