#include "rdb/table.hpp"

#include <algorithm>
#include <limits>

#include "common/fault.hpp"
#include "rdb/integrity.hpp"

namespace xr::rdb {

int TableDef::column_index(std::string_view name) const {
    for (std::size_t i = 0; i < columns.size(); ++i)
        if (columns[i].name == name) return static_cast<int>(i);
    return -1;
}

const ColumnDef* TableDef::column(std::string_view name) const {
    int i = column_index(name);
    return i < 0 ? nullptr : &columns[i];
}

// -- RowStore ----------------------------------------------------------------

void RowStore::own(Slot& s, std::size_t keep) {
    auto copy = std::make_shared<Chunk>();
    copy->rows.reserve(kChunkRows);
    copy->rows.insert(copy->rows.end(), s.chunk->rows.begin(),
                      s.chunk->rows.begin() + static_cast<std::ptrdiff_t>(keep));
    s.chunk = std::move(copy);
    s.owned = true;
    ++chunks_cowed_;
}

void RowStore::truncate(std::size_t n) {
    if (n >= size_) return;
    if (n == 0) {
        slots_.clear();
        size_ = 0;
        return;
    }
    slots_.resize((n + kChunkRows - 1) >> kChunkShift);
    std::size_t tail = ((n - 1) & kChunkMask) + 1;
    Slot& s = slots_.back();
    if (s.chunk->rows.size() != tail) {
        if (!s.owned) own(s, tail);
        else s.chunk->rows.resize(tail);
    }
    size_ = n;
}

RowStore RowStore::publish() {
    RowStore out;
    out.slots_.reserve(slots_.size());
    for (Slot& s : slots_) {
        s.owned = false;
        out.slots_.push_back(Slot{s.chunk, false});
    }
    out.size_ = size_;
    return out;
}

// -- Table -------------------------------------------------------------------

Table::Table(TableDef def) : def_(std::move(def)) {
    for (std::size_t i = 0; i < def_.columns.size(); ++i) {
        if (def_.columns[i].primary_key) {
            if (pk_column_ >= 0)
                throw SchemaError("table '" + def_.name +
                                  "' declares multiple primary keys");
            if (def_.columns[i].type != ValueType::kInteger)
                throw SchemaError("primary key of '" + def_.name +
                                  "' must be INTEGER");
            pk_column_ = static_cast<int>(i);
        }
    }
}

Table::Table(FrozenTag, Table& live) : def_(live.def_) {
    pk_column_ = live.pk_column_;
    next_pk_.store(live.next_pk_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    bulk_ = live.bulk_;
    frozen_ = true;
    dirty_ = false;
    store_ = live.store_.publish();
    live.pk_owned_ = false;
    pk_index_ = live.pk_index_;
    pk_owned_ = false;
    indexes_.reserve(live.indexes_.size());
    for (SecondaryIndex& idx : live.indexes_) {
        idx.owned = false;
        indexes_.push_back(
            SecondaryIndex{idx.column, idx.kind, idx.hash, idx.ordered, false});
    }
    stats_ = live.stats_;
}

std::shared_ptr<const Table> Table::publish() {
    if (!dirty_ && last_published_ != nullptr) return last_published_;
    last_published_ = std::shared_ptr<const Table>(new Table(FrozenTag{}, *this));
    dirty_ = false;
    return last_published_;
}

Table::PkIndex& Table::own_pk() {
    if (!pk_owned_) {
        pk_index_ = std::make_shared<PkIndex>(*pk_index_);
        pk_owned_ = true;
        ++index_cows_;
    }
    return *pk_index_;
}

Table::HashIndexMap& Table::own_hash(SecondaryIndex& idx, bool preserve) {
    if (!idx.owned) {
        idx.hash = preserve ? std::make_shared<HashIndexMap>(*idx.hash)
                            : std::make_shared<HashIndexMap>();
        idx.ordered = preserve ? std::make_shared<OrderedIndexMap>(*idx.ordered)
                               : std::make_shared<OrderedIndexMap>();
        idx.owned = true;
        ++index_cows_;
    }
    return *idx.hash;
}

Table::OrderedIndexMap& Table::own_ordered(SecondaryIndex& idx, bool preserve) {
    own_hash(idx, preserve);
    return *idx.ordered;
}

void Table::validate(const Row& row) const {
    if (row.size() != def_.columns.size())
        throw SchemaError("row arity " + std::to_string(row.size()) +
                          " does not match table '" + def_.name + "' (" +
                          std::to_string(def_.columns.size()) + " columns)");
    for (std::size_t i = 0; i < row.size(); ++i) {
        const ColumnDef& col = def_.columns[i];
        const Value& v = row[i];
        if (v.is_null()) {
            if (col.not_null && static_cast<int>(i) != pk_column_)
                throw SchemaError("NULL in NOT NULL column '" + col.name +
                                  "' of '" + def_.name + "'");
            continue;
        }
        bool ok = true;
        switch (col.type) {
            case ValueType::kInteger:
                ok = v.type() == ValueType::kInteger;
                break;
            case ValueType::kReal:
                ok = v.type() == ValueType::kReal ||
                     v.type() == ValueType::kInteger;
                break;
            case ValueType::kText:
                ok = v.type() == ValueType::kText;
                break;
            case ValueType::kNull:
                ok = false;
                break;
        }
        if (!ok)
            throw SchemaError("type mismatch in column '" + col.name + "' of '" +
                              def_.name + "': expected " +
                              std::string(to_string(col.type)) + ", got " +
                              std::string(to_string(v.type())));
    }
}

std::int64_t Table::insert(Row row) { return do_insert(std::move(row), true); }

std::size_t Table::insert_batch(std::vector<Row> rows, bool validate_rows) {
    if (rows.empty()) return 0;
    // Batch shape is validated once up front; callers that assembled the
    // rows from a trusted loading plan skip the per-row cell checks.
    validate(rows.front());
    reserve_rows(rows.size());
    if (pk_column_ >= 0) own_pk().reserve(pk_index_->size() + rows.size());
    for (auto& row : rows) do_insert(std::move(row), validate_rows);
    return rows.size();
}

std::int64_t Table::do_insert(Row&& row, bool validate_row) {
    if (pk_column_ >= 0 && row.size() == def_.columns.size() &&
        row[pk_column_].is_null()) {
        row[pk_column_] = Value(next_pk_.load(std::memory_order_relaxed));
    }
    if (validate_row) {
        validate(row);
    } else if (row.size() != def_.columns.size()) {
        throw SchemaError("row arity " + std::to_string(row.size()) +
                          " does not match table '" + def_.name + "' (" +
                          std::to_string(def_.columns.size()) + " columns)");
    }

    std::int64_t pk = static_cast<std::int64_t>(store_.size());
    if (pk_column_ >= 0) pk = row[pk_column_].as_integer();

    auto id = static_cast<RowId>(store_.size());
    dirty_ = true;
    store_.push_back(std::move(row));
    if (pk_column_ >= 0) {
        if (!own_pk().emplace(pk, id).second) {
            store_.pop_back();
            throw SchemaError("duplicate primary key " + std::to_string(pk) +
                              " in '" + def_.name + "'");
        }
        bump_next_pk(pk);
    }
    if (!bulk_) index_row(id);
    if (log_ != nullptr) log_->log_insert(*this, store_[id]);
    return pk;
}

void Table::bump_next_pk(std::int64_t pk) {
    std::int64_t cur = next_pk_.load(std::memory_order_relaxed);
    while (cur < pk + 1 &&
           !next_pk_.compare_exchange_weak(cur, pk + 1,
                                           std::memory_order_relaxed)) {
    }
}

void Table::end_bulk() {
    fault::maybe_fail("rdb.index_rebuild");
    rebuild_indexes();
    bulk_ = false;
}

void Table::begin_unit() {
    units_.push_back(
        {store_.size(), next_pk_.load(std::memory_order_relaxed), undo_.size()});
}

void Table::commit_unit() {
    if (units_.empty())
        throw SchemaError("commit_unit without begin_unit on '" + def_.name +
                          "'");
    units_.pop_back();
    // The undo log folds into the parent frame (its undo_size mark is
    // older); with no parent left, the history is no longer needed.
    if (units_.empty()) undo_.clear();
}

void Table::rollback_unit() {
    if (units_.empty())
        throw SchemaError("rollback_unit without begin_unit on '" + def_.name +
                          "'");
    UnitFrame frame = units_.back();
    units_.pop_back();
    bool changed =
        store_.size() > frame.rows || undo_.size() > frame.undo_size;

    // Undo cell updates newest-first with raw writes; index consistency is
    // restored by the rebuild below.
    for (std::size_t i = undo_.size(); i-- > frame.undo_size;) {
        UndoCell& cell = undo_[i];
        store_.mut(cell.row)[cell.column] = std::move(cell.old_value);
    }
    undo_.resize(frame.undo_size);

    // Truncate appended rows, keeping the primary-key index exact.
    if (store_.size() > frame.rows) {
        if (pk_column_ >= 0) {
            PkIndex& pk = own_pk();
            for (std::size_t id = store_.size(); id-- > frame.rows;)
                pk.erase(store_[id][pk_column_].as_integer());
        }
        store_.truncate(frame.rows);
    }

    // Reclaim keys reserved since the watermark.  Safe because the unit
    // contract joins all reserving workers before rollback.
    next_pk_.store(frame.next_pk, std::memory_order_relaxed);

    // Leave the table out of bulk mode with consistent secondary indexes,
    // whatever state an interrupted merge or rebuild left them in.
    bool was_bulk = bulk_;
    bulk_ = false;
    if (changed || was_bulk) rebuild_indexes();
    if (changed || was_bulk) dirty_ = true;

    // Rows the statistics already covered may be gone (or their cells
    // reverted); the next fold starts over.
    if (changed && stats_.rows > store_.size()) stats_.stale = true;
}

void Table::rebuild_indexes() {
    for (auto& idx : indexes_) {
        // About to repopulate from scratch: a shared container is simply
        // replaced with a fresh empty one instead of deep-copied first.
        HashIndexMap& hash = own_hash(idx, /*preserve=*/false);
        OrderedIndexMap& ordered = *idx.ordered;
        hash.clear();
        ordered.clear();
        if (idx.kind == IndexKind::kHash) hash.reserve(store_.size());
        for (RowId id = 0; id < store_.size(); ++id) {
            const Value& v = store_[id][idx.column];
            if (idx.kind == IndexKind::kHash) hash.emplace(v, id);
            else ordered.emplace(v, id);
        }
    }
    if (!indexes_.empty()) dirty_ = true;
}

const Value& Table::at(RowId id, std::string_view column) const {
    int i = def_.column_index(column);
    if (i < 0)
        throw SchemaError("no column '" + std::string(column) + "' in '" +
                          def_.name + "'");
    return store_[id][i];
}

const Row* Table::find_pk(std::int64_t pk) const {
    auto id = find_pk_rowid(pk);
    return id ? &store_[*id] : nullptr;
}

std::optional<RowId> Table::find_pk_rowid(std::int64_t pk) const {
    if (pk_column_ < 0) {
        if (pk >= 0 && pk < static_cast<std::int64_t>(store_.size()))
            return static_cast<RowId>(pk);
        return std::nullopt;
    }
    auto it = pk_index_->find(pk);
    if (it == pk_index_->end()) return std::nullopt;
    return it->second;
}

void Table::update(RowId id, std::string_view column, Value value) {
    int i = def_.column_index(column);
    if (i < 0)
        throw SchemaError("no column '" + std::string(column) + "' in '" +
                          def_.name + "'");
    if (i == pk_column_)
        throw SchemaError("cannot update primary key column");
    if (!units_.empty()) undo_.push_back({id, i, store_[id][i]});
    dirty_ = true;
    for (auto& idx : indexes_) {
        if (idx.column != i) continue;
        const Value& old = store_[id][i];
        if (idx.kind == IndexKind::kHash) {
            HashIndexMap& hash = own_hash(idx, /*preserve=*/true);
            auto range = hash.equal_range(old);
            for (auto it = range.first; it != range.second; ++it) {
                if (it->second == id) {
                    hash.erase(it);
                    break;
                }
            }
            hash.emplace(value, id);
        } else {
            OrderedIndexMap& ordered = own_ordered(idx, /*preserve=*/true);
            auto range = ordered.equal_range(old);
            for (auto it = range.first; it != range.second; ++it) {
                if (it->second == id) {
                    ordered.erase(it);
                    break;
                }
            }
            ordered.emplace(value, id);
        }
    }
    store_.mut(id)[i] = std::move(value);
    if (log_ != nullptr) log_->log_update(*this, id, i, store_[id][i]);
}

std::size_t Table::delete_where(std::string_view column, const Value& value) {
    if (!units_.empty())
        throw SchemaError("cannot delete from '" + def_.name +
                          "' while a load unit is open");
    int i = def_.column_index(column);
    if (i < 0)
        throw SchemaError("no column '" + std::string(column) + "' in '" +
                          def_.name + "'");
    RowStore kept;
    kept.reserve(store_.size());
    std::size_t removed = 0;
    for (std::size_t id = 0; id < store_.size(); ++id) {
        if (store_[id][i] == value) ++removed;
        else kept.push_back(Row(store_[id]));
    }
    if (removed == 0) return 0;
    store_ = std::move(kept);
    dirty_ = true;

    // Row ids shifted: rebuild the pk index and every secondary index.
    if (!pk_owned_) {
        pk_index_ = std::make_shared<PkIndex>();
        pk_owned_ = true;
        ++index_cows_;
    } else {
        pk_index_->clear();
    }
    if (pk_column_ >= 0) {
        for (RowId id = 0; id < store_.size(); ++id)
            pk_index_->emplace(store_[id][pk_column_].as_integer(), id);
    }
    rebuild_indexes();
    stats_.stale = true;  // compaction: folded rows may be gone
    if (log_ != nullptr) log_->log_delete_where(*this, i, value);
    return removed;
}

void Table::refresh_stats() {
    if (stats_.stale || stats_.rows > store_.size()) {
        rebuild_stats();
        return;
    }
    if (stats_.columns.size() != def_.columns.size())
        stats_.columns.assign(def_.columns.size(), ColumnStats());
    if (stats_.rows < store_.size()) dirty_ = true;
    for (std::size_t r = stats_.rows; r < store_.size(); ++r)
        for (std::size_t c = 0; c < stats_.columns.size(); ++c)
            stats_.columns[c].fold(store_[r][c]);
    stats_.rows = store_.size();
}

void Table::rebuild_stats() {
    std::uint64_t epoch_rows = stats_.epoch_rows;
    stats_ = TableStats{};
    stats_.epoch_rows = epoch_rows;
    stats_.columns.assign(def_.columns.size(), ColumnStats());
    dirty_ = true;
    refresh_stats();
}

void Table::load_stats(TableStats stats) {
    stats.rows = std::min<std::uint64_t>(stats.rows, store_.size());
    stats.epoch_rows = std::max(stats.epoch_rows, stats_.epoch_rows);
    if (stats.columns.size() != def_.columns.size())
        stats.columns.resize(def_.columns.size());
    stats.stale = false;
    stats_ = std::move(stats);
    dirty_ = true;
}

bool Table::note_material_growth() {
    // +64 keeps tiny tables from bumping the epoch on every commit; past
    // that, roughly each doubling of covered rows re-costs cached plans.
    if (stats_.rows <= stats_.epoch_rows * 2 + 64) return false;
    stats_.epoch_rows = stats_.rows;
    return true;
}

void Table::create_index(std::string_view column, IndexKind kind) {
    int i = def_.column_index(column);
    if (i < 0)
        throw SchemaError("cannot index unknown column '" + std::string(column) +
                          "' in '" + def_.name + "'");
    if (has_index(column)) return;
    SecondaryIndex idx;
    idx.column = i;
    idx.kind = kind;
    idx.hash = std::make_shared<HashIndexMap>();
    idx.ordered = std::make_shared<OrderedIndexMap>();
    for (RowId id = 0; id < store_.size(); ++id) {
        if (kind == IndexKind::kHash) idx.hash->emplace(store_[id][i], id);
        else idx.ordered->emplace(store_[id][i], id);
    }
    indexes_.push_back(std::move(idx));
    dirty_ = true;
    if (log_ != nullptr) log_->log_create_index(*this, column, kind);
}

bool Table::has_index(std::string_view column) const {
    int i = def_.column_index(column);
    for (const auto& idx : indexes_)
        if (idx.column == i) return true;
    return false;
}

std::vector<RowId> Table::index_lookup(std::string_view column,
                                       const Value& value) const {
    int i = def_.column_index(column);
    for (const auto& idx : indexes_) {
        if (idx.column != i) continue;
        std::vector<RowId> out;
        if (idx.kind == IndexKind::kHash) {
            auto range = idx.hash->equal_range(value);
            for (auto it = range.first; it != range.second; ++it)
                out.push_back(it->second);
        } else {
            auto range = idx.ordered->equal_range(value);
            for (auto it = range.first; it != range.second; ++it)
                out.push_back(it->second);
        }
        std::sort(out.begin(), out.end());
        return out;
    }
    throw SchemaError("no index on '" + def_.name + "." + std::string(column) +
                      "'");
}

bool Table::has_ordered_index(std::string_view column) const {
    int i = def_.column_index(column);
    for (const auto& idx : indexes_)
        if (idx.column == i && idx.kind == IndexKind::kOrdered) return true;
    return false;
}

std::vector<RowId> Table::index_range_lookup(std::string_view column,
                                             const Value* lo, bool lo_strict,
                                             const Value* hi,
                                             bool hi_strict) const {
    int i = def_.column_index(column);
    for (const auto& idx : indexes_) {
        if (idx.column != i || idx.kind != IndexKind::kOrdered) continue;
        const OrderedIndexMap& ordered = *idx.ordered;
        // NULL keys sort first in the ordered index but compare unknown in
        // SQL, so an unbounded lower end still starts past them.
        auto it = lo == nullptr
                      ? ordered.upper_bound(Value::null())
                      : (lo_strict ? ordered.upper_bound(*lo)
                                   : ordered.lower_bound(*lo));
        std::vector<RowId> out;
        for (; it != ordered.end(); ++it) {
            if (it->first.is_null()) continue;
            if (hi != nullptr) {
                auto ord = it->first.index_order(*hi);
                if (hi_strict ? ord >= 0 : ord > 0) break;
            }
            out.push_back(it->second);
        }
        std::sort(out.begin(), out.end());
        return out;
    }
    throw SchemaError("no ordered index on '" + def_.name + "." +
                      std::string(column) + "'");
}

std::vector<RowId> Table::lookup(std::string_view column,
                                 const Value& value) const {
    if (has_index(column)) return index_lookup(column, value);
    int i = def_.column_index(column);
    if (i < 0)
        throw SchemaError("no column '" + std::string(column) + "' in '" +
                          def_.name + "'");
    std::vector<RowId> out;
    for (RowId id = 0; id < store_.size(); ++id) {
        if (store_[id][i] == value) out.push_back(id);
    }
    return out;
}

void Table::index_row(RowId id) {
    for (auto& idx : indexes_) {
        const Value& v = store_[id][idx.column];
        if (idx.kind == IndexKind::kHash) {
            own_hash(idx, /*preserve=*/true).emplace(v, id);
        } else {
            own_ordered(idx, /*preserve=*/true).emplace(v, id);
        }
    }
}

void Table::verify_into(IntegrityReport& report) const {
    ++report.tables_checked;
    const int doc_col = def_.column_index("doc");
    auto doc_of = [&](const Row& row) -> std::int64_t {
        if (doc_col < 0 || doc_col >= static_cast<int>(row.size())) return -1;
        const Value& v = row[doc_col];
        return v.type() == ValueType::kInteger ? v.as_integer() : -1;
    };
    auto issue = [&](const char* check, std::int64_t doc, std::string detail,
                     IntegrityIssue::Severity severity =
                         IntegrityIssue::Severity::kError) {
        report.add({severity, check, def_.name, doc, std::move(detail)});
    };

    // Rows against the schema (the same rules validate() enforces on the
    // way in — a stored row that no longer passes them was corrupted).
    std::int64_t max_pk = std::numeric_limits<std::int64_t>::min();
    for (RowId id = 0; id < store_.size(); ++id) {
        const Row& row = store_[id];
        ++report.rows_checked;
        if (row.size() != def_.columns.size()) {
            issue("row-arity", doc_of(row),
                  "row " + std::to_string(id) + " has " +
                      std::to_string(row.size()) + " cells, schema has " +
                      std::to_string(def_.columns.size()));
            continue;
        }
        for (std::size_t c = 0; c < row.size(); ++c) {
            const ColumnDef& col = def_.columns[c];
            const Value& v = row[c];
            if (v.is_null()) {
                if (col.not_null && static_cast<int>(c) != pk_column_)
                    issue("not-null", doc_of(row),
                          "row " + std::to_string(id) +
                              ": NULL in NOT NULL column '" + col.name + "'");
                continue;
            }
            bool ok = true;
            switch (col.type) {
                case ValueType::kInteger: ok = v.type() == ValueType::kInteger; break;
                case ValueType::kReal:
                    ok = v.type() == ValueType::kReal ||
                         v.type() == ValueType::kInteger;
                    break;
                case ValueType::kText: ok = v.type() == ValueType::kText; break;
                case ValueType::kNull: ok = false; break;
            }
            if (!ok)
                issue("cell-type", doc_of(row),
                      "row " + std::to_string(id) + " column '" + col.name +
                          "': expected " + std::string(to_string(col.type)) +
                          ", got " + std::string(to_string(v.type())));
        }
        if (pk_column_ >= 0 &&
            row[pk_column_].type() == ValueType::kInteger)
            max_pk = std::max(max_pk, row[pk_column_].as_integer());
    }

    // Primary-key index: exactly one entry per row, pointing back at it.
    if (pk_column_ >= 0) {
        if (pk_index_->size() != store_.size())
            issue("pk-index", -1,
                  "pk index has " + std::to_string(pk_index_->size()) +
                      " entries for " + std::to_string(store_.size()) + " rows");
        for (RowId id = 0; id < store_.size(); ++id) {
            const Row& row = store_[id];
            if (row.size() != def_.columns.size() ||
                row[pk_column_].type() != ValueType::kInteger)
                continue;  // already reported above
            auto it = pk_index_->find(row[pk_column_].as_integer());
            if (it == pk_index_->end() || it->second != id)
                issue("pk-index", doc_of(row),
                      "row " + std::to_string(id) + " pk " +
                          row[pk_column_].to_string() +
                          " missing or mismapped in pk index");
        }
        std::int64_t next = next_pk_.load(std::memory_order_relaxed);
        if (!store_.empty() && max_pk != std::numeric_limits<std::int64_t>::min()
            && next <= max_pk)
            issue("pk-counter", -1,
                  "next_pk " + std::to_string(next) + " <= max stored pk " +
                      std::to_string(max_pk) + " (future inserts would collide)");
    }

    // Secondary indexes: every entry resolves to a live row whose cell
    // matches the key, counts agree, and ordered indexes are sorted.
    if (bulk_) {
        issue("index-deferred", -1,
              "bulk mode: secondary index checks skipped",
              IntegrityIssue::Severity::kWarning);
        return;
    }
    for (const SecondaryIndex& idx : indexes_) {
        ++report.indexes_checked;
        const std::string& col = def_.columns[idx.column].name;
        std::size_t entries = idx.kind == IndexKind::kHash
                                  ? idx.hash->size()
                                  : idx.ordered->size();
        if (entries != store_.size())
            issue("index-size", -1,
                  "index on '" + col + "' has " + std::to_string(entries) +
                      " entries for " + std::to_string(store_.size()) + " rows");
        auto check_entry = [&](const Value& key, RowId id) {
            if (id >= store_.size()) {
                issue("index-entry", -1,
                      "index on '" + col + "' maps key " + key.to_string() +
                          " to out-of-range row " + std::to_string(id));
                return;
            }
            const Row& row = store_[id];
            if (static_cast<std::size_t>(idx.column) < row.size() &&
                !(row[idx.column] == key))
                issue("index-entry", doc_of(row),
                      "index on '" + col + "' maps key " + key.to_string() +
                          " to row " + std::to_string(id) +
                          " whose cell is " + row[idx.column].to_string());
        };
        if (idx.kind == IndexKind::kHash) {
            for (const auto& [key, id] : *idx.hash) check_entry(key, id);
        } else {
            const Value* prev = nullptr;
            for (const auto& [key, id] : *idx.ordered) {
                check_entry(key, id);
                if (prev != nullptr && key < *prev)
                    issue("index-order", -1,
                          "ordered index on '" + col +
                              "' is out of order at key " + key.to_string());
                prev = &key;
            }
        }
    }
}

std::size_t Table::memory_bytes() const {
    std::size_t bytes = sizeof(Table);
    for (std::size_t id = 0; id < store_.size(); ++id) {
        const Row& row = store_[id];
        bytes += sizeof(Row) + row.capacity() * sizeof(Value);
        for (const auto& v : row) {
            if (v.type() == ValueType::kText) bytes += v.as_text().capacity();
        }
    }
    bytes += pk_index_->size() * (sizeof(std::int64_t) + sizeof(RowId) + 16);
    for (const auto& idx : indexes_)
        bytes += (idx.hash->size() + idx.ordered->size()) *
                 (sizeof(Value) + sizeof(RowId) + 16);
    return bytes;
}

double Table::null_fraction() const {
    std::size_t cells = 0, nulls = 0;
    for (std::size_t id = 0; id < store_.size(); ++id) {
        const Row& row = store_[id];
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (static_cast<int>(i) == pk_column_) continue;
            ++cells;
            if (row[i].is_null()) ++nulls;
        }
    }
    return cells == 0 ? 0.0 : static_cast<double>(nulls) / static_cast<double>(cells);
}

}  // namespace xr::rdb
