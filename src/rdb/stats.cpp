#include "rdb/stats.hpp"

namespace xr::rdb {

namespace {

/// Finalizing mix (splitmix64): Value::hash() is a container hash with
/// no uniformity guarantee in the low or high bits; KMV needs hashes
/// that behave like uniform draws over the full 64-bit space.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

void NdvSketch::add(const Value& v) {
    std::uint64_t h = mix64(static_cast<std::uint64_t>(v.hash()));
    if (mins_.size() < k_) {
        mins_.insert(h);
        return;
    }
    auto last = std::prev(mins_.end());
    if (h >= *last) return;  // not among the k smallest
    if (mins_.insert(h).second) mins_.erase(std::prev(mins_.end()));
}

std::uint64_t NdvSketch::estimate() const {
    if (mins_.size() < k_) return mins_.size();  // exact below capacity
    // The k-th minimum of n uniform draws over [0, 2^64) sits near
    // k/n · 2^64, so n ≈ (k-1) · 2^64 / kth_min (the -1 debiases).
    double kth = static_cast<double>(*mins_.rbegin());
    if (kth <= 0.0) return mins_.size();
    double est = (static_cast<double>(k_) - 1.0) * 18446744073709551616.0 / kth;
    return est < 1.0 ? 1 : static_cast<std::uint64_t>(est);
}

void ColumnStats::fold(const Value& v) {
    if (v.is_null()) {
        ++nulls;
        return;
    }
    if (min.is_null() || v.index_order(min) == std::strong_ordering::less)
        min = v;
    if (max.is_null() || v.index_order(max) == std::strong_ordering::greater)
        max = v;
    sketch.add(v);
}

}  // namespace xr::rdb
