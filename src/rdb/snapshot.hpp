// Checksummed binary snapshots of a whole MiniRDB database (DESIGN.md §8).
//
// A snapshot is a point-in-time image: file magic + version, then a
// sequence of sections framed exactly like WAL records — u8 type |
// u32 payload_len | payload | u32 crc (CRC over type + length +
// payload).  Section types: 1 = one table (definition, pk counter,
// secondary-index definitions, row data), 2 = foreign keys, 3 = end
// marker.  The end marker is mandatory; a file that stops before it is
// truncated and rejected, as is any section whose CRC does not match.
//
// Snapshots are written atomically: the image goes to `<path>.tmp`,
// is fsynced, renamed over `path`, and the directory is fsynced — a
// crash at any point leaves either the old snapshot or the new one,
// never a half-written file under the real name.
#pragma once

#include <cstdint>
#include <string>

namespace xr::rdb {

class Database;
struct SalvageReport;

/// snapshot-<seq>.xrs inside `dir`.  A snapshot with sequence N captures
/// the database state at the moment wal-N.log was started: recovery
/// loads snapshot-N then replays wal segments with sequence >= N.
[[nodiscard]] std::string snapshot_file(const std::string& dir,
                                        std::uint64_t seq);

/// Parse a snapshot/WAL filename back into its sequence number; returns
/// false when `name` is not of the given family ("snapshot-NNN.xrs" /
/// "wal-NNN.log").
[[nodiscard]] bool parse_seq(const std::string& name, const std::string& prefix,
                             const std::string& suffix, std::uint64_t& seq);

struct SnapshotStats {
    std::size_t tables = 0;
    std::size_t rows = 0;
    std::uint64_t bytes = 0;
};

/// Serialize `db` into an atomic, checksummed snapshot at `path`.
/// Refuses while a load unit is open (an image of uncommitted state
/// would poison replay).  Fault points: `snapshot.write` before the
/// temp file is written, `snapshot.rename` before it moves into place.
SnapshotStats write_snapshot(const Database& db, const std::string& path);

/// Load the snapshot at `path` into `db`, which must be empty.  Every
/// section is CRC-verified before a byte of it is trusted, every count
/// is bounds-checked against the bytes present, and every type/kind tag
/// is validated; corruption or truncation throws xr::CorruptionError
/// carrying the file, byte offset and section.
SnapshotStats read_snapshot(const std::string& path, Database& db);

/// Salvage variant (DESIGN.md §14): sections that fail their CRC, parse
/// or apply are dropped — the reader resynchronizes on the next valid
/// section frame and keeps going — instead of failing the whole read.
/// Dropped sections/bytes are accounted in `report`.  Only the header
/// (magic + version) is non-negotiable: a file that is not a snapshot
/// at all still throws xr::CorruptionError so recovery can fall back to
/// an older snapshot.
SnapshotStats read_snapshot_salvage(const std::string& path, Database& db,
                                    SalvageReport& report);

}  // namespace xr::rdb
