#include "rdb/value.hpp"

#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace xr::rdb {

std::string_view to_string(ValueType t) {
    switch (t) {
        case ValueType::kNull: return "NULL";
        case ValueType::kInteger: return "INTEGER";
        case ValueType::kReal: return "REAL";
        case ValueType::kText: return "TEXT";
    }
    return "?";
}

std::int64_t Value::as_integer() const {
    if (auto* i = std::get_if<std::int64_t>(&data_)) return *i;
    if (auto* d = std::get_if<double>(&data_)) return static_cast<std::int64_t>(*d);
    throw SchemaError("value is not numeric");
}

double Value::as_real() const {
    if (auto* d = std::get_if<double>(&data_)) return *d;
    if (auto* i = std::get_if<std::int64_t>(&data_))
        return static_cast<double>(*i);
    throw SchemaError("value is not numeric");
}

const std::string& Value::as_text() const {
    if (auto* s = std::get_if<std::string>(&data_)) return *s;
    throw SchemaError("value is not text");
}

std::string Value::to_string() const {
    switch (type()) {
        case ValueType::kNull: return "NULL";
        case ValueType::kInteger: return std::to_string(as_integer());
        case ValueType::kReal: {
            std::string s = std::to_string(as_real());
            return s;
        }
        case ValueType::kText: return as_text();
    }
    return "";
}

namespace {
bool numeric(ValueType t) {
    return t == ValueType::kInteger || t == ValueType::kReal;
}
std::strong_ordering order_double(double a, double b) {
    if (a < b) return std::strong_ordering::less;
    if (a > b) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
}
}  // namespace

std::optional<std::strong_ordering> Value::compare(const Value& other) const {
    if (is_null() || other.is_null()) return std::nullopt;
    if (numeric(type()) && numeric(other.type()))
        return order_double(as_real(), other.as_real());
    if (type() == ValueType::kText && other.type() == ValueType::kText)
        return as_text() <=> other.as_text();
    // Cross-type comparison (text vs number): order by type tag, as SQLite
    // does with its type affinity ordering.
    return static_cast<int>(type()) <=> static_cast<int>(other.type());
}

std::strong_ordering Value::index_order(const Value& other) const {
    bool an = is_null(), bn = other.is_null();
    if (an || bn) {
        if (an && bn) return std::strong_ordering::equal;
        return an ? std::strong_ordering::less : std::strong_ordering::greater;
    }
    return *compare(other);
}

std::size_t Value::hash() const {
    switch (type()) {
        case ValueType::kNull: return 0x9E3779B9;
        case ValueType::kInteger:
            return std::hash<std::int64_t>{}(as_integer());
        case ValueType::kReal: {
            double d = as_real();
            // Hash integral reals like their integer counterparts so hash
            // joins across INTEGER/REAL columns work.
            if (d == std::floor(d) && std::abs(d) < 1e15)
                return std::hash<std::int64_t>{}(static_cast<std::int64_t>(d));
            return std::hash<double>{}(d);
        }
        case ValueType::kText: return std::hash<std::string>{}(as_text());
    }
    return 0;
}

}  // namespace xr::rdb
