// Online integrity checking and salvage repair (DESIGN.md §14).
//
// The cross-table checks lean on the shredded-schema conventions the
// rel/ translator establishes: entity and relationship tables carry an
// INTEGER `doc` column, structural labels live in INTEGER `pre` /
// `post` / `level` columns, and `xrel_docs` registers every loaded
// document with its root row and Dietz label interval.  Tables that do
// not follow the conventions (no `doc` column, no labels) are simply
// outside the scope of the document-level checks — the per-table
// checks in Table::verify_into() still apply to them.
#include "rdb/integrity.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "rdb/database.hpp"
#include "rdb/table.hpp"

namespace xr::rdb {

namespace {

// Mirrors the loader's registry / quarantine schemas (src/loader); the
// rdb layer cannot include loader headers (it sits below them), so the
// names are restated here.  Kept in sync by integrity_test.
constexpr const char* kDocsTable = "xrel_docs";
constexpr const char* kQuarantineTable = "xrel_quarantine";

using Severity = IntegrityIssue::Severity;

/// Index of the named column iff it exists with the wanted type.
int typed_column(const TableDef& def, std::string_view name, ValueType type) {
    int c = def.column_index(name);
    if (c < 0 || def.columns[static_cast<std::size_t>(c)].type != type)
        return -1;
    return c;
}

struct LabeledRow {
    std::int64_t pre = 0;
    std::int64_t post = 0;
    const Table* table = nullptr;
    RowId row = 0;
};

/// Per-document registration from xrel_docs.
struct DocEntry {
    std::int64_t doc = -1;
    std::int64_t root_pk = -1;
    std::string root_entity;
    std::int64_t label_base = 0;
    std::int64_t label_span = 0;
};

void check_document_invariants(const ReadView& db, IntegrityReport& report);
void check_quarantine(const ReadView& db, IntegrityReport& report);
void check_stats_catalog(const ReadView& db, IntegrityReport& report);

void check_foreign_keys_into(const ReadView& db, IntegrityReport& report) {
    for (const ForeignKeyDef& fk : db.foreign_keys()) {
        const Table* src = db.table(fk.table);
        if (src == nullptr) continue;  // no rows to violate it
        const Table* dst = db.table(fk.ref_table);
        int col = src->def().column_index(fk.column);
        if (dst == nullptr || col < 0) {
            // Schema-level dangling declaration: salvage drops it, and
            // it cannot corrupt data by itself — warn, don't fail.
            report.add({Severity::kWarning, "foreign-key-schema", fk.table, -1,
                        "declaration " + fk.table + "." + fk.column + " -> " +
                            fk.ref_table + "." + fk.ref_column +
                            " references a missing table or column"});
            continue;
        }
        int doc_col = typed_column(src->def(), "doc", ValueType::kInteger);
        for (RowId id = 0; id < src->row_count(); ++id) {
            const Value& v = src->row(id)[static_cast<std::size_t>(col)];
            if (v.type() != ValueType::kInteger) continue;  // typed elsewhere
            if (dst->find_pk(v.as_integer()) != nullptr) continue;
            std::int64_t doc = -1;
            if (doc_col >= 0) {
                const Value& d = src->row(id)[static_cast<std::size_t>(doc_col)];
                if (d.type() == ValueType::kInteger) doc = d.as_integer();
            }
            report.add({Severity::kError, "foreign-key", fk.table, doc,
                        fk.table + "." + fk.column + "=" + v.to_string() +
                            " has no match in " + fk.ref_table});
        }
    }
}

void check_document_invariants(const ReadView& db, IntegrityReport& report) {
    const Table* docs = db.table(kDocsTable);
    if (docs == nullptr) return;  // schema built without metadata tables

    const TableDef& ddef = docs->def();
    int c_doc = typed_column(ddef, "doc", ValueType::kInteger);
    int c_root_entity = typed_column(ddef, "root_entity", ValueType::kText);
    int c_root_pk = typed_column(ddef, "root_pk", ValueType::kInteger);
    int c_base = typed_column(ddef, "label_base", ValueType::kInteger);
    int c_span = typed_column(ddef, "label_span", ValueType::kInteger);
    if (c_doc < 0 || c_root_entity < 0 || c_root_pk < 0 || c_base < 0 ||
        c_span < 0) {
        report.add({Severity::kError, "doc-registry", kDocsTable, -1,
                    "registry table does not have the expected "
                    "doc/root_entity/root_pk/label_base/label_span columns"});
        return;
    }

    // Registered documents, rejecting malformed and duplicate rows.
    std::map<std::int64_t, DocEntry> registry;
    for (RowId id = 0; id < docs->row_count(); ++id) {
        const Row& row = docs->row(id);
        const Value& dv = row[static_cast<std::size_t>(c_doc)];
        if (dv.type() != ValueType::kInteger) {
            report.add({Severity::kError, "doc-registry", kDocsTable, -1,
                        "registry row " + std::to_string(id) +
                            " has a non-integer doc id"});
            continue;
        }
        DocEntry e;
        e.doc = dv.as_integer();
        const Value& pkv = row[static_cast<std::size_t>(c_root_pk)];
        const Value& basev = row[static_cast<std::size_t>(c_base)];
        const Value& spanv = row[static_cast<std::size_t>(c_span)];
        const Value& rootv = row[static_cast<std::size_t>(c_root_entity)];
        if (basev.type() != ValueType::kInteger ||
            spanv.type() != ValueType::kInteger) {
            report.add({Severity::kError, "doc-registry", kDocsTable, e.doc,
                        "registration has non-integer label interval"});
            continue;
        }
        e.label_base = basev.as_integer();
        e.label_span = spanv.as_integer();
        if (pkv.type() == ValueType::kInteger) e.root_pk = pkv.as_integer();
        if (rootv.type() == ValueType::kText) e.root_entity = rootv.as_text();
        if (e.label_span < 0) {
            report.add({Severity::kError, "doc-registry", kDocsTable, e.doc,
                        "negative label span " +
                            std::to_string(e.label_span)});
            continue;
        }
        if (!registry.emplace(e.doc, e).second)
            report.add({Severity::kError, "doc-duplicate", kDocsTable, e.doc,
                        "document registered more than once"});
    }
    report.docs_checked = registry.size();

    // Walk every doc-carrying table once: orphaned doc cells, and the
    // structural labels grouped per document for the Dietz checks.
    std::unordered_map<std::int64_t, std::vector<LabeledRow>> labels;
    std::unordered_map<std::int64_t, std::uint64_t> doc_rows;
    std::unordered_set<std::int64_t> orphans_reported;
    for (const std::string& name : db.table_names()) {
        if (name == kDocsTable || name == kQuarantineTable) continue;
        const Table* t = db.table(name);
        int dc = typed_column(t->def(), "doc", ValueType::kInteger);
        if (dc < 0) continue;
        int pre = typed_column(t->def(), "pre", ValueType::kInteger);
        int post = typed_column(t->def(), "post", ValueType::kInteger);
        for (RowId id = 0; id < t->row_count(); ++id) {
            const Row& row = t->row(id);
            const Value& dv = row[static_cast<std::size_t>(dc)];
            if (dv.is_null()) {
                report.add({Severity::kError, "doc-null", name, -1,
                            "row " + std::to_string(id) +
                                " has a NULL doc id"});
                continue;
            }
            if (dv.type() != ValueType::kInteger) continue;  // typed elsewhere
            std::int64_t doc = dv.as_integer();
            ++doc_rows[doc];
            if (registry.find(doc) == registry.end()) {
                if (orphans_reported.insert(doc).second)
                    report.add({Severity::kError, "doc-orphan", name, doc,
                                "rows carry doc id " + std::to_string(doc) +
                                    " but " + kDocsTable +
                                    " has no such document"});
                continue;
            }
            if (pre < 0 || post < 0) continue;  // unlabeled table
            const Value& pv = row[static_cast<std::size_t>(pre)];
            const Value& qv = row[static_cast<std::size_t>(post)];
            if (pv.is_null() && qv.is_null()) continue;  // unlabeled row
            if (pv.type() != ValueType::kInteger ||
                qv.type() != ValueType::kInteger) {
                report.add({Severity::kError, "dietz-interval", name, doc,
                            "row " + std::to_string(id) +
                                " has a half-missing pre/post label"});
                continue;
            }
            labels[doc].push_back(
                {pv.as_integer(), qv.as_integer(), t, id});
        }
    }

    // Per-document label interval: exact tick coverage and proper
    // nesting (descendant(d, a) ⇔ a.pre < d.pre ∧ d.post < a.post).
    for (auto& [doc, entry] : registry) {
        std::vector<LabeledRow>& rows = labels[doc];
        // A corrupted span cell could claim an absurd interval; bound it
        // by what the rows could possibly cover before allocating.
        std::uint64_t plausible = 2 * doc_rows[doc] + 2;
        if (static_cast<std::uint64_t>(entry.label_span) > plausible) {
            report.add({Severity::kError, "dietz-coverage", kDocsTable, doc,
                        "label span " + std::to_string(entry.label_span) +
                            " is implausible for " +
                            std::to_string(doc_rows[doc]) + " row(s)"});
            continue;
        }
        if (entry.label_span == 0) {
            if (!rows.empty())
                report.add({Severity::kError, "dietz-coverage", kDocsTable,
                            doc, "document registered with span 0 but has " +
                                     std::to_string(rows.size()) +
                                     " labeled row(s)"});
            continue;
        }
        bool intervals_ok = true;
        std::vector<std::int64_t> ticks;
        ticks.reserve(rows.size() * 2);
        for (const LabeledRow& r : rows) {
            if (r.pre >= r.post) {
                report.add({Severity::kError, "dietz-interval",
                            r.table->name(), doc,
                            "row " + std::to_string(r.row) + " has pre " +
                                std::to_string(r.pre) + " >= post " +
                                std::to_string(r.post)});
                intervals_ok = false;
                continue;
            }
            ticks.push_back(r.pre);
            ticks.push_back(r.post);
        }
        // Coverage: the document's ticks are exactly
        // {base, …, base+span-1}, each used once (pre or post).
        std::sort(ticks.begin(), ticks.end());
        bool covered =
            ticks.size() == static_cast<std::size_t>(entry.label_span);
        for (std::size_t i = 0; covered && i < ticks.size(); ++i)
            covered = ticks[i] == entry.label_base + static_cast<std::int64_t>(i);
        if (!covered) {
            report.add({Severity::kError, "dietz-coverage", kDocsTable, doc,
                        "labels do not cover [" +
                            std::to_string(entry.label_base) + ", " +
                            std::to_string(entry.label_base +
                                           entry.label_span) +
                            ") exactly (" + std::to_string(ticks.size()) +
                            " tick(s) present, " +
                            std::to_string(entry.label_span) + " expected)"});
            continue;  // nesting over a broken tick set is noise
        }
        if (!intervals_ok) continue;
        // Nesting: sorted by pre, every interval must close inside the
        // innermost still-open ancestor.
        std::sort(rows.begin(), rows.end(),
                  [](const LabeledRow& a, const LabeledRow& b) {
                      return a.pre < b.pre;
                  });
        std::vector<std::int64_t> open;  // ancestor post values
        bool nested = true;
        for (const LabeledRow& r : rows) {
            while (!open.empty() && open.back() < r.pre) open.pop_back();
            if (!open.empty() && r.post > open.back()) {
                report.add({Severity::kError, "dietz-nesting",
                            r.table->name(), doc,
                            "interval [" + std::to_string(r.pre) + ", " +
                                std::to_string(r.post) +
                                "] overlaps its enclosing interval without "
                                "nesting"});
                nested = false;
                break;
            }
            open.push_back(r.post);
        }
        // Root: the document's first tick belongs to its root element.
        if (nested && !rows.empty() && rows.front().pre != entry.label_base)
            report.add({Severity::kError, "doc-root", kDocsTable, doc,
                        "smallest pre label is " +
                            std::to_string(rows.front().pre) +
                            ", expected label_base " +
                            std::to_string(entry.label_base)});
    }

    // Disjoint per-document label ranges (bulk loading hands every doc
    // its own interval; an overlap means two docs claim the same ticks).
    std::vector<const DocEntry*> by_base;
    by_base.reserve(registry.size());
    for (auto& [doc, entry] : registry)
        if (entry.label_span > 0) by_base.push_back(&entry);
    std::sort(by_base.begin(), by_base.end(),
              [](const DocEntry* a, const DocEntry* b) {
                  return a->label_base < b->label_base;
              });
    for (std::size_t i = 1; i < by_base.size(); ++i) {
        const DocEntry* prev = by_base[i - 1];
        const DocEntry* cur = by_base[i];
        if (prev->label_base + prev->label_span > cur->label_base)
            report.add({Severity::kError, "label-range-overlap", kDocsTable,
                        cur->doc,
                        "label range of doc " + std::to_string(cur->doc) +
                            " overlaps doc " + std::to_string(prev->doc)});
    }

    // Root registration: when the root entity resolves to a table, the
    // registered root row must exist and belong to the document.  (The
    // registry stores the *element* name; entity table names usually
    // match, but sanitized names may not — those docs are skipped.)
    for (auto& [doc, entry] : registry) {
        if (entry.root_pk < 0 || entry.root_entity.empty()) continue;
        const Table* root = db.table(entry.root_entity);
        if (root == nullptr) continue;
        auto id = root->find_pk_rowid(entry.root_pk);
        if (!id) {
            report.add({Severity::kError, "doc-root", root->name(), doc,
                        "registered root row pk=" +
                            std::to_string(entry.root_pk) +
                            " does not exist"});
            continue;
        }
        int dc = typed_column(root->def(), "doc", ValueType::kInteger);
        if (dc < 0) continue;
        const Value& dv = root->row(*id)[static_cast<std::size_t>(dc)];
        if (dv.type() != ValueType::kInteger || dv.as_integer() != doc)
            report.add({Severity::kError, "doc-root", root->name(), doc,
                        "registered root row pk=" +
                            std::to_string(entry.root_pk) +
                            " belongs to a different document"});
    }
}

void check_quarantine(const ReadView& db, IntegrityReport& report) {
    const Table* q = db.table(kQuarantineTable);
    if (q == nullptr) return;
    int c_idx = typed_column(q->def(), "idx", ValueType::kInteger);
    int c_type = typed_column(q->def(), "error_type", ValueType::kText);
    if (c_idx < 0 || c_type < 0) {
        report.add({Severity::kWarning, "quarantine-row", kQuarantineTable, -1,
                    "quarantine table does not have the expected idx / "
                    "error_type columns"});
        return;
    }
    for (RowId id = 0; id < q->row_count(); ++id) {
        const Row& row = q->row(id);
        const Value& idx = row[static_cast<std::size_t>(c_idx)];
        const Value& type = row[static_cast<std::size_t>(c_type)];
        if (idx.type() != ValueType::kInteger || idx.as_integer() < 0 ||
            type.type() != ValueType::kText || type.as_text().empty())
            report.add({Severity::kWarning, "quarantine-row", kQuarantineTable,
                        -1,
                        "row " + std::to_string(id) +
                            " is missing its document index or error type"});
    }
}

void check_stats_catalog(const ReadView& db, IntegrityReport& report) {
    const Table* cat = db.table(Database::kStatsTable);
    if (cat == nullptr) return;
    int c_tbl = typed_column(cat->def(), "tbl", ValueType::kText);
    int c_col = typed_column(cat->def(), "col", ValueType::kText);
    if (c_tbl < 0 || c_col < 0) {
        report.add({Severity::kWarning, "stats-catalog",
                    std::string(Database::kStatsTable), -1,
                    "catalog does not have the expected tbl / col columns"});
        return;
    }
    // Stale rows are legitimate (drop_table leaves them until the next
    // analyze), so coverage gaps only warn.
    std::set<std::string> missing;
    for (RowId id = 0; id < cat->row_count(); ++id) {
        const Row& row = cat->row(id);
        const Value& tv = row[static_cast<std::size_t>(c_tbl)];
        const Value& cv = row[static_cast<std::size_t>(c_col)];
        if (tv.type() != ValueType::kText || cv.type() != ValueType::kText)
            continue;  // cell-type damage is reported by verify_into
        const Table* target = db.table(tv.as_text());
        std::string what;
        if (target == nullptr)
            what = "table '" + tv.as_text() + "'";
        else if (target->def().column_index(cv.as_text()) < 0)
            what = "column '" + tv.as_text() + "." + cv.as_text() + "'";
        if (!what.empty() && missing.insert(what).second)
            report.add({Severity::kWarning, "stats-catalog",
                        std::string(Database::kStatsTable), -1,
                        "statistics reference missing " + what});
    }
}

}  // namespace

std::string IntegrityIssue::to_string() const {
    std::string out = severity == Severity::kError ? "error" : "warning";
    out += " [" + check + "]";
    if (!table.empty()) out += " " + table;
    if (doc >= 0) out += " doc " + std::to_string(doc);
    out += ": " + detail;
    return out;
}

void IntegrityReport::add(IntegrityIssue issue) {
    if (issues.size() >= kMaxIssues) {
        ++issues_suppressed;
        return;
    }
    issues.push_back(std::move(issue));
}

std::size_t IntegrityReport::errors() const {
    std::size_t n = issues_suppressed;  // suppression starts after errors cap
    for (const IntegrityIssue& i : issues)
        if (i.severity == Severity::kError) ++n;
    return n;
}

std::size_t IntegrityReport::warnings() const {
    std::size_t n = 0;
    for (const IntegrityIssue& i : issues)
        if (i.severity == Severity::kWarning) ++n;
    return n;
}

std::string IntegrityReport::to_string() const {
    std::string out =
        "integrity: " + std::to_string(tables_checked) + " table(s), " +
        std::to_string(rows_checked) + " row(s), " +
        std::to_string(indexes_checked) + " index(es), " +
        std::to_string(docs_checked) + " doc(s) checked; " +
        std::to_string(errors()) + " error(s), " +
        std::to_string(warnings()) + " warning(s)";
    for (const IntegrityIssue& i : issues) out += "\n  " + i.to_string();
    if (issues_suppressed > 0)
        out += "\n  (" + std::to_string(issues_suppressed) +
               " further issue(s) suppressed)";
    return out;
}

IntegrityReport verify_database(const ReadView& db) {
    IntegrityReport report;
    for (const std::string& name : db.table_names()) {
        const Table* t = db.table(name);
        t->verify_into(report);  // counts each row it walks
        ++report.tables_checked;
        report.indexes_checked += t->index_defs().size();
    }
    check_foreign_keys_into(db, report);
    check_document_invariants(db, report);
    check_quarantine(db, report);
    check_stats_catalog(db, report);
    return report;
}

namespace {

/// Record `doc` in xrel_quarantine (creating the table if needed) so
/// the purge below leaves a durable trace.  Best-effort: a quarantine
/// table with an unexpected shape is left alone.
void quarantine_doc(Database& db, std::int64_t doc, const std::string& why) {
    Table* q = db.table(kQuarantineTable);
    if (q == nullptr) {
        TableDef def;
        def.name = kQuarantineTable;
        def.columns = {
            {"pk", ValueType::kInteger, true, true},
            {"idx", ValueType::kInteger, true, false},
            {"error_type", ValueType::kText, true, false},
            {"error_message", ValueType::kText, false, false},
            {"line", ValueType::kInteger, false, false},
            {"col", ValueType::kInteger, false, false},
            {"raw_xml", ValueType::kText, false, false},
        };
        q = &db.create_table(std::move(def));
    }
    const TableDef& def = q->def();
    int c_idx = typed_column(def, "idx", ValueType::kInteger);
    int c_type = typed_column(def, "error_type", ValueType::kText);
    int c_msg = def.column_index("error_message");
    if (c_idx < 0 || c_type < 0) return;
    // One salvage record per document, even across repeated opens.
    for (RowId id = 0; id < q->row_count(); ++id) {
        const Row& row = q->row(id);
        const Value& idx = row[static_cast<std::size_t>(c_idx)];
        const Value& type = row[static_cast<std::size_t>(c_type)];
        if (idx.type() == ValueType::kInteger && idx.as_integer() == doc &&
            type.type() == ValueType::kText && type.as_text() == "salvage")
            return;
    }
    Row row(q->column_count());
    row[static_cast<std::size_t>(c_idx)] = Value(doc);
    row[static_cast<std::size_t>(c_type)] = Value("salvage");
    if (c_msg >= 0) row[static_cast<std::size_t>(c_msg)] = Value(why);
    q->insert(std::move(row));
}

/// Remove every row of `doc` from every doc-carrying table, including
/// its xrel_docs registration.  Returns rows purged.
std::size_t purge_doc(Database& db, std::int64_t doc) {
    std::size_t purged = 0;
    for (const std::string& name : db.table_names()) {
        if (name == kQuarantineTable) continue;
        Table* t = db.table(name);
        if (typed_column(t->def(), "doc", ValueType::kInteger) < 0) continue;
        purged += t->delete_where("doc", Value(doc));
    }
    return purged;
}

}  // namespace

std::size_t salvage_repair(Database& db, SalvageReport& sr) {
    constexpr int kMaxPasses = 4;
    constexpr std::size_t kMaxNotes = 64;
    std::size_t quarantined = 0;

    // Rows whose doc id is NULL belong to no recoverable document;
    // purge them first so the verify passes below see only attributable
    // damage.
    for (const std::string& name : db.table_names()) {
        if (name == kQuarantineTable) continue;
        Table* t = db.table(name);
        int dc = typed_column(t->def(), "doc", ValueType::kInteger);
        if (dc < 0) continue;
        bool any_null = false;
        for (RowId id = 0; !any_null && id < t->row_count(); ++id)
            any_null = t->row(id)[static_cast<std::size_t>(dc)].is_null();
        if (!any_null) continue;
        std::size_t n = t->delete_where("doc", Value::null());
        sr.rows_purged += n;
        if (sr.notes.size() < kMaxNotes)
            sr.notes.push_back("purged " + std::to_string(n) +
                               " row(s) with NULL doc id from '" + name + "'");
    }

    // Quarantine-and-purge until verification is document-clean.  Each
    // pass can surface new damage (e.g. a purge exposing a coverage gap
    // in a neighbouring doc is impossible, but orphan chains are not),
    // so iterate — bounded, since every pass must quarantine at least
    // one new document to continue.
    for (int pass = 0; pass < kMaxPasses; ++pass) {
        IntegrityReport rep = verify_database(db);
        std::set<std::int64_t> bad;
        std::map<std::int64_t, std::string> why;
        for (const IntegrityIssue& i : rep.issues) {
            if (i.severity != Severity::kError || i.doc < 0) continue;
            bad.insert(i.doc);
            auto& w = why[i.doc];
            if (w.empty()) w = i.check + ": " + i.detail;
        }
        if (bad.empty()) break;
        for (std::int64_t doc : bad) {
            quarantine_doc(db, doc, why[doc]);
            std::size_t purged = purge_doc(db, doc);
            ++quarantined;
            ++sr.docs_quarantined;
            sr.rows_purged += purged;
            if (sr.notes.size() < kMaxNotes)
                sr.notes.push_back(
                    "quarantined doc " + std::to_string(doc) + " (" +
                    why[doc] + "), purged " + std::to_string(purged) +
                    " row(s)");
        }
    }

    // Dangling foreign-key declarations cannot be repaired row-by-row;
    // nothing enforces them either, so they stay as verify warnings.
    return quarantined;
}

}  // namespace xr::rdb
