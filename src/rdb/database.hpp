// MiniRDB catalog: a named collection of tables with foreign-key metadata.
//
// A Database is in-memory by default.  open() attaches it to a data
// directory, after which it recovers the newest durable state
// (snapshot + WAL replay, see DESIGN.md §8) and logs every committed
// mutation to a write-ahead log whose fsync boundary coincides with the
// outermost load unit — the unit of atomicity is also the unit of
// durability.  checkpoint() compacts the log into a fresh checksummed
// snapshot.
//
// Concurrency (DESIGN.md §9/§15): mutations stay single-writer (the
// load unit contract), serialized by a writer mutex spanning the
// outermost load unit, checkpoint() and depth-0 DDL.  Readers never
// take that mutex: every committed state is published as an immutable
// DatabaseVersion (copy-on-write table epochs keyed by the commit
// watermark), and read_snapshot() pins the current version for the
// snapshot's lifetime.  A pinned version stays readable — latch-free —
// no matter how many commits, checkpoints or DDL statements land
// meanwhile; versions retire automatically when the last pin drops.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rdb/integrity.hpp"
#include "rdb/table.hpp"

namespace xr::rdb {

class Wal;
class Database;
struct SnapshotStats;

/// Declared foreign key; enforcement happens via check_foreign_keys()
/// (bulk loading first, verification after — the loader's deferred-IDREF
/// strategy requires this).
struct ForeignKeyDef {
    std::string table;
    std::string column;
    std::string ref_table;
    std::string ref_column;  ///< must be the referenced table's primary key
};

/// How open() treats damaged storage (DESIGN.md §14).
enum class RecoveryMode {
    /// Any corruption that cannot be explained by a crash (bad snapshot
    /// with no fallback, mid-segment WAL damage, broken chain) fails the
    /// open with a typed xr::CorruptionError.  The default: never build
    /// a state the operator did not ask for.
    kStrict,
    /// Best-effort repair: skip corrupt snapshot sections and WAL
    /// records, quarantine every document whose invariants broke, purge
    /// its rows, and checkpoint the repaired state so the damaged files
    /// leave the recovery chain.  Everything dropped is accounted in
    /// RecoveryReport::salvage — lossy, never silent.
    kSalvage,
};

/// Knobs for open().
struct DurabilityOptions {
    /// Log mutations to a WAL.  Without it the database only persists at
    /// explicit checkpoint() calls — everything since the last snapshot
    /// is lost on a crash.
    bool use_wal = true;
    /// fsync the WAL on each outermost commit (the crash-safe default);
    /// off, commits write() without syncing — faster, but a power loss
    /// may drop recently committed units.
    bool sync_on_commit = true;
    /// Strict (fail on damage) or salvage (repair, quarantine, report).
    RecoveryMode recovery = RecoveryMode::kStrict;
    /// checkpoint() re-reads the snapshot it just wrote before rotating
    /// the WAL: a checkpoint that cannot be read back must not become
    /// the recovery chain's new base.  Costs one extra read of the
    /// image; disable only in benchmarks.
    bool verify_checkpoints = true;
};

/// What the salvage path dropped and repaired; embedded in
/// RecoveryReport when open() ran with RecoveryMode::kSalvage.
struct SalvageReport {
    bool attempted = false;  ///< open() ran in salvage mode
    std::size_t snapshot_sections_dropped = 0;
    std::uint64_t snapshot_bytes_dropped = 0;
    std::size_t wal_records_skipped = 0;   ///< valid frames that failed to apply
    std::uint64_t wal_bytes_dropped = 0;   ///< unreadable WAL bytes resynced past
    std::size_t wal_segments_missing = 0;  ///< holes in the segment chain
    std::size_t docs_quarantined = 0;      ///< documents purged by the repair pass
    std::size_t rows_purged = 0;           ///< rows removed with them
    std::vector<std::string> notes;        ///< human-readable drop log

    /// True when salvage dropped or repaired anything — i.e. the
    /// recovered state differs from what a strict open would need.
    [[nodiscard]] bool any() const;
    [[nodiscard]] std::string to_string() const;
};

/// What analyze() measured; see Database::analyze().
struct AnalyzeReport {
    std::size_t tables = 0;        ///< tables analyzed
    std::size_t columns = 0;       ///< column statistics rebuilt
    std::uint64_t rows = 0;        ///< rows scanned
    std::uint64_t epoch = 0;       ///< statistics epoch after the rebuild
    bool persisted = false;        ///< written to the xrel_stats catalog
    [[nodiscard]] std::string to_string() const;
};

/// What recovery found and did; returned by open().
struct RecoveryReport {
    std::string dir;
    std::string snapshot_path;           ///< empty when starting from scratch
    std::uint64_t snapshot_seq = 0;
    std::size_t snapshots_skipped = 0;   ///< newer snapshots rejected as corrupt
    std::size_t tables_restored = 0;
    std::size_t rows_restored = 0;       ///< rows after snapshot + replay
    std::size_t wal_segments = 0;        ///< segments replayed
    std::size_t records_replayed = 0;
    std::size_t torn_bytes_dropped = 0;  ///< truncated off the newest segment
    std::size_t units_rolled_back = 0;   ///< uncommitted units discarded
    SalvageReport salvage;               ///< drops/repairs (salvage mode only)
    [[nodiscard]] std::string to_string() const;
};

/// One immutable published epoch of the whole database (DESIGN.md §15).
///
/// Built by the writer at each publication point (outermost commit,
/// depth-0 DDL, end of recovery) from frozen table clones that share
/// row chunks and index containers with the live tables.  Once
/// published a version never changes; it is retired automatically when
/// the last ReadSnapshot pinning it is destroyed (shared_ptr refcount
/// is the version GC — no epoch list to sweep).
class DatabaseVersion {
public:
    /// Commit watermark this version was published at.
    [[nodiscard]] std::uint64_t watermark() const { return watermark_; }
    /// Statistics epoch at publication (plan-cache key component).
    [[nodiscard]] std::uint64_t stats_epoch() const { return stats_epoch_; }

    [[nodiscard]] const Table* table(std::string_view name) const {
        for (const auto& t : tables_)
            if (t->name() == name) return t.get();
        return nullptr;
    }
    [[nodiscard]] const Table& require(std::string_view name) const;

    [[nodiscard]] std::vector<std::string> table_names() const {
        std::vector<std::string> names;
        names.reserve(tables_.size());
        for (const auto& t : tables_) names.push_back(t->name());
        return names;
    }
    [[nodiscard]] std::size_t table_count() const { return tables_.size(); }
    [[nodiscard]] const std::vector<ForeignKeyDef>& foreign_keys() const {
        return fks_;
    }
    [[nodiscard]] std::size_t total_rows() const {
        std::size_t n = 0;
        for (const auto& t : tables_) n += t->row_count();
        return n;
    }

private:
    friend class Database;
    std::uint64_t watermark_ = 0;
    std::uint64_t stats_epoch_ = 0;
    std::vector<std::shared_ptr<const Table>> tables_;
    std::vector<ForeignKeyDef> fks_;
};

/// Cheap, copyable resolver over either a pinned immutable
/// DatabaseVersion or the live Database (DESIGN.md §15).
///
/// Read-only consumers — the SQL executor, the planner, integrity
/// verification — take a ReadView so one code path serves both worlds:
/// concurrent queries read a pinned version; writer-thread and
/// quiesced contexts (recovery, loaders' FK checks, tests) pass the
/// Database itself via the implicit conversion and read live state.
/// A live view is only safe where reading the tables directly is —
/// i.e. under writer exclusivity or with no writer running.
class ReadView {
public:
    /*implicit*/ ReadView(const Database& db) : db_(&db) {}
    explicit ReadView(const DatabaseVersion& version) : version_(&version) {}

    [[nodiscard]] const Table* table(std::string_view name) const;
    [[nodiscard]] const Table& require(std::string_view name) const;
    [[nodiscard]] std::vector<std::string> table_names() const;
    [[nodiscard]] const std::vector<ForeignKeyDef>& foreign_keys() const;
    /// Statistics epoch the view's tables carry (plan-cache keying).
    [[nodiscard]] std::uint64_t stats_epoch() const;

    /// Non-null when this view reads a pinned version.
    [[nodiscard]] const DatabaseVersion* version() const { return version_; }

private:
    const Database* db_ = nullptr;
    const DatabaseVersion* version_ = nullptr;
};

/// A consistent read view of the database (DESIGN.md §9/§15).
///
/// Pins the DatabaseVersion that was current at acquisition: row
/// storage and indexes reachable through view() can never change or be
/// freed underneath the reader, no latch is held, and writers are
/// never blocked — a snapshot opened before a bulk load reads the
/// pre-load epoch to completion while the load commits new epochs
/// beside it.  `watermark()` names the pinned epoch — the key caches
/// invalidate by.  Snapshots are cheap (two shared_ptr copies) and any
/// number may be open at once.
class ReadSnapshot {
public:
    explicit ReadSnapshot(std::shared_ptr<const DatabaseVersion> version)
        : version_(std::move(version)) {}

    [[nodiscard]] std::uint64_t watermark() const {
        return version_->watermark();
    }
    /// The pinned epoch; valid for the snapshot's lifetime.
    [[nodiscard]] const DatabaseVersion& version() const { return *version_; }
    /// Resolver over the pinned epoch for executor/planner/verify.
    [[nodiscard]] ReadView view() const { return ReadView(*version_); }

private:
    std::shared_ptr<const DatabaseVersion> version_;
};

/// Observability counters for the MVCC read path (DESIGN.md §15).
struct MvccStats {
    std::uint64_t versions_published = 0;  ///< epochs published since open
    std::size_t versions_live = 0;    ///< still pinned (incl. the current one)
    std::uint64_t versions_retired = 0;    ///< published and since freed
    std::uint64_t tables_republished = 0;  ///< frozen table clones cut
    std::uint64_t chunks_cowed = 0;        ///< row chunks copied on write
    std::uint64_t indexes_cowed = 0;       ///< index containers copied on write
    [[nodiscard]] std::string to_string() const;
};

class Database {
public:
    Database();
    ~Database();
    Database(const Database&) = delete;
    Database& operator=(const Database&) = delete;
    /// Moving requires no open load unit and no concurrent readers or
    /// writers (the mutexes stay with each object; only data moves).
    Database(Database&&) noexcept;
    Database& operator=(Database&&) noexcept;

    /// Attach this (still empty) database to `dir`, creating it if needed,
    /// and recover: load the newest snapshot whose checksums verify
    /// (falling back to older ones when a newer image is corrupt), replay
    /// every WAL segment from that snapshot forward, truncate the torn
    /// tail of the newest segment, and roll back units left uncommitted.
    /// In strict mode (the default), throws xr::CorruptionError when the
    /// surviving files cannot produce a consistent state (mid-segment
    /// WAL damage, a torn record in a non-newest segment, every snapshot
    /// corrupt).  With RecoveryMode::kSalvage, damage is skipped and
    /// repaired instead: broken documents are quarantined and purged,
    /// the result is checkpointed, and RecoveryReport::salvage accounts
    /// every drop.
    RecoveryReport open(const std::string& dir,
                        const DurabilityOptions& opts = {});

    /// Write a fresh snapshot and start a new WAL segment.  Requires an
    /// open() data directory and no open load unit.  Unless
    /// DurabilityOptions::verify_checkpoints is off, the snapshot is
    /// re-read and cross-checked (table/row/pk-counter agreement)
    /// *before* the WAL rotates — a checkpoint that cannot be read back
    /// is deleted and the previous snapshot + WAL remain authoritative.
    /// Fault point: `snapshot.verify` before the verification read.
    /// Holds the writer mutex (no logical change, so no new epoch is
    /// published); concurrent readers keep flowing on pinned versions.
    SnapshotStats checkpoint();

    /// Online integrity check (DESIGN.md §14): holds the writer mutex and
    /// validates the *live* state — every per-table and cross-table
    /// invariant (see rdb/integrity.hpp for the catalogue), including
    /// mutations not yet published as an epoch.  Readers keep flowing on
    /// pinned versions; must not be called from a thread holding a load
    /// unit open (the writer mutex is not recursive).  To verify a
    /// pinned epoch instead, pass `snapshot.view()` to verify_database().
    [[nodiscard]] IntegrityReport verify() const;

    /// Flush (and fsync) buffered WAL records outside a commit — callers
    /// use it after depth-0 DDL like schema materialization.  No-op when
    /// the WAL is off.
    void flush_wal();

    [[nodiscard]] bool durable() const { return !dir_.empty(); }
    [[nodiscard]] const std::string& data_dir() const { return dir_; }
    /// Sequence of the active snapshot/WAL generation.
    [[nodiscard]] std::uint64_t storage_seq() const { return wal_seq_; }
    /// Record bytes appended to the active WAL segment (bench metric).
    [[nodiscard]] std::uint64_t wal_bytes_appended() const;

    Table& create_table(TableDef def);
    void drop_table(std::string_view name);

    [[nodiscard]] Table* table(std::string_view name);
    [[nodiscard]] const Table* table(std::string_view name) const;
    /// Throwing accessors for code paths where absence is a logic error.
    [[nodiscard]] Table& require(std::string_view name);
    [[nodiscard]] const Table& require(std::string_view name) const;

    [[nodiscard]] std::vector<std::string> table_names() const;
    [[nodiscard]] std::size_t table_count() const { return tables_.size(); }

    void add_foreign_key(ForeignKeyDef fk);
    [[nodiscard]] const std::vector<ForeignKeyDef>& foreign_keys() const {
        return fks_;
    }

    /// Verify every non-NULL FK value resolves; returns violation messages.
    [[nodiscard]] std::vector<std::string> check_foreign_keys() const;

    // -- statistics (DESIGN.md §13) -------------------------------------------
    /// Rebuild every table's statistics from scratch (fresh sketches, so
    /// NDV estimates reflect current contents, not incremental history),
    /// bump the statistics epoch, and persist the results to the
    /// `xrel_stats` catalog table — dropped and re-created under its own
    /// committed unit, so the snapshot/WAL machinery carries statistics
    /// across restarts like any other rows.  Requires no open load unit.
    AnalyzeReport analyze();

    /// Monotonic epoch for plan invalidation: bumped by analyze() and by
    /// commits that grow a table materially (~2x) past its last bump.
    /// Plan caches fold it into their keys, so a stale cached plan ages
    /// out instead of serving forever (DESIGN.md §13).
    [[nodiscard]] std::uint64_t stats_epoch() const {
        return stats_epoch_.load(std::memory_order_acquire);
    }

    /// Name of the statistics catalog table analyze() maintains.
    static constexpr std::string_view kStatsTable = "xrel_stats";

    /// Bulk-load bracketing: begin_bulk() switches every table to deferred
    /// secondary-index maintenance, end_bulk() rebuilds all indexes in one
    /// pass.  Tables created while the bracket is open join it.
    void begin_bulk();
    void end_bulk();
    [[nodiscard]] bool in_bulk() const { return bulk_; }

    /// Atomic load units across every table (see Table::begin_unit).
    /// Units nest; rollback_unit() restores row storage, indexes and pk
    /// counters to the matching begin_unit() and closes any bulk bracket
    /// left open by an interrupted merge.  Tables created while a unit is
    /// open join it (they are emptied again on rollback).
    ///
    /// With a WAL attached, the outermost commit_unit() makes the unit
    /// durable *before* committing in memory: if flushing the commit
    /// frame fails, the exception propagates with the unit still open,
    /// and the caller's rollback restores the pre-unit state on both
    /// sides.  The outermost commit then publishes a new epoch, making
    /// the unit's rows visible to snapshots opened from here on.
    void begin_unit();
    void commit_unit();
    void rollback_unit();
    [[nodiscard]] bool in_unit() const { return unit_depth_ > 0; }

    // -- concurrent reads (DESIGN.md §9/§15) ---------------------------------
    /// Pin the current published epoch.  Never blocks behind writers (the
    /// only synchronization is a pointer copy under a short mutex) and
    /// holds no latch afterwards: the returned snapshot reads its pinned
    /// version to completion however many commits land concurrently.
    /// Safe from any thread, including one holding a load unit open —
    /// the snapshot then simply reads the last *committed* epoch.
    [[nodiscard]] ReadSnapshot read_snapshot() const {
        std::lock_guard<std::mutex> guard(version_mu_);
        return ReadSnapshot{published_};
    }

    /// Monotonic count of committed outermost load units and depth-0 DDL
    /// statements — the cache-invalidation epoch: a cached result tagged
    /// with an older watermark may no longer reflect table contents.
    /// Rolled-back units do not advance it (readers never saw their rows).
    [[nodiscard]] std::uint64_t commit_watermark() const {
        return commit_watermark_.load(std::memory_order_acquire);
    }

    /// MVCC observability: epochs published/live/retired, frozen table
    /// clones cut, chunks and index containers copied on write.
    [[nodiscard]] MvccStats mvcc_stats() const;

    /// Records appended to the active WAL segment (the durable LSN); 0
    /// while in-memory.  Advances with each logged mutation, so it also
    /// serves as a fine-grained change tick for durable databases.
    [[nodiscard]] std::uint64_t wal_lsn() const;

    [[nodiscard]] std::size_t total_rows() const;
    [[nodiscard]] std::size_t memory_bytes() const;

private:
    std::vector<std::unique_ptr<Table>> tables_;
    std::vector<ForeignKeyDef> fks_;
    bool bulk_ = false;
    std::size_t unit_depth_ = 0;

    // -- concurrency state (DESIGN.md §9/§15) --------------------------------
    // Writer mutex: serializes the outermost load unit, checkpoint() and
    // depth-0 DDL against each other.  Readers never take it — they pin
    // published_ under version_mu_ (held only for the pointer copy or
    // swap) and read the immutable version latch-free.
    mutable std::mutex writer_mu_;
    std::atomic<std::uint64_t> commit_watermark_{0};
    std::atomic<std::uint64_t> stats_epoch_{0};

    // Current published epoch plus a weak registry of every epoch still
    // alive (for mvcc_stats); both guarded by version_mu_.
    mutable std::mutex version_mu_;
    std::shared_ptr<const DatabaseVersion> published_;
    std::vector<std::weak_ptr<const DatabaseVersion>> version_registry_;
    std::uint64_t versions_published_ = 0;
    std::uint64_t tables_republished_ = 0;

    /// Freeze the live tables into a new DatabaseVersion and swap it in
    /// as the current epoch.  Writer-side only, at publication points:
    /// outermost commit, depth-0 DDL, end of open().  O(#tables) plus
    /// O(#chunks) for tables that changed; unchanged tables reuse their
    /// cached frozen clone.
    void publish_version();

    /// Recovery tail: install persisted statistics from xrel_stats where
    /// they cover more rows than WAL replay already re-folded, then fold
    /// any uncovered remainder so the planner has numbers immediately.
    void load_stats_catalog();

    // -- durability state (empty / null while in-memory only) ----------------
    std::string dir_;
    DurabilityOptions dopts_;
    std::uint64_t wal_seq_ = 0;
    std::unique_ptr<Wal> wal_;
};

}  // namespace xr::rdb
