// MiniRDB catalog: a named collection of tables with foreign-key metadata.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rdb/table.hpp"

namespace xr::rdb {

/// Declared foreign key; enforcement happens via check_foreign_keys()
/// (bulk loading first, verification after — the loader's deferred-IDREF
/// strategy requires this).
struct ForeignKeyDef {
    std::string table;
    std::string column;
    std::string ref_table;
    std::string ref_column;  ///< must be the referenced table's primary key
};

class Database {
public:
    Database() = default;
    Database(const Database&) = delete;
    Database& operator=(const Database&) = delete;
    Database(Database&&) = default;
    Database& operator=(Database&&) = default;

    Table& create_table(TableDef def);
    void drop_table(std::string_view name);

    [[nodiscard]] Table* table(std::string_view name);
    [[nodiscard]] const Table* table(std::string_view name) const;
    /// Throwing accessors for code paths where absence is a logic error.
    [[nodiscard]] Table& require(std::string_view name);
    [[nodiscard]] const Table& require(std::string_view name) const;

    [[nodiscard]] std::vector<std::string> table_names() const;
    [[nodiscard]] std::size_t table_count() const { return tables_.size(); }

    void add_foreign_key(ForeignKeyDef fk) { fks_.push_back(std::move(fk)); }
    [[nodiscard]] const std::vector<ForeignKeyDef>& foreign_keys() const {
        return fks_;
    }

    /// Verify every non-NULL FK value resolves; returns violation messages.
    [[nodiscard]] std::vector<std::string> check_foreign_keys() const;

    /// Bulk-load bracketing: begin_bulk() switches every table to deferred
    /// secondary-index maintenance, end_bulk() rebuilds all indexes in one
    /// pass.  Tables created while the bracket is open join it.
    void begin_bulk();
    void end_bulk();
    [[nodiscard]] bool in_bulk() const { return bulk_; }

    /// Atomic load units across every table (see Table::begin_unit).
    /// Units nest; rollback_unit() restores row storage, indexes and pk
    /// counters to the matching begin_unit() and closes any bulk bracket
    /// left open by an interrupted merge.  Tables created while a unit is
    /// open join it (they are emptied again on rollback).
    void begin_unit();
    void commit_unit();
    void rollback_unit();
    [[nodiscard]] bool in_unit() const { return unit_depth_ > 0; }

    [[nodiscard]] std::size_t total_rows() const;
    [[nodiscard]] std::size_t memory_bytes() const;

private:
    std::vector<std::unique_ptr<Table>> tables_;
    std::vector<ForeignKeyDef> fks_;
    bool bulk_ = false;
    std::size_t unit_depth_ = 0;
};

}  // namespace xr::rdb
