// MiniRDB catalog: a named collection of tables with foreign-key metadata.
//
// A Database is in-memory by default.  open() attaches it to a data
// directory, after which it recovers the newest durable state
// (snapshot + WAL replay, see DESIGN.md §8) and logs every committed
// mutation to a write-ahead log whose fsync boundary coincides with the
// outermost load unit — the unit of atomicity is also the unit of
// durability.  checkpoint() compacts the log into a fresh checksummed
// snapshot.
//
// Concurrency (DESIGN.md §9): mutations stay single-writer (the load
// unit contract), but any number of reader threads may query through
// read_snapshot(), which latches out the writer for the snapshot's
// lifetime.  The exclusive latch spans the *outermost* load unit, so
// readers only ever observe committed states; commit_watermark() names
// those states for cache invalidation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rdb/integrity.hpp"
#include "rdb/table.hpp"

namespace xr::rdb {

class Wal;
struct SnapshotStats;

/// Declared foreign key; enforcement happens via check_foreign_keys()
/// (bulk loading first, verification after — the loader's deferred-IDREF
/// strategy requires this).
struct ForeignKeyDef {
    std::string table;
    std::string column;
    std::string ref_table;
    std::string ref_column;  ///< must be the referenced table's primary key
};

/// How open() treats damaged storage (DESIGN.md §14).
enum class RecoveryMode {
    /// Any corruption that cannot be explained by a crash (bad snapshot
    /// with no fallback, mid-segment WAL damage, broken chain) fails the
    /// open with a typed xr::CorruptionError.  The default: never build
    /// a state the operator did not ask for.
    kStrict,
    /// Best-effort repair: skip corrupt snapshot sections and WAL
    /// records, quarantine every document whose invariants broke, purge
    /// its rows, and checkpoint the repaired state so the damaged files
    /// leave the recovery chain.  Everything dropped is accounted in
    /// RecoveryReport::salvage — lossy, never silent.
    kSalvage,
};

/// Knobs for open().
struct DurabilityOptions {
    /// Log mutations to a WAL.  Without it the database only persists at
    /// explicit checkpoint() calls — everything since the last snapshot
    /// is lost on a crash.
    bool use_wal = true;
    /// fsync the WAL on each outermost commit (the crash-safe default);
    /// off, commits write() without syncing — faster, but a power loss
    /// may drop recently committed units.
    bool sync_on_commit = true;
    /// Strict (fail on damage) or salvage (repair, quarantine, report).
    RecoveryMode recovery = RecoveryMode::kStrict;
    /// checkpoint() re-reads the snapshot it just wrote before rotating
    /// the WAL: a checkpoint that cannot be read back must not become
    /// the recovery chain's new base.  Costs one extra read of the
    /// image; disable only in benchmarks.
    bool verify_checkpoints = true;
};

/// What the salvage path dropped and repaired; embedded in
/// RecoveryReport when open() ran with RecoveryMode::kSalvage.
struct SalvageReport {
    bool attempted = false;  ///< open() ran in salvage mode
    std::size_t snapshot_sections_dropped = 0;
    std::uint64_t snapshot_bytes_dropped = 0;
    std::size_t wal_records_skipped = 0;   ///< valid frames that failed to apply
    std::uint64_t wal_bytes_dropped = 0;   ///< unreadable WAL bytes resynced past
    std::size_t wal_segments_missing = 0;  ///< holes in the segment chain
    std::size_t docs_quarantined = 0;      ///< documents purged by the repair pass
    std::size_t rows_purged = 0;           ///< rows removed with them
    std::vector<std::string> notes;        ///< human-readable drop log

    /// True when salvage dropped or repaired anything — i.e. the
    /// recovered state differs from what a strict open would need.
    [[nodiscard]] bool any() const;
    [[nodiscard]] std::string to_string() const;
};

/// What analyze() measured; see Database::analyze().
struct AnalyzeReport {
    std::size_t tables = 0;        ///< tables analyzed
    std::size_t columns = 0;       ///< column statistics rebuilt
    std::uint64_t rows = 0;        ///< rows scanned
    std::uint64_t epoch = 0;       ///< statistics epoch after the rebuild
    bool persisted = false;        ///< written to the xrel_stats catalog
    [[nodiscard]] std::string to_string() const;
};

/// What recovery found and did; returned by open().
struct RecoveryReport {
    std::string dir;
    std::string snapshot_path;           ///< empty when starting from scratch
    std::uint64_t snapshot_seq = 0;
    std::size_t snapshots_skipped = 0;   ///< newer snapshots rejected as corrupt
    std::size_t tables_restored = 0;
    std::size_t rows_restored = 0;       ///< rows after snapshot + replay
    std::size_t wal_segments = 0;        ///< segments replayed
    std::size_t records_replayed = 0;
    std::size_t torn_bytes_dropped = 0;  ///< truncated off the newest segment
    std::size_t units_rolled_back = 0;   ///< uncommitted units discarded
    SalvageReport salvage;               ///< drops/repairs (salvage mode only)
    [[nodiscard]] std::string to_string() const;
};

/// A consistent read view of the database (DESIGN.md §9).
///
/// Holds the database latch in shared mode for its lifetime, so row
/// storage and indexes cannot change underneath the reader: the outermost
/// load unit, checkpoint() and depth-0 DDL all take the latch exclusively.
/// `watermark` is the commit watermark observed at acquisition — the
/// epoch caches key their entries by.  Snapshots are cheap (no copying)
/// and many may be open at once; writers wait for all of them to close.
class ReadSnapshot {
public:
    ReadSnapshot(std::shared_lock<std::shared_mutex>&& lock,
                 std::uint64_t watermark)
        : lock_(std::move(lock)), watermark_(watermark) {}

    [[nodiscard]] std::uint64_t watermark() const { return watermark_; }

private:
    std::shared_lock<std::shared_mutex> lock_;
    std::uint64_t watermark_ = 0;
};

class Database {
public:
    Database();
    ~Database();
    Database(const Database&) = delete;
    Database& operator=(const Database&) = delete;
    /// Moving requires no open load unit and no concurrent readers (the
    /// latch itself stays with each object; only data moves).
    Database(Database&&) noexcept;
    Database& operator=(Database&&) noexcept;

    /// Attach this (still empty) database to `dir`, creating it if needed,
    /// and recover: load the newest snapshot whose checksums verify
    /// (falling back to older ones when a newer image is corrupt), replay
    /// every WAL segment from that snapshot forward, truncate the torn
    /// tail of the newest segment, and roll back units left uncommitted.
    /// In strict mode (the default), throws xr::CorruptionError when the
    /// surviving files cannot produce a consistent state (mid-segment
    /// WAL damage, a torn record in a non-newest segment, every snapshot
    /// corrupt).  With RecoveryMode::kSalvage, damage is skipped and
    /// repaired instead: broken documents are quarantined and purged,
    /// the result is checkpointed, and RecoveryReport::salvage accounts
    /// every drop.
    RecoveryReport open(const std::string& dir,
                        const DurabilityOptions& opts = {});

    /// Write a fresh snapshot and start a new WAL segment.  Requires an
    /// open() data directory and no open load unit.  Unless
    /// DurabilityOptions::verify_checkpoints is off, the snapshot is
    /// re-read and cross-checked (table/row/pk-counter agreement)
    /// *before* the WAL rotates — a checkpoint that cannot be read back
    /// is deleted and the previous snapshot + WAL remain authoritative.
    /// Fault point: `snapshot.verify` before the verification read.
    SnapshotStats checkpoint();

    /// Online integrity check (DESIGN.md §14): takes a read snapshot and
    /// validates every per-table and cross-table invariant — see
    /// rdb/integrity.hpp for the catalogue.  Safe to run concurrently
    /// with readers and between writer units; must not be called from a
    /// thread holding a load unit open (the latch is not recursive).
    [[nodiscard]] IntegrityReport verify() const;

    /// Flush (and fsync) buffered WAL records outside a commit — callers
    /// use it after depth-0 DDL like schema materialization.  No-op when
    /// the WAL is off.
    void flush_wal();

    [[nodiscard]] bool durable() const { return !dir_.empty(); }
    [[nodiscard]] const std::string& data_dir() const { return dir_; }
    /// Sequence of the active snapshot/WAL generation.
    [[nodiscard]] std::uint64_t storage_seq() const { return wal_seq_; }
    /// Record bytes appended to the active WAL segment (bench metric).
    [[nodiscard]] std::uint64_t wal_bytes_appended() const;

    Table& create_table(TableDef def);
    void drop_table(std::string_view name);

    [[nodiscard]] Table* table(std::string_view name);
    [[nodiscard]] const Table* table(std::string_view name) const;
    /// Throwing accessors for code paths where absence is a logic error.
    [[nodiscard]] Table& require(std::string_view name);
    [[nodiscard]] const Table& require(std::string_view name) const;

    [[nodiscard]] std::vector<std::string> table_names() const;
    [[nodiscard]] std::size_t table_count() const { return tables_.size(); }

    void add_foreign_key(ForeignKeyDef fk);
    [[nodiscard]] const std::vector<ForeignKeyDef>& foreign_keys() const {
        return fks_;
    }

    /// Verify every non-NULL FK value resolves; returns violation messages.
    [[nodiscard]] std::vector<std::string> check_foreign_keys() const;

    // -- statistics (DESIGN.md §13) -------------------------------------------
    /// Rebuild every table's statistics from scratch (fresh sketches, so
    /// NDV estimates reflect current contents, not incremental history),
    /// bump the statistics epoch, and persist the results to the
    /// `xrel_stats` catalog table — dropped and re-created under its own
    /// committed unit, so the snapshot/WAL machinery carries statistics
    /// across restarts like any other rows.  Requires no open load unit.
    AnalyzeReport analyze();

    /// Monotonic epoch for plan invalidation: bumped by analyze() and by
    /// commits that grow a table materially (~2x) past its last bump.
    /// Plan caches fold it into their keys, so a stale cached plan ages
    /// out instead of serving forever (DESIGN.md §13).
    [[nodiscard]] std::uint64_t stats_epoch() const {
        return stats_epoch_.load(std::memory_order_acquire);
    }

    /// Name of the statistics catalog table analyze() maintains.
    static constexpr std::string_view kStatsTable = "xrel_stats";

    /// Bulk-load bracketing: begin_bulk() switches every table to deferred
    /// secondary-index maintenance, end_bulk() rebuilds all indexes in one
    /// pass.  Tables created while the bracket is open join it.
    void begin_bulk();
    void end_bulk();
    [[nodiscard]] bool in_bulk() const { return bulk_; }

    /// Atomic load units across every table (see Table::begin_unit).
    /// Units nest; rollback_unit() restores row storage, indexes and pk
    /// counters to the matching begin_unit() and closes any bulk bracket
    /// left open by an interrupted merge.  Tables created while a unit is
    /// open join it (they are emptied again on rollback).
    ///
    /// With a WAL attached, the outermost commit_unit() makes the unit
    /// durable *before* committing in memory: if flushing the commit
    /// frame fails, the exception propagates with the unit still open,
    /// and the caller's rollback restores the pre-unit state on both
    /// sides.
    void begin_unit();
    void commit_unit();
    void rollback_unit();
    [[nodiscard]] bool in_unit() const { return unit_depth_ > 0; }

    // -- concurrent reads (DESIGN.md §9) -------------------------------------
    /// Open a consistent read view.  Blocks while a load unit, checkpoint
    /// or depth-0 DDL holds the latch exclusively; once acquired, every
    /// table read is stable until the snapshot is destroyed.  Must not be
    /// called from the thread that currently holds a load unit open (the
    /// latch is not recursive).
    [[nodiscard]] ReadSnapshot read_snapshot() const {
        // Acquire the latch first: the watermark read then happens with
        // no writer active, so it matches the state the snapshot sees.
        std::shared_lock<std::shared_mutex> lock(latch_);
        std::uint64_t mark = commit_watermark_.load(std::memory_order_acquire);
        return ReadSnapshot{std::move(lock), mark};
    }

    /// Monotonic count of committed outermost load units and depth-0 DDL
    /// statements — the cache-invalidation epoch: a cached result tagged
    /// with an older watermark may no longer reflect table contents.
    /// Rolled-back units do not advance it (readers never saw their rows).
    [[nodiscard]] std::uint64_t commit_watermark() const {
        return commit_watermark_.load(std::memory_order_acquire);
    }

    /// Records appended to the active WAL segment (the durable LSN); 0
    /// while in-memory.  Advances with each logged mutation, so it also
    /// serves as a fine-grained change tick for durable databases.
    [[nodiscard]] std::uint64_t wal_lsn() const;

    [[nodiscard]] std::size_t total_rows() const;
    [[nodiscard]] std::size_t memory_bytes() const;

private:
    std::vector<std::unique_ptr<Table>> tables_;
    std::vector<ForeignKeyDef> fks_;
    bool bulk_ = false;
    std::size_t unit_depth_ = 0;

    // -- concurrency state (DESIGN.md §9) ------------------------------------
    // Reader-writer latch: queries hold it shared via ReadSnapshot; the
    // outermost load unit, checkpoint() and depth-0 DDL hold it exclusive.
    // Writers remain single-threaded among themselves (the unit contract);
    // the latch only fences them against concurrent readers, which is why
    // the depth test before acquiring is safe.
    mutable std::shared_mutex latch_;
    std::atomic<std::uint64_t> commit_watermark_{0};
    std::atomic<std::uint64_t> stats_epoch_{0};

    /// Recovery tail: install persisted statistics from xrel_stats where
    /// they cover more rows than WAL replay already re-folded, then fold
    /// any uncovered remainder so the planner has numbers immediately.
    void load_stats_catalog();

    // -- durability state (empty / null while in-memory only) ----------------
    std::string dir_;
    DurabilityOptions dopts_;
    std::uint64_t wal_seq_ = 0;
    std::unique_ptr<Wal> wal_;
};

}  // namespace xr::rdb
