#include "rdb/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/checksum.hpp"
#include "common/fault.hpp"
#include "rdb/database.hpp"
#include "rdb/serial.hpp"

namespace xr::rdb {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'X', 'R', 'S', 'N', 'A', 'P', '1', '\n'};
constexpr std::uint32_t kVersion = 1;

enum SectionType : std::uint8_t {
    kTableSection = 1,
    kForeignKeySection = 2,
    kEndSection = 3,
};

void put_section(std::string& out, std::uint8_t type,
                 const std::string& payload) {
    std::size_t start = out.size();
    serial::put_u8(out, type);
    serial::put_u32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
    serial::put_u32(out, checksum::crc32(std::string_view(out).substr(
                             start, 5 + payload.size())));
}

/// fsync the directory containing `path` so the rename itself is durable.
void sync_parent_dir(const std::string& path) {
    std::string dir = fs::path(path).parent_path().string();
    if (dir.empty()) dir = ".";
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;  // best effort — not all filesystems allow it
    ::fsync(fd);
    ::close(fd);
}

std::uint32_t le32_at(std::string_view data, std::size_t pos) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data[pos + i]))
             << (8 * i);
    return v;
}

/// True when a structurally valid, CRC-checked section frame with a
/// known type starts at `pos`.
bool section_frame_at(std::string_view data, std::size_t pos,
                      std::uint8_t& type, std::uint32_t& len) {
    if (data.size() - pos < 9) return false;
    type = static_cast<std::uint8_t>(data[pos]);
    if (type < kTableSection || type > kEndSection) return false;
    len = le32_at(data, pos + 1);
    if (data.size() - pos < 9 + static_cast<std::size_t>(len)) return false;
    return checksum::crc32(data.substr(pos, 5 + len)) ==
           le32_at(data, pos + 5 + len);
}

/// Salvage resynchronization: the offset of the next valid section
/// frame at or after `from`, or npos.  The scan is capped so a huge
/// file of garbage cannot turn salvage into an O(n²) CRC sweep.
constexpr std::size_t kResyncWindow = std::size_t{4} << 20;

std::size_t find_next_valid_section(std::string_view data, std::size_t from) {
    std::size_t limit = std::min(data.size(), from + kResyncWindow);
    for (std::size_t off = from; off < limit && data.size() - off >= 9; ++off) {
        std::uint8_t type;
        std::uint32_t len;
        if (section_frame_at(data, off, type, len)) return off;
    }
    return std::string::npos;
}

}  // namespace

std::string snapshot_file(const std::string& dir, std::uint64_t seq) {
    char name[40];
    std::snprintf(name, sizeof(name), "snapshot-%06llu.xrs",
                  static_cast<unsigned long long>(seq));
    return (fs::path(dir) / name).string();
}

bool parse_seq(const std::string& name, const std::string& prefix,
               const std::string& suffix, std::uint64_t& seq) {
    if (name.size() <= prefix.size() + suffix.size()) return false;
    if (name.compare(0, prefix.size(), prefix) != 0) return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
        return false;
    std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty()) return false;
    seq = 0;
    for (char c : digits) {
        if (c < '0' || c > '9') return false;
        seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
}

SnapshotStats write_snapshot(const Database& db, const std::string& path) {
    if (db.in_unit())
        throw SchemaError(
            "cannot write a snapshot while a load unit is open: '" + path +
            "'");
    fault::maybe_fail("snapshot.write");

    SnapshotStats stats;
    std::string image(kMagic, sizeof(kMagic));
    serial::put_u32(image, kVersion);

    for (const std::string& name : db.table_names()) {
        const Table& t = db.require(name);
        std::string payload;
        serial::put_table_def(payload, t.def());
        serial::put_i64(payload, t.peek_next_pk());
        auto indexes = t.index_defs();
        serial::put_u32(payload, static_cast<std::uint32_t>(indexes.size()));
        for (const Table::IndexDef& idx : indexes) {
            serial::put_string(payload, idx.column);
            serial::put_u8(payload, static_cast<std::uint8_t>(idx.kind));
        }
        serial::put_u64(payload, t.row_count());
        for (RowId id = 0; id < t.row_count(); ++id)
            serial::put_row(payload, t.row(id));
        put_section(image, kTableSection, payload);
        ++stats.tables;
        stats.rows += t.row_count();
    }

    {
        std::string payload;
        serial::put_u32(
            payload, static_cast<std::uint32_t>(db.foreign_keys().size()));
        for (const ForeignKeyDef& fk : db.foreign_keys()) {
            serial::put_string(payload, fk.table);
            serial::put_string(payload, fk.column);
            serial::put_string(payload, fk.ref_table);
            serial::put_string(payload, fk.ref_column);
        }
        put_section(image, kForeignKeySection, payload);
    }
    put_section(image, kEndSection, {});
    stats.bytes = image.size();

    std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw Error("cannot create snapshot temp file '" + tmp +
                    "': " + std::strerror(errno));
    const char* data = image.data();
    std::size_t left = image.size();
    while (left > 0) {
        ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR) continue;
            int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            throw Error("snapshot write to '" + tmp +
                        "' failed: " + std::strerror(err));
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        throw Error("snapshot fsync of '" + tmp +
                    "' failed: " + std::strerror(err));
    }
    ::close(fd);

    try {
        fault::maybe_fail("snapshot.rename");
    } catch (...) {
        ::unlink(tmp.c_str());
        throw;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        ::unlink(tmp.c_str());
        throw Error("cannot rename snapshot '" + tmp + "' -> '" + path +
                    "': " + ec.message());
    }
    sync_parent_dir(path);
    return stats;
}

namespace {

/// Shared strict/salvage reader.  `report == nullptr` is strict: the
/// first damaged byte throws CorruptionError.  With a report, damaged
/// or unappliable sections are dropped (resyncing on the next valid
/// frame) and accounted.
SnapshotStats read_snapshot_impl(const std::string& path, Database& db,
                                 SalvageReport* report) {
    const bool salvage = report != nullptr;
    if (db.table_count() != 0)
        throw SchemaError("read_snapshot requires an empty database");

    std::string data;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            throw Error("cannot open snapshot '" + path + "'");
        std::ostringstream tmp;
        tmp << in.rdbuf();
        data = std::move(tmp).str();
    }
    const std::string context = "snapshot '" + path + "'";
    // The header is non-negotiable even under salvage: without magic and
    // version this is not a snapshot, and "salvaging" an arbitrary file
    // would invent data.
    if (data.size() < sizeof(kMagic) + 4 ||
        std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0)
        throw CorruptionError("bad magic (not a snapshot file)", path, 0,
                              "header");
    if (std::uint32_t v = le32_at(data, sizeof(kMagic)); v != kVersion)
        throw CorruptionError("unsupported version " + std::to_string(v), path,
                              sizeof(kMagic), "header");

    SnapshotStats stats;
    stats.bytes = data.size();
    std::size_t pos = sizeof(kMagic) + 4;
    bool saw_end = false;
    std::size_t section_no = 0;

    auto drop_region = [&](std::size_t upto, const std::string& why) {
        ++report->snapshot_sections_dropped;
        report->snapshot_bytes_dropped += upto - pos;
        report->notes.push_back(context + " section " +
                                std::to_string(section_no) + ": dropped " +
                                std::to_string(upto - pos) + " bytes (" + why +
                                ")");
        pos = upto;
        ++section_no;
    };

    while (!saw_end && pos < data.size()) {
        const std::string section_name = "section " + std::to_string(section_no);
        const std::string section_ctx = context + " " + section_name;
        std::size_t left = data.size() - pos;

        // Frame checks, reported individually so the error says *how* the
        // frame is broken, not just that it is.
        std::string damage;
        auto type = static_cast<std::uint8_t>(left >= 1 ? data[pos] : 0);
        std::uint32_t len = 0;
        if (left < 9) {
            damage = "truncated before the end marker";
        } else {
            len = le32_at(data, pos + 1);
            if (left < 9 + static_cast<std::size_t>(len))
                damage = "truncated payload (header claims " +
                         std::to_string(len) + " bytes, " +
                         std::to_string(left - 9) + " present)";
            else if (checksum::crc32(std::string_view(data).substr(
                         pos, 5 + len)) != le32_at(data, pos + 5 + len))
                damage = "CRC mismatch — snapshot is corrupt";
            else if (type < kTableSection || type > kEndSection)
                damage = "unknown section type " + std::to_string(type);
        }
        if (!damage.empty()) {
            if (!salvage)
                throw CorruptionError(damage, path, pos, section_name);
            std::size_t next = find_next_valid_section(data, pos + 1);
            if (next == std::string::npos) {
                drop_region(data.size(), damage + "; no later valid section");
                break;
            }
            drop_region(next, damage);
            continue;
        }

        serial::Reader in(std::string_view(data).substr(pos + 5, len),
                          section_ctx, path, pos + 5);
        try {
            switch (type) {
                case kTableSection: {
                    TableDef def = serial::read_table_def(in);
                    const std::string tname = def.name;
                    Table& t = db.create_table(std::move(def));
                    try {
                        std::int64_t next_pk = in.i64();
                        std::uint32_t nindexes = in.u32();
                        // name-len(4) + kind byte per index definition
                        in.need_items(nindexes, 5, "index");
                        std::vector<Table::IndexDef> indexes;
                        indexes.reserve(nindexes);
                        for (std::uint32_t i = 0; i < nindexes; ++i) {
                            Table::IndexDef idx;
                            idx.column = in.string();
                            std::uint8_t kind = in.u8();
                            if (kind >
                                static_cast<std::uint8_t>(IndexKind::kOrdered))
                                in.fail("unknown index kind tag " +
                                        std::to_string(kind));
                            idx.kind = static_cast<IndexKind>(kind);
                            indexes.push_back(std::move(idx));
                        }
                        std::uint64_t nrows = in.u64();
                        in.need_items(nrows, 4, "row");
                        std::vector<Row> rows;
                        rows.reserve(nrows);
                        for (std::uint64_t i = 0; i < nrows; ++i)
                            rows.push_back(serial::read_row(in));
                        // Full per-row validation: a snapshot is not a
                        // trusted pipeline, it is bytes from a disk.
                        t.insert_batch(std::move(rows),
                                       /*validate_rows=*/true);
                        t.restore_next_pk(next_pk);
                        for (const Table::IndexDef& idx : indexes)
                            t.create_index(idx.column, idx.kind);
                        if (!in.at_end())
                            in.fail("trailing bytes after rows");
                        ++stats.tables;
                        stats.rows += nrows;
                    } catch (...) {
                        // Never leave a half-restored table behind.
                        db.drop_table(tname);
                        throw;
                    }
                    break;
                }
                case kForeignKeySection: {
                    std::uint32_t count = in.u32();
                    // four length-prefixed names per constraint
                    in.need_items(count, 16, "foreign key");
                    for (std::uint32_t i = 0; i < count; ++i) {
                        ForeignKeyDef fk;
                        fk.table = in.string();
                        fk.column = in.string();
                        fk.ref_table = in.string();
                        fk.ref_column = in.string();
                        if (salvage) {
                            // A constraint on a dropped table is expected;
                            // keep the rest.
                            try {
                                db.add_foreign_key(std::move(fk));
                            } catch (const Error& e) {
                                report->notes.push_back(
                                    section_ctx + ": skipped foreign key: " +
                                    e.bare_message());
                            }
                        } else {
                            db.add_foreign_key(std::move(fk));
                        }
                    }
                    break;
                }
                case kEndSection:
                    saw_end = true;
                    break;
            }
        } catch (const CorruptionError&) {
            if (!salvage) throw;
            std::size_t next = find_next_valid_section(data, pos + 9 + len);
            drop_region(next == std::string::npos ? data.size()
                                                  : std::min(next, data.size()),
                        "unreadable payload");
            continue;
        } catch (const Error& e) {
            // A CRC-valid section the database refuses (duplicate table,
            // duplicate pk, type mismatch): semantic corruption.
            if (!salvage)
                throw CorruptionError("cannot apply section: " +
                                          std::string(e.what()),
                                      path, pos, section_name);
            drop_region(pos + 9 + len, std::string("unappliable section: ") +
                                           e.bare_message());
            continue;
        }
        pos += 9 + static_cast<std::size_t>(len);
        ++section_no;
    }

    if (!saw_end) {
        if (!salvage)
            throw CorruptionError("truncated before the end marker", path, pos,
                                  "section " + std::to_string(section_no));
        report->notes.push_back(context + ": end marker missing");
    } else if (pos != data.size()) {
        // A well-formed snapshot ends exactly at the end marker; trailing
        // bytes mean the file grew after it was sealed.
        if (!salvage)
            throw CorruptionError("trailing bytes after the end marker (" +
                                      std::to_string(data.size() - pos) +
                                      " bytes)",
                                  path, pos, "trailer");
        report->notes.push_back(
            context + ": ignored " + std::to_string(data.size() - pos) +
            " trailing bytes after the end marker");
    }
    return stats;
}

}  // namespace

SnapshotStats read_snapshot(const std::string& path, Database& db) {
    return read_snapshot_impl(path, db, nullptr);
}

SnapshotStats read_snapshot_salvage(const std::string& path, Database& db,
                                    SalvageReport& report) {
    return read_snapshot_impl(path, db, &report);
}

}  // namespace xr::rdb
