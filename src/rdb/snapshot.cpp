#include "rdb/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/checksum.hpp"
#include "common/fault.hpp"
#include "rdb/database.hpp"
#include "rdb/serial.hpp"

namespace xr::rdb {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'X', 'R', 'S', 'N', 'A', 'P', '1', '\n'};
constexpr std::uint32_t kVersion = 1;

enum SectionType : std::uint8_t {
    kTableSection = 1,
    kForeignKeySection = 2,
    kEndSection = 3,
};

void put_section(std::string& out, std::uint8_t type,
                 const std::string& payload) {
    std::size_t start = out.size();
    serial::put_u8(out, type);
    serial::put_u32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
    serial::put_u32(out, checksum::crc32(std::string_view(out).substr(
                             start, 5 + payload.size())));
}

/// fsync the directory containing `path` so the rename itself is durable.
void sync_parent_dir(const std::string& path) {
    std::string dir = fs::path(path).parent_path().string();
    if (dir.empty()) dir = ".";
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;  // best effort — not all filesystems allow it
    ::fsync(fd);
    ::close(fd);
}

}  // namespace

std::string snapshot_file(const std::string& dir, std::uint64_t seq) {
    char name[40];
    std::snprintf(name, sizeof(name), "snapshot-%06llu.xrs",
                  static_cast<unsigned long long>(seq));
    return (fs::path(dir) / name).string();
}

bool parse_seq(const std::string& name, const std::string& prefix,
               const std::string& suffix, std::uint64_t& seq) {
    if (name.size() <= prefix.size() + suffix.size()) return false;
    if (name.compare(0, prefix.size(), prefix) != 0) return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
        return false;
    std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty()) return false;
    seq = 0;
    for (char c : digits) {
        if (c < '0' || c > '9') return false;
        seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
}

SnapshotStats write_snapshot(const Database& db, const std::string& path) {
    if (db.in_unit())
        throw SchemaError(
            "cannot write a snapshot while a load unit is open: '" + path +
            "'");
    fault::maybe_fail("snapshot.write");

    SnapshotStats stats;
    std::string image(kMagic, sizeof(kMagic));
    serial::put_u32(image, kVersion);

    for (const std::string& name : db.table_names()) {
        const Table& t = db.require(name);
        std::string payload;
        serial::put_table_def(payload, t.def());
        serial::put_i64(payload, t.peek_next_pk());
        auto indexes = t.index_defs();
        serial::put_u32(payload, static_cast<std::uint32_t>(indexes.size()));
        for (const Table::IndexDef& idx : indexes) {
            serial::put_string(payload, idx.column);
            serial::put_u8(payload, static_cast<std::uint8_t>(idx.kind));
        }
        serial::put_u64(payload, t.row_count());
        for (const Row& row : t.rows()) serial::put_row(payload, row);
        put_section(image, kTableSection, payload);
        ++stats.tables;
        stats.rows += t.row_count();
    }

    {
        std::string payload;
        serial::put_u32(
            payload, static_cast<std::uint32_t>(db.foreign_keys().size()));
        for (const ForeignKeyDef& fk : db.foreign_keys()) {
            serial::put_string(payload, fk.table);
            serial::put_string(payload, fk.column);
            serial::put_string(payload, fk.ref_table);
            serial::put_string(payload, fk.ref_column);
        }
        put_section(image, kForeignKeySection, payload);
    }
    put_section(image, kEndSection, {});
    stats.bytes = image.size();

    std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw Error("cannot create snapshot temp file '" + tmp +
                    "': " + std::strerror(errno));
    const char* data = image.data();
    std::size_t left = image.size();
    while (left > 0) {
        ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR) continue;
            int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            throw Error("snapshot write to '" + tmp +
                        "' failed: " + std::strerror(err));
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        throw Error("snapshot fsync of '" + tmp +
                    "' failed: " + std::strerror(err));
    }
    ::close(fd);

    try {
        fault::maybe_fail("snapshot.rename");
    } catch (...) {
        ::unlink(tmp.c_str());
        throw;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        ::unlink(tmp.c_str());
        throw Error("cannot rename snapshot '" + tmp + "' -> '" + path +
                    "': " + ec.message());
    }
    sync_parent_dir(path);
    return stats;
}

SnapshotStats read_snapshot(const std::string& path, Database& db) {
    if (db.table_count() != 0)
        throw SchemaError("read_snapshot requires an empty database");

    std::string data;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            throw Error("cannot open snapshot '" + path + "'");
        std::ostringstream tmp;
        tmp << in.rdbuf();
        data = std::move(tmp).str();
    }
    const std::string context = "snapshot '" + path + "'";
    if (data.size() < sizeof(kMagic) + 4 ||
        std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0)
        throw Error(context + ": bad magic (not a snapshot file)");
    serial::Reader header(
        std::string_view(data).substr(sizeof(kMagic), 4), context);
    if (std::uint32_t v = header.u32(); v != kVersion)
        throw Error(context + ": unsupported version " + std::to_string(v));

    SnapshotStats stats;
    stats.bytes = data.size();
    std::size_t pos = sizeof(kMagic) + 4;
    bool saw_end = false;
    std::size_t section_no = 0;
    while (!saw_end) {
        std::string section_ctx =
            context + " section " + std::to_string(section_no);
        std::size_t left = data.size() - pos;
        if (left < 9)
            throw Error(section_ctx + ": truncated before the end marker");
        auto type = static_cast<std::uint8_t>(data[pos]);
        serial::Reader head(std::string_view(data).substr(pos + 1, 4),
                            section_ctx);
        std::uint32_t len = head.u32();
        if (left < 9 + static_cast<std::size_t>(len))
            throw Error(section_ctx + ": truncated payload (header claims " +
                        std::to_string(len) + " bytes, " +
                        std::to_string(left - 9) + " present)");
        serial::Reader tail(
            std::string_view(data).substr(pos + 5 + len, 4), section_ctx);
        if (checksum::crc32(std::string_view(data).substr(pos, 5 + len)) !=
            tail.u32())
            throw Error(section_ctx + ": CRC mismatch — snapshot is corrupt");

        serial::Reader in(std::string_view(data).substr(pos + 5, len),
                          section_ctx);
        switch (type) {
            case kTableSection: {
                Table& t = db.create_table(serial::read_table_def(in));
                std::int64_t next_pk = in.i64();
                std::uint32_t nindexes = in.u32();
                std::vector<Table::IndexDef> indexes;
                indexes.reserve(nindexes);
                for (std::uint32_t i = 0; i < nindexes; ++i) {
                    Table::IndexDef idx;
                    idx.column = in.string();
                    idx.kind = static_cast<IndexKind>(in.u8());
                    indexes.push_back(std::move(idx));
                }
                std::uint64_t nrows = in.u64();
                std::vector<Row> rows;
                rows.reserve(nrows);
                for (std::uint64_t i = 0; i < nrows; ++i)
                    rows.push_back(serial::read_row(in));
                t.insert_batch(std::move(rows), /*validate_rows=*/false);
                t.restore_next_pk(next_pk);
                for (const Table::IndexDef& idx : indexes)
                    t.create_index(idx.column, idx.kind);
                if (!in.at_end())
                    throw Error(section_ctx + ": trailing bytes after rows");
                ++stats.tables;
                stats.rows += nrows;
                break;
            }
            case kForeignKeySection: {
                std::uint32_t count = in.u32();
                for (std::uint32_t i = 0; i < count; ++i) {
                    ForeignKeyDef fk;
                    fk.table = in.string();
                    fk.column = in.string();
                    fk.ref_table = in.string();
                    fk.ref_column = in.string();
                    db.add_foreign_key(std::move(fk));
                }
                break;
            }
            case kEndSection:
                saw_end = true;
                break;
            default:
                throw Error(section_ctx + ": unknown section type " +
                            std::to_string(type));
        }
        pos += 9 + len;
        ++section_no;
    }
    return stats;
}

}  // namespace xr::rdb
