// Table and column statistics for the cost-based planner (DESIGN.md §13).
//
// Each Table carries a TableStats: the number of rows the statistics
// cover, and per column the min/max value, NULL count and a distinct-
// value estimate from a KMV (k-minimum-values) sketch.  Statistics are
// folded incrementally — Database::commit_unit() scans only the rows
// appended since the last fold — and rebuilt from scratch by
// Database::analyze(), which also persists them to the `xrel_stats`
// catalog table so they survive snapshot + WAL recovery.
//
// Statistics are estimates by design: in-place cell updates do not
// re-derive min/max or NDV (the loader's IDREF patching would make that
// a per-update scan), and compaction (delete_where, rollback below the
// fold watermark) marks the table stale for a full rebuild at the next
// fold.  The planner treats absent or stale numbers as unknowns with
// default selectivities, never as errors.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "rdb/value.hpp"

namespace xr::rdb {

/// KMV distinct-count sketch: keep the k smallest of the 64-bit hashes
/// seen; with fewer than k entries the count is exact, beyond that the
/// k-th minimum estimates the hash-space density (ndv ≈ (k-1)/kth_min).
/// O(log k) per add, O(k) memory, mergeable by re-adding — small enough
/// to fold on every commit.
class NdvSketch {
public:
    static constexpr std::size_t kDefaultK = 256;

    explicit NdvSketch(std::size_t k = kDefaultK) : k_(k) {}

    void add(const Value& v);
    void clear() { mins_.clear(); }
    [[nodiscard]] bool empty() const { return mins_.empty(); }
    [[nodiscard]] std::uint64_t estimate() const;

private:
    std::size_t k_;
    std::set<std::uint64_t> mins_;  ///< the k smallest hashes, distinct
};

struct ColumnStats {
    Value min;  ///< over non-NULL values; NULL while none seen
    Value max;
    std::uint64_t nulls = 0;
    /// Persisted NDV estimate restored by recovery — the sketch itself is
    /// not serialized, so after a restart the hint carries the analyzed
    /// estimate until the next full rebuild repopulates the sketch.
    std::uint64_t ndv_hint = 0;
    NdvSketch sketch;

    [[nodiscard]] std::uint64_t ndv() const {
        std::uint64_t est = sketch.estimate();
        return est > ndv_hint ? est : ndv_hint;
    }

    void fold(const Value& v);
};

struct TableStats {
    /// Rows covered by these statistics — also the storage index the next
    /// incremental fold resumes from (appends-only between folds).
    std::uint64_t rows = 0;
    /// Row count at the last statistics-epoch bump; material growth past
    /// it advances Database::stats_epoch() so cached plans re-cost.
    std::uint64_t epoch_rows = 0;
    /// Compaction invalidated the incremental state; the next fold
    /// rebuilds from row zero.
    bool stale = false;
    std::vector<ColumnStats> columns;  ///< parallel to TableDef::columns
};

}  // namespace xr::rdb
