// Typed values for MiniRDB.
//
// SQL's three-valued logic is modelled explicitly: a Value is NULL, an
// INTEGER (int64), a REAL (double) or TEXT.  Comparisons involving NULL
// yield "unknown", which callers treat as false in WHERE contexts — the
// same convention real engines use.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace xr::rdb {

enum class ValueType { kNull, kInteger, kReal, kText };

[[nodiscard]] std::string_view to_string(ValueType t);

class Value {
public:
    Value() : data_(std::monostate{}) {}
    Value(std::int64_t v) : data_(v) {}                 // NOLINT(google-explicit-constructor)
    Value(int v) : data_(static_cast<std::int64_t>(v)) {}  // NOLINT
    Value(double v) : data_(v) {}                       // NOLINT
    Value(std::string v) : data_(std::move(v)) {}       // NOLINT
    Value(std::string_view v) : data_(std::string(v)) {}  // NOLINT
    Value(const char* v) : data_(std::string(v)) {}     // NOLINT

    static Value null() { return Value(); }

    [[nodiscard]] ValueType type() const {
        switch (data_.index()) {
            case 0: return ValueType::kNull;
            case 1: return ValueType::kInteger;
            case 2: return ValueType::kReal;
            default: return ValueType::kText;
        }
    }
    [[nodiscard]] bool is_null() const { return type() == ValueType::kNull; }

    [[nodiscard]] std::int64_t as_integer() const;
    [[nodiscard]] double as_real() const;   ///< integers widen
    [[nodiscard]] const std::string& as_text() const;

    /// Render for result sets ('NULL', bare number, or the text).
    [[nodiscard]] std::string to_string() const;

    /// SQL comparison: nullopt when either side is NULL (unknown).
    [[nodiscard]] std::optional<std::strong_ordering> compare(
        const Value& other) const;

    /// Total order for indexes and ORDER BY: NULL sorts first, then by
    /// type, then by value (numeric types compare numerically).
    [[nodiscard]] std::strong_ordering index_order(const Value& other) const;

    friend bool operator==(const Value& a, const Value& b) {
        return a.index_order(b) == std::strong_ordering::equal;
    }
    friend bool operator<(const Value& a, const Value& b) {
        return a.index_order(b) == std::strong_ordering::less;
    }

    [[nodiscard]] std::size_t hash() const;

private:
    std::variant<std::monostate, std::int64_t, double, std::string> data_;
};

struct ValueHash {
    std::size_t operator()(const Value& v) const { return v.hash(); }
};

}  // namespace xr::rdb
