#include "rdb/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/checksum.hpp"
#include "common/fault.hpp"
#include "rdb/database.hpp"
#include "rdb/serial.hpp"

namespace xr::rdb {

namespace {

namespace fs = std::filesystem;

/// Record types; values are on-disk format, append-only — never renumber.
enum RecordType : std::uint8_t {
    kBeginUnit = 1,
    kCommitUnit = 2,
    kRollbackUnit = 3,
    kCreateTable = 4,
    kCreateIndex = 5,
    kDropTable = 6,
    kAddForeignKey = 7,
    kInsert = 8,
    kUpdate = 9,
    kDeleteWhere = 10,
};

/// type + u32 length before the payload, u32 CRC after it.
constexpr std::size_t kFrameOverhead = 1 + 4 + 4;

/// Buffered bytes that trigger an early (non-fsync) spill to disk.
constexpr std::size_t kSpillBytes = 1u << 20;

std::uint32_t le32_at(std::string_view data, std::size_t pos) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data[pos + i]))
             << (8 * i);
    return v;
}

/// True when a structurally valid, CRC-checked record frame with a
/// known type starts at `pos`.
bool record_frame_at(std::string_view data, std::size_t pos,
                     std::uint8_t& type, std::uint32_t& len) {
    if (data.size() - pos < kFrameOverhead) return false;
    type = static_cast<std::uint8_t>(data[pos]);
    if (type < kBeginUnit || type > kDeleteWhere) return false;
    len = le32_at(data, pos + 1);
    if (data.size() - pos < kFrameOverhead + static_cast<std::size_t>(len))
        return false;
    return checksum::crc32(data.substr(pos, 5 + len)) ==
           le32_at(data, pos + 5 + len);
}

/// Offset of the next valid record frame at or after `from`, or npos.
/// This is what separates a torn tail (nothing valid follows — a crash
/// mid-append) from mid-segment corruption (valid frames follow — a
/// crash cannot explain that; something rewrote bytes).  The scan is
/// capped so a garbage tail cannot turn classification into an O(n²)
/// CRC sweep.
constexpr std::size_t kResyncWindow = std::size_t{4} << 20;

std::size_t find_next_valid_record(std::string_view data, std::size_t from) {
    std::size_t limit = std::min(data.size(), from + kResyncWindow);
    for (std::size_t off = from;
         off < limit && data.size() - off >= kFrameOverhead; ++off) {
        std::uint8_t type;
        std::uint32_t len;
        if (record_frame_at(data, off, type, len)) return off;
    }
    return std::string::npos;
}

}  // namespace

std::string wal_file(const std::string& dir, std::uint64_t seq) {
    char name[32];
    std::snprintf(name, sizeof(name), "wal-%06llu.log",
                  static_cast<unsigned long long>(seq));
    return (fs::path(dir) / name).string();
}

Wal::Wal(std::string path, bool sync_on_commit)
    : path_(std::move(path)), sync_on_commit_(sync_on_commit) {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0)
        throw Error("cannot open WAL '" + path_ +
                    "': " + std::strerror(errno));
}

Wal::~Wal() { close(); }

void Wal::append(std::uint8_t type, std::string_view payload) {
    fault::maybe_fail("wal.append");
    if (broken_)
        throw Error("WAL '" + path_ +
                    "' is broken after a write failure; refusing to append");
    std::size_t frame_start = buf_.size();
    serial::put_u8(buf_, type);
    serial::put_u32(buf_, static_cast<std::uint32_t>(payload.size()));
    buf_.append(payload);
    std::uint32_t crc = checksum::crc32(
        std::string_view(buf_).substr(frame_start, 5 + payload.size()));
    serial::put_u32(buf_, crc);
    appended_ += kFrameOverhead + payload.size();
    ++records_;
    if (buf_.size() >= kSpillBytes) flush(/*sync=*/false);
}

void Wal::flush(bool sync) {
    // The injected-fsync failure fires before any byte moves, so tests
    // get the deterministic "commit never reached disk" outcome; a real
    // mid-write failure instead leaves a torn tail recovery drops.
    if (sync) fault::maybe_fail("wal.fsync");
    if (broken_) throw Error("WAL '" + path_ + "' is broken; cannot flush");
    const char* data = buf_.data();
    std::size_t left = buf_.size();
    while (left > 0) {
        ssize_t n = ::write(fd_, data, left);
        if (n < 0) {
            if (errno == EINTR) continue;
            broken_ = true;
            buf_.clear();  // partially written; the buffer is unusable now
            throw Error("WAL '" + path_ +
                        "' write failed: " + std::strerror(errno));
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    buf_.clear();
    if (sync && ::fsync(fd_) != 0) {
        broken_ = true;
        throw Error("WAL '" + path_ + "' fsync failed: " + std::strerror(errno));
    }
}

void Wal::close() noexcept {
    if (fd_ < 0) return;
    try {
        flush(/*sync=*/true);
    } catch (...) {
        // Unflushed records belong to uncommitted work (commits flush
        // synchronously), so losing them is recovery-safe.
    }
    ::close(fd_);
    fd_ = -1;
}

void Wal::log_insert(const Table& table, const Row& row) {
    std::string payload;
    serial::put_string(payload, table.name());
    serial::put_row(payload, row);
    append(kInsert, payload);
}

void Wal::log_update(const Table& table, RowId row, int column,
                     const Value& value) {
    std::string payload;
    serial::put_string(payload, table.name());
    serial::put_u32(payload, row);
    serial::put_u32(payload, static_cast<std::uint32_t>(column));
    serial::put_value(payload, value);
    append(kUpdate, payload);
}

void Wal::log_delete_where(const Table& table, int column, const Value& value) {
    std::string payload;
    serial::put_string(payload, table.name());
    serial::put_u32(payload, static_cast<std::uint32_t>(column));
    serial::put_value(payload, value);
    append(kDeleteWhere, payload);
}

void Wal::log_create_index(const Table& table, std::string_view column,
                           IndexKind kind) {
    std::string payload;
    serial::put_string(payload, table.name());
    serial::put_string(payload, column);
    serial::put_u8(payload, static_cast<std::uint8_t>(kind));
    append(kCreateIndex, payload);
}

void Wal::log_create_table(const TableDef& def) {
    std::string payload;
    serial::put_table_def(payload, def);
    append(kCreateTable, payload);
}

void Wal::log_drop_table(std::string_view name) {
    std::string payload;
    serial::put_string(payload, name);
    append(kDropTable, payload);
}

void Wal::log_add_foreign_key(const ForeignKeyDef& fk) {
    std::string payload;
    serial::put_string(payload, fk.table);
    serial::put_string(payload, fk.column);
    serial::put_string(payload, fk.ref_table);
    serial::put_string(payload, fk.ref_column);
    append(kAddForeignKey, payload);
}

void Wal::log_begin_unit() { append(kBeginUnit, {}); }

void Wal::log_commit_unit(bool outermost) {
    std::size_t mark = buf_.size();
    append(kCommitUnit, {});
    if (!outermost) return;
    try {
        flush(sync_on_commit_);
    } catch (...) {
        // Nothing was written (injected failure fires pre-write): take
        // the commit frame back so the on-disk unit stays uncommitted,
        // matching the rollback the caller is about to perform.
        if (buf_.size() > mark) {
            buf_.resize(mark);
            --records_;
        }
        throw;
    }
}

void Wal::log_rollback_unit() noexcept {
    if (broken_) return;
    try {
        append(kRollbackUnit, {});
    } catch (...) {
        // Advisory record: recovery rolls open units back regardless.
    }
}

WalReplayStats replay_wal(const std::string& path, Database& db,
                          WalReplayMode mode, SalvageReport* report) {
    const bool salvage = mode == WalReplayMode::kSalvage;
    if (salvage && report == nullptr)
        throw SchemaError("replay_wal: salvage mode requires a report");
    WalReplayStats stats;
    std::string data;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) return stats;  // no segment — nothing to replay
        std::ostringstream tmp;
        tmp << in.rdbuf();
        data = std::move(tmp).str();
    }

    std::size_t pos = 0;
    std::size_t record_no = 0;
    while (pos < data.size()) {
        std::uint8_t type;
        std::uint32_t len;
        if (!record_frame_at(data, pos, type, len)) {
            // Damaged frame.  A crash mid-append leaves nothing valid
            // after it (writes are sequential); a valid frame further on
            // means the hole was *overwritten*, i.e. real corruption that
            // truncation would silently turn into data loss.
            std::size_t next = find_next_valid_record(data, pos + 1);
            if (next != std::string::npos) {
                if (!salvage)
                    throw CorruptionError(
                        "bad record frame but valid records follow at offset " +
                            std::to_string(next) +
                            " — mid-segment corruption, not a torn tail",
                        path, pos, "record " + std::to_string(record_no));
                report->wal_bytes_dropped += next - pos;
                report->notes.push_back(
                    "WAL '" + path + "': dropped " + std::to_string(next - pos) +
                    " unreadable bytes at offset " + std::to_string(pos));
                stats.bytes_dropped += next - pos;
                pos = next;
                continue;
            }
            // True torn tail.
            stats.torn_bytes = data.size() - pos;
            if (mode == WalReplayMode::kMidChain)
                throw CorruptionError(
                    "torn record at offset " + std::to_string(pos) +
                        " but this is not the newest segment; the recovery "
                        "chain is broken",
                    path, pos, "record " + std::to_string(record_no));
            if (mode == WalReplayMode::kTail) {
                std::error_code ec;
                fs::resize_file(path, pos, ec);
                if (ec)
                    throw Error("cannot truncate torn tail of WAL '" + path +
                                "': " + ec.message());
            } else {
                report->notes.push_back(
                    "WAL '" + path + "': torn tail of " +
                    std::to_string(stats.torn_bytes) + " bytes at offset " +
                    std::to_string(pos));
            }
            break;
        }

        fault::maybe_fail("recovery.replay");
        std::string context =
            "WAL '" + path + "' record " + std::to_string(record_no);
        serial::Reader in(std::string_view(data).substr(pos + 5, len), context,
                          path, pos + 5);
        try {
            switch (type) {
                case kBeginUnit:
                    db.begin_unit();
                    break;
                case kCommitUnit:
                    db.commit_unit();
                    break;
                case kRollbackUnit:
                    db.rollback_unit();
                    break;
                case kCreateTable:
                    db.create_table(serial::read_table_def(in));
                    break;
                case kCreateIndex: {
                    Table& t = db.require(in.string());
                    std::string column = in.string();
                    std::uint8_t kind = in.u8();
                    if (kind > static_cast<std::uint8_t>(IndexKind::kOrdered))
                        in.fail("unknown index kind tag " +
                                std::to_string(kind));
                    t.create_index(column, static_cast<IndexKind>(kind));
                    break;
                }
                case kDropTable:
                    db.drop_table(in.string());
                    break;
                case kAddForeignKey: {
                    ForeignKeyDef fk;
                    fk.table = in.string();
                    fk.column = in.string();
                    fk.ref_table = in.string();
                    fk.ref_column = in.string();
                    db.add_foreign_key(std::move(fk));
                    break;
                }
                case kInsert: {
                    Table& t = db.require(in.string());
                    t.insert(serial::read_row(in));
                    break;
                }
                case kUpdate: {
                    Table& t = db.require(in.string());
                    auto row = static_cast<RowId>(in.u32());
                    std::uint32_t col = in.u32();
                    if (row >= t.row_count())
                        throw Error("row id " + std::to_string(row) +
                                    " out of range (" +
                                    std::to_string(t.row_count()) + " rows)");
                    if (col >= t.column_count())
                        throw Error("column index out of range");
                    t.update(row, t.def().columns[col].name, in.value());
                    break;
                }
                case kDeleteWhere: {
                    Table& t = db.require(in.string());
                    std::uint32_t col = in.u32();
                    if (col >= t.column_count())
                        throw Error("column index out of range");
                    t.delete_where(t.def().columns[col].name, in.value());
                    break;
                }
                default:
                    throw Error("unknown record type " + std::to_string(type));
            }
        } catch (const fault::InjectedFault&) {
            throw;
        } catch (const Error& e) {
            if (!salvage)
                throw CorruptionError(e.bare_message(), path, pos,
                                      "record " + std::to_string(record_no));
            ++stats.records_skipped;
            ++report->wal_records_skipped;
            report->notes.push_back(context + ": skipped: " + e.bare_message());
            pos += kFrameOverhead + len;
            ++record_no;
            continue;
        }
        ++stats.records;
        pos += kFrameOverhead + len;
        ++record_no;
    }
    return stats;
}

}  // namespace xr::rdb
