// DTD parser.
//
// Parses external DTD text (or a DOCTYPE internal subset) into a Dtd.
// Parameter entities are textually expanded up front — precisely the
// preprocessing the paper prescribes to obtain a *logical DTD* ("entity and
// notation declarations ... can be substituted or expanded to give an
// equivalent DTD with only element type and attribute-list declarations").
// Conditional sections (<![INCLUDE[ ... ]]> / <![IGNORE[ ... ]]>) are
// honoured after expansion.
#pragma once

#include <string>
#include <string_view>

#include "dtd/dtd.hpp"
#include "xml/dom.hpp"

namespace xr::dtd {

struct DtdParseOptions {
    /// Cap on total parameter-entity expansion output.
    std::size_t max_expansion = 1u << 22;
};

/// Parse DTD text.  Throws xr::ParseError on syntax errors and
/// xr::SchemaError on duplicate element declarations.
[[nodiscard]] Dtd parse_dtd(std::string_view text,
                            const DtdParseOptions& options = {});

/// Parse the internal subset captured in a DOCTYPE declaration.
[[nodiscard]] Dtd parse_doctype(const xml::DoctypeDecl& doctype,
                                const DtdParseOptions& options = {});

}  // namespace xr::dtd
