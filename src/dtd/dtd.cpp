#include "dtd/dtd.hpp"

#include <algorithm>
#include <set>

namespace xr::dtd {

std::string_view to_string(AttrType t) {
    switch (t) {
        case AttrType::kCData: return "CDATA";
        case AttrType::kId: return "ID";
        case AttrType::kIdRef: return "IDREF";
        case AttrType::kIdRefs: return "IDREFS";
        case AttrType::kEntity: return "ENTITY";
        case AttrType::kEntities: return "ENTITIES";
        case AttrType::kNmToken: return "NMTOKEN";
        case AttrType::kNmTokens: return "NMTOKENS";
        case AttrType::kNotation: return "NOTATION";
        case AttrType::kEnumeration: return "enumeration";
        case AttrType::kPCData: return "(#PCDATA)";
    }
    return "?";
}

std::string_view to_string(AttrDefaultKind k) {
    switch (k) {
        case AttrDefaultKind::kRequired: return "#REQUIRED";
        case AttrDefaultKind::kImplied: return "#IMPLIED";
        case AttrDefaultKind::kFixed: return "#FIXED";
        case AttrDefaultKind::kDefault: return "";
    }
    return "";
}

std::string AttributeDecl::to_string() const {
    std::string out = name + " ";
    if (type == AttrType::kEnumeration || type == AttrType::kNotation) {
        if (type == AttrType::kNotation) out += "NOTATION ";
        out += "(";
        for (std::size_t i = 0; i < enumeration.size(); ++i) {
            if (i != 0) out += " | ";
            out += enumeration[i];
        }
        out += ")";
    } else {
        out += xr::dtd::to_string(type);
    }
    switch (default_kind) {
        case AttrDefaultKind::kRequired: out += " #REQUIRED"; break;
        case AttrDefaultKind::kImplied: out += " #IMPLIED"; break;
        case AttrDefaultKind::kFixed:
            out += " #FIXED \"" + default_value + "\"";
            break;
        case AttrDefaultKind::kDefault:
            out += " \"" + default_value + "\"";
            break;
    }
    return out;
}

const AttributeDecl* ElementDecl::attribute(std::string_view attr_name) const {
    for (const auto& a : attributes)
        if (a.name == attr_name) return &a;
    return nullptr;
}

const AttributeDecl* ElementDecl::id_attribute() const {
    for (const auto& a : attributes)
        if (a.type == AttrType::kId) return &a;
    return nullptr;
}

std::vector<const AttributeDecl*> ElementDecl::idref_attributes() const {
    std::vector<const AttributeDecl*> out;
    for (const auto& a : attributes)
        if (a.type == AttrType::kIdRef || a.type == AttrType::kIdRefs)
            out.push_back(&a);
    return out;
}

ElementDecl& Dtd::add_element(ElementDecl decl) {
    if (element_index_.contains(decl.name))
        throw SchemaError("duplicate element declaration '" + decl.name + "'",
                          decl.location);
    element_index_[decl.name] = elements_.size();
    elements_.push_back(std::move(decl));
    return elements_.back();
}

ElementDecl& Dtd::ensure_element(const std::string& name) {
    if (auto* e = element(name)) return *e;
    ElementDecl decl;
    decl.name = name;
    return add_element(std::move(decl));
}

const ElementDecl* Dtd::element(std::string_view name) const {
    auto it = element_index_.find(name);
    return it == element_index_.end() ? nullptr : &elements_[it->second];
}

ElementDecl* Dtd::element(std::string_view name) {
    auto it = element_index_.find(name);
    return it == element_index_.end() ? nullptr : &elements_[it->second];
}

void Dtd::add_entity(EntityDecl decl) {
    // Per XML 1.0, the first binding of an entity name wins.
    if (entity(decl.name, decl.is_parameter) != nullptr) return;
    entities_.push_back(std::move(decl));
}

const EntityDecl* Dtd::entity(std::string_view name, bool parameter) const {
    for (const auto& e : entities_)
        if (e.is_parameter == parameter && e.name == name) return &e;
    return nullptr;
}

std::map<std::string, std::string, std::less<>> Dtd::general_entities() const {
    std::map<std::string, std::string, std::less<>> out;
    for (const auto& e : entities_)
        if (!e.is_parameter && !e.is_external()) out.emplace(e.name, e.value);
    return out;
}

Dtd Dtd::logicalize() const {
    Dtd out;
    for (const auto& e : elements_) out.add_element(e);
    return out;
}

std::vector<std::string> Dtd::root_candidates() const {
    std::set<std::string> referenced;
    for (const auto& e : elements_)
        for (const auto& n : e.content.referenced_names()) referenced.insert(n);
    std::vector<std::string> out;
    for (const auto& e : elements_)
        if (!referenced.contains(e.name)) out.push_back(e.name);
    return out;
}

std::vector<std::string> Dtd::id_bearing_elements() const {
    std::vector<std::string> out;
    for (const auto& e : elements_)
        if (e.id_attribute() != nullptr) out.push_back(e.name);
    return out;
}

std::string Dtd::to_string() const {
    std::string out;
    for (const auto& e : elements_) {
        out += "<!ELEMENT " + e.name + " " + e.content.to_string() + ">\n";
        if (!e.attributes.empty()) {
            out += "<!ATTLIST " + e.name;
            for (const auto& a : e.attributes) out += "\n    " + a.to_string();
            out += ">\n";
        }
    }
    for (const auto& en : entities_) {
        out += "<!ENTITY ";
        if (en.is_parameter) out += "% ";
        out += en.name + " ";
        if (en.is_external()) {
            if (!en.public_id.empty())
                out += "PUBLIC \"" + en.public_id + "\" \"" + en.system_id + "\"";
            else
                out += "SYSTEM \"" + en.system_id + "\"";
        } else {
            out += "\"" + en.value + "\"";
        }
        out += ">\n";
    }
    for (const auto& n : notations_) {
        out += "<!NOTATION " + n.name + " ";
        if (!n.public_id.empty()) {
            out += "PUBLIC \"" + n.public_id + "\"";
            if (!n.system_id.empty()) out += " \"" + n.system_id + "\"";
        } else {
            out += "SYSTEM \"" + n.system_id + "\"";
        }
        out += ">\n";
    }
    return out;
}

std::vector<std::string> Dtd::lint() const {
    std::vector<std::string> issues;
    for (const auto& e : elements_) {
        for (const auto& n : e.content.referenced_names()) {
            if (!has_element(n))
                issues.push_back("element '" + e.name +
                                 "' references undeclared element '" + n + "'");
        }
        std::size_t id_count = 0;
        for (const auto& a : e.attributes)
            if (a.type == AttrType::kId) ++id_count;
        if (id_count > 1)
            issues.push_back("element '" + e.name +
                             "' declares more than one ID attribute");
        for (const auto& a : e.attributes) {
            if (a.type == AttrType::kId &&
                a.default_kind != AttrDefaultKind::kRequired &&
                a.default_kind != AttrDefaultKind::kImplied)
                issues.push_back("ID attribute '" + a.name + "' of '" + e.name +
                                 "' must be #REQUIRED or #IMPLIED");
        }
    }
    if (id_bearing_elements().empty()) {
        for (const auto& e : elements_) {
            if (!e.idref_attributes().empty()) {
                issues.push_back("element '" + e.name +
                                 "' has IDREF attribute but no element declares "
                                 "an ID attribute");
            }
        }
    }
    return issues;
}

}  // namespace xr::dtd
