#include "dtd/content_model.hpp"

namespace xr::dtd {

std::string_view to_string(Occurrence o) {
    switch (o) {
        case Occurrence::kOne: return "";
        case Occurrence::kOptional: return "?";
        case Occurrence::kZeroOrMore: return "*";
        case Occurrence::kOneOrMore: return "+";
    }
    return "";
}

bool is_optional(Occurrence o) {
    return o == Occurrence::kOptional || o == Occurrence::kZeroOrMore;
}

bool is_repeatable(Occurrence o) {
    return o == Occurrence::kZeroOrMore || o == Occurrence::kOneOrMore;
}

Occurrence compose(Occurrence outer, Occurrence inner) {
    if (outer == Occurrence::kOne) return inner;
    if (inner == Occurrence::kOne) return outer;
    bool optional = is_optional(outer) || is_optional(inner);
    bool repeatable = is_repeatable(outer) || is_repeatable(inner);
    if (optional && repeatable) return Occurrence::kZeroOrMore;
    if (repeatable) return Occurrence::kOneOrMore;
    return Occurrence::kOptional;
}

std::string Particle::to_string() const {
    std::string out;
    if (is_element()) {
        out = name;
    } else {
        out = "(";
        const char* sep = kind == ParticleKind::kSequence ? ", " : " | ";
        for (std::size_t i = 0; i < children.size(); ++i) {
            if (i != 0) out += sep;
            out += children[i].to_string();
        }
        out += ")";
    }
    out += xr::dtd::to_string(occurrence);
    return out;
}

void Particle::collect_names(std::vector<std::string>& out) const {
    if (is_element()) {
        out.push_back(name);
        return;
    }
    for (const auto& c : children) c.collect_names(out);
}

std::size_t Particle::size() const {
    std::size_t n = 1;
    for (const auto& c : children) n += c.size();
    return n;
}

std::string_view to_string(ContentCategory c) {
    switch (c) {
        case ContentCategory::kEmpty: return "EMPTY";
        case ContentCategory::kAny: return "ANY";
        case ContentCategory::kPCData: return "pcdata";
        case ContentCategory::kMixed: return "mixed";
        case ContentCategory::kChildren: return "children";
    }
    return "?";
}

std::string ContentModel::to_string() const {
    switch (category) {
        case ContentCategory::kEmpty: return "EMPTY";
        case ContentCategory::kAny: return "ANY";
        case ContentCategory::kPCData: return "(#PCDATA)";
        case ContentCategory::kMixed: {
            std::string out = "(#PCDATA";
            for (const auto& n : mixed_names) out += " | " + n;
            out += ")*";
            return out;
        }
        case ContentCategory::kChildren: {
            // A bare element reference still needs surrounding parentheses
            // to be valid DTD syntax.
            if (particle.is_element() ) {
                return "(" + particle.name + std::string(xr::dtd::to_string(particle.occurrence)) + ")";
            }
            return particle.to_string();
        }
    }
    return "";
}

std::vector<std::string> ContentModel::referenced_names() const {
    std::vector<std::string> out;
    if (category == ContentCategory::kChildren) particle.collect_names(out);
    else if (category == ContentCategory::kMixed) out = mixed_names;
    return out;
}

}  // namespace xr::dtd
