// Document Type Definition model.
//
// A Dtd holds element type declarations (with merged attribute lists),
// entity declarations and notation declarations, in declaration order.
// Per the paper (Section 2), entity and notation declarations are only
// physical organization: logicalize() expands/strips them, yielding a
// *logical DTD* containing only element and attribute-list declarations —
// the input form the mapping algorithm expects.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "dtd/content_model.hpp"

namespace xr::dtd {

/// Attribute types of XML 1.0.
enum class AttrType {
    kCData,
    kId,
    kIdRef,
    kIdRefs,
    kEntity,
    kEntities,
    kNmToken,
    kNmTokens,
    kNotation,
    kEnumeration,
    /// Not real DTD: marks attributes distilled from #PCDATA subelements by
    /// the mapping algorithm's step 2 (paper writes them as "(#PCDATA)").
    kPCData,
};

[[nodiscard]] std::string_view to_string(AttrType t);

enum class AttrDefaultKind {
    kRequired,  ///< #REQUIRED
    kImplied,   ///< #IMPLIED
    kFixed,     ///< #FIXED "value"
    kDefault,   ///< "value"
};

[[nodiscard]] std::string_view to_string(AttrDefaultKind k);

/// One attribute definition from an <!ATTLIST ...> declaration.
struct AttributeDecl {
    std::string name;
    AttrType type = AttrType::kCData;
    std::vector<std::string> enumeration;  ///< for kEnumeration / kNotation
    AttrDefaultKind default_kind = AttrDefaultKind::kImplied;
    std::string default_value;             ///< for kFixed / kDefault

    [[nodiscard]] bool required() const {
        return default_kind == AttrDefaultKind::kRequired;
    }
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const AttributeDecl&, const AttributeDecl&) = default;
};

/// An element type declaration plus its (merged) attribute list.
struct ElementDecl {
    std::string name;
    ContentModel content;
    std::vector<AttributeDecl> attributes;
    SourceLocation location;

    [[nodiscard]] const AttributeDecl* attribute(std::string_view name) const;
    /// The ID attribute of this element type, if any (XML permits one).
    [[nodiscard]] const AttributeDecl* id_attribute() const;
    /// All IDREF / IDREFS attributes.
    [[nodiscard]] std::vector<const AttributeDecl*> idref_attributes() const;

    friend bool operator==(const ElementDecl& a, const ElementDecl& b) {
        return a.name == b.name && a.content == b.content &&
               a.attributes == b.attributes;
    }
};

/// A general or parameter entity declaration.
struct EntityDecl {
    std::string name;
    bool is_parameter = false;   ///< '%' entities
    std::string value;           ///< replacement text (internal entities)
    std::string system_id;       ///< external entity, if any
    std::string public_id;

    [[nodiscard]] bool is_external() const { return !system_id.empty(); }
};

struct NotationDecl {
    std::string name;
    std::string system_id;
    std::string public_id;
};

/// A parsed DTD.  Element declaration order is preserved: the paper's
/// Example 2 output and the generated ER model both follow it.
class Dtd {
public:
    Dtd() = default;

    // -- element declarations -------------------------------------------------
    /// Adds a declaration; throws SchemaError on duplicate element name.
    ElementDecl& add_element(ElementDecl decl);
    /// Declares an element if not yet present, returning the declaration.
    ElementDecl& ensure_element(const std::string& name);

    [[nodiscard]] const ElementDecl* element(std::string_view name) const;
    [[nodiscard]] ElementDecl* element(std::string_view name);
    [[nodiscard]] bool has_element(std::string_view name) const {
        return element(name) != nullptr;
    }
    [[nodiscard]] const std::vector<ElementDecl>& elements() const {
        return elements_;
    }
    [[nodiscard]] std::vector<ElementDecl>& elements() { return elements_; }
    [[nodiscard]] std::size_t element_count() const { return elements_.size(); }

    // -- entity / notation declarations ---------------------------------------
    void add_entity(EntityDecl decl);
    [[nodiscard]] const EntityDecl* entity(std::string_view name,
                                           bool parameter) const;
    [[nodiscard]] const std::vector<EntityDecl>& entities() const {
        return entities_;
    }
    void add_notation(NotationDecl decl) {
        notations_.push_back(std::move(decl));
    }
    [[nodiscard]] const std::vector<NotationDecl>& notations() const {
        return notations_;
    }

    /// General (non-parameter) internal entities, keyed by name — the map
    /// the XML parser needs to expand references in conforming documents.
    [[nodiscard]] std::map<std::string, std::string, std::less<>>
    general_entities() const;

    /// The paper's logical DTD: entity and notation declarations are
    /// dropped (their effect has already been textually expanded during
    /// parsing), leaving only element + attribute-list declarations.
    [[nodiscard]] Dtd logicalize() const;

    /// Root candidates: declared elements that are referenced by no other
    /// element's content model.
    [[nodiscard]] std::vector<std::string> root_candidates() const;

    /// Element types carrying an ID attribute — the legal targets of any
    /// IDREF (paper: "an IDREF can reference any element with an ID").
    [[nodiscard]] std::vector<std::string> id_bearing_elements() const;

    /// Serialize to DTD text (one declaration per line).
    [[nodiscard]] std::string to_string() const;

    /// Consistency diagnostics: content models referencing undeclared
    /// elements, multiple ID attributes on one element, IDREFs with no
    /// possible target, ATTLIST for undeclared elements.
    [[nodiscard]] std::vector<std::string> lint() const;

private:
    std::vector<ElementDecl> elements_;
    std::map<std::string, std::size_t, std::less<>> element_index_;
    std::vector<EntityDecl> entities_;
    std::vector<NotationDecl> notations_;
};

}  // namespace xr::dtd
