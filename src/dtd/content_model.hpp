// Content models of DTD element type declarations.
//
// A content particle is an element reference, a sequence group '(a, b)', or
// a choice group '(a | b)', each optionally carrying an occurrence
// indicator '?', '*', '+' (paper Section 3: Grouping / Occurrence).  The
// paper's mapping algorithm rewrites these trees (hoisting groups into
// virtual elements), so the AST is a value type that is cheap to copy and
// compare.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace xr::dtd {

/// Occurrence indicator of a content particle.
enum class Occurrence {
    kOne,         ///< no indicator — exactly once
    kOptional,    ///< '?' — zero or one
    kZeroOrMore,  ///< '*'
    kOneOrMore,   ///< '+'
};

[[nodiscard]] std::string_view to_string(Occurrence o);

/// True iff the particle may be absent entirely.
[[nodiscard]] bool is_optional(Occurrence o);
/// True iff the particle may appear more than once.
[[nodiscard]] bool is_repeatable(Occurrence o);

/// Composition of two nested occurrence indicators, e.g. (a?)* == a*.
[[nodiscard]] Occurrence compose(Occurrence outer, Occurrence inner);

enum class ParticleKind {
    kElement,   ///< reference to an element type by name
    kSequence,  ///< (cp , cp , ...)
    kChoice,    ///< (cp | cp | ...)
};

/// One node of a content-model tree.
struct Particle {
    ParticleKind kind = ParticleKind::kElement;
    Occurrence occurrence = Occurrence::kOne;
    std::string name;                 ///< element name, for kElement
    std::vector<Particle> children;   ///< members, for groups

    [[nodiscard]] bool is_element() const { return kind == ParticleKind::kElement; }
    [[nodiscard]] bool is_group() const { return !is_element(); }

    /// Canonical DTD text, e.g. "(booktitle, (author* | editor))".
    [[nodiscard]] std::string to_string() const;

    /// All element names referenced in this subtree (with duplicates).
    void collect_names(std::vector<std::string>& out) const;

    /// Total number of particles in this subtree (including this one).
    [[nodiscard]] std::size_t size() const;

    friend bool operator==(const Particle&, const Particle&) = default;

    static Particle element(std::string name, Occurrence o = Occurrence::kOne) {
        Particle p;
        p.kind = ParticleKind::kElement;
        p.name = std::move(name);
        p.occurrence = o;
        return p;
    }
    static Particle sequence(std::vector<Particle> children,
                             Occurrence o = Occurrence::kOne) {
        Particle p;
        p.kind = ParticleKind::kSequence;
        p.children = std::move(children);
        p.occurrence = o;
        return p;
    }
    static Particle choice(std::vector<Particle> children,
                           Occurrence o = Occurrence::kOne) {
        Particle p;
        p.kind = ParticleKind::kChoice;
        p.children = std::move(children);
        p.occurrence = o;
        return p;
    }
};

/// The four content categories of an element type declaration.
enum class ContentCategory {
    kEmpty,     ///< EMPTY — existence property (paper Section 3, Existence)
    kAny,       ///< ANY — arbitrary content
    kPCData,    ///< (#PCDATA) — text only
    kMixed,     ///< (#PCDATA | a | b)* — text interleaved with elements
    kChildren,  ///< element content described by a particle tree
};

[[nodiscard]] std::string_view to_string(ContentCategory c);

/// The full content specification of an element type.
struct ContentModel {
    ContentCategory category = ContentCategory::kEmpty;
    Particle particle;                      ///< for kChildren
    std::vector<std::string> mixed_names;   ///< member elements, for kMixed

    [[nodiscard]] bool is_text_only() const {
        return category == ContentCategory::kPCData;
    }

    /// Canonical DTD content-spec text ("EMPTY", "ANY", "(#PCDATA)", ...).
    [[nodiscard]] std::string to_string() const;

    /// Every element name referenced by this model.
    [[nodiscard]] std::vector<std::string> referenced_names() const;

    friend bool operator==(const ContentModel&, const ContentModel&) = default;

    static ContentModel empty() { return {}; }
    static ContentModel any() { return {ContentCategory::kAny, {}, {}}; }
    static ContentModel pcdata() { return {ContentCategory::kPCData, {}, {}}; }
    static ContentModel mixed(std::vector<std::string> names) {
        return {ContentCategory::kMixed, {}, std::move(names)};
    }
    static ContentModel children(Particle p) {
        return {ContentCategory::kChildren, std::move(p), {}};
    }
};

}  // namespace xr::dtd
