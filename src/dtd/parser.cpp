#include "dtd/parser.hpp"

#include <cctype>
#include <map>

#include "common/cursor.hpp"
#include "xml/parser.hpp"

namespace xr::dtd {

namespace {

using PEMap = std::map<std::string, std::string, std::less<>>;

/// Collect <!ENTITY % name "..."> declarations, expanding references to
/// previously declared parameter entities inside each replacement value.
PEMap collect_parameter_entities(std::string_view text) {
    PEMap pes;
    Cursor cur(text);
    while (!cur.at_end()) {
        if (!cur.lookahead("<!ENTITY")) {
            cur.advance();
            continue;
        }
        Cursor probe = cur;  // copy; only committed if it is a PE decl
        probe.consume("<!ENTITY");
        probe.skip_space();
        if (!probe.consume("%")) {
            cur.advance();
            continue;
        }
        probe.skip_space();
        std::string name;
        while (!probe.at_end() && !is_xml_space(probe.peek())) name += probe.advance();
        probe.skip_space();
        char quote = probe.peek();
        if (quote != '"' && quote != '\'') {
            // External parameter entity — cannot be fetched offline; treated
            // as empty replacement text.
            pes.emplace(name, "");
            cur.advance();
            continue;
        }
        probe.advance();
        std::string value;
        while (!probe.at_end() && probe.peek() != quote) value += probe.advance();
        // Expand nested PE references (declared-before-use per XML 1.0).
        std::string expanded;
        for (std::size_t i = 0; i < value.size();) {
            if (value[i] == '%') {
                std::size_t semi = value.find(';', i + 1);
                if (semi != std::string::npos) {
                    auto it = pes.find(std::string_view(value).substr(i + 1, semi - i - 1));
                    if (it != pes.end()) {
                        expanded += it->second;
                        i = semi + 1;
                        continue;
                    }
                }
            }
            expanded += value[i++];
        }
        pes.emplace(std::move(name), std::move(expanded));
        cur.advance();
    }
    return pes;
}

/// Textually expand %name; references.  Per XML 1.0 the replacement text is
/// padded with one space on each side when recognized in the DTD proper.
std::string expand_parameter_entities(std::string_view text, const PEMap& pes,
                                      std::size_t max_expansion) {
    std::string current(text);
    for (int round = 0; round < 32; ++round) {
        bool changed = false;
        std::string out;
        out.reserve(current.size());
        for (std::size_t i = 0; i < current.size();) {
            char c = current[i];
            if (c != '%') {
                out += c;
                ++i;
                continue;
            }
            std::size_t semi = current.find(';', i + 1);
            bool valid = semi != std::string::npos && semi > i + 1;
            if (valid) {
                for (std::size_t k = i + 1; k < semi; ++k) {
                    char nc = current[k];
                    if (!(std::isalnum(static_cast<unsigned char>(nc)) || nc == '.' ||
                          nc == '-' || nc == '_' || nc == ':')) {
                        valid = false;
                        break;
                    }
                }
            }
            if (!valid) {
                out += c;
                ++i;
                continue;
            }
            std::string_view name =
                std::string_view(current).substr(i + 1, semi - i - 1);
            auto it = pes.find(name);
            if (it == pes.end())
                throw ParseError("undefined parameter entity '%" + std::string(name) +
                                 ";'");
            out += ' ';
            out += it->second;
            out += ' ';
            changed = true;
            i = semi + 1;
            if (out.size() > max_expansion)
                throw ParseError("parameter entity expansion limit exceeded");
        }
        current = std::move(out);
        if (!changed) return current;
    }
    throw ParseError("parameter entity expansion did not terminate");
}

class DtdParser {
public:
    DtdParser(std::string_view text, Dtd& dtd) : cur_(text), dtd_(dtd) {}

    void run() {
        for (;;) {
            cur_.skip_space();
            if (cur_.at_end()) return;
            if (cur_.lookahead("<!--")) parse_comment();
            else if (cur_.lookahead("<!ELEMENT")) parse_element_decl();
            else if (cur_.lookahead("<!ATTLIST")) parse_attlist_decl();
            else if (cur_.lookahead("<!ENTITY")) parse_entity_decl();
            else if (cur_.lookahead("<!NOTATION")) parse_notation_decl();
            else if (cur_.lookahead("<![")) parse_conditional_section();
            else if (cur_.lookahead("<?")) parse_processing_instruction();
            else cur_.fail("expected a DTD declaration");
        }
    }

private:
    Cursor cur_;
    Dtd& dtd_;

    // ATTLIST declarations may precede the ELEMENT declaration they refer
    // to; buffered attlists are merged at close().
    struct PendingAttlist {
        std::string element_name;
        std::vector<AttributeDecl> attributes;
        SourceLocation location;
    };
    std::vector<PendingAttlist> pending_attlists_;

public:
    void close() {
        for (auto& p : pending_attlists_) {
            ElementDecl& e = dtd_.ensure_element(p.element_name);
            for (auto& a : p.attributes) {
                // XML 1.0: the first declaration of an attribute is binding.
                if (e.attribute(a.name) == nullptr)
                    e.attributes.push_back(std::move(a));
            }
        }
        pending_attlists_.clear();
    }

private:
    // -- declarations ----------------------------------------------------------

    void parse_element_decl() {
        SourceLocation where = cur_.location();
        cur_.consume("<!ELEMENT");
        require_space("after '<!ELEMENT'");
        ElementDecl decl;
        decl.name = parse_name("element name");
        decl.location = where;
        require_space("after element name");
        decl.content = parse_content_spec();
        cur_.skip_space();
        if (!cur_.consume(">")) cur_.fail("expected '>' to close ELEMENT declaration");
        dtd_.add_element(std::move(decl));
    }

    ContentModel parse_content_spec() {
        if (cur_.consume("EMPTY")) return ContentModel::empty();
        if (cur_.consume("ANY")) return ContentModel::any();
        if (!cur_.lookahead("(")) cur_.fail("expected content specification");

        // Distinguish (#PCDATA ...) mixed content from element content.
        Cursor probe = cur_;
        probe.consume("(");
        probe.skip_space();
        if (probe.lookahead("#PCDATA")) return parse_mixed_content();
        Particle p = parse_group();
        p.occurrence = parse_occurrence(p.occurrence);
        // '(a)' with a single child and no indicators collapses to the child.
        return ContentModel::children(std::move(p));
    }

    ContentModel parse_mixed_content() {
        cur_.consume("(");
        cur_.skip_space();
        cur_.consume("#PCDATA");
        std::vector<std::string> names;
        cur_.skip_space();
        while (cur_.consume("|")) {
            cur_.skip_space();
            names.push_back(parse_name("mixed content element name"));
            cur_.skip_space();
        }
        if (!cur_.consume(")")) cur_.fail("expected ')' in mixed content");
        bool star = cur_.consume("*");
        if (!names.empty() && !star)
            cur_.fail("mixed content with elements requires trailing '*'");
        if (names.empty()) return ContentModel::pcdata();
        return ContentModel::mixed(std::move(names));
    }

    /// Parses a parenthesized group: '(' cp (sep cp)* ')'.
    Particle parse_group() {
        if (!cur_.consume("(")) cur_.fail("expected '('");
        std::vector<Particle> members;
        char sep = 0;  // ',' or '|' once determined
        for (;;) {
            cur_.skip_space();
            members.push_back(parse_cp());
            cur_.skip_space();
            char c = cur_.peek();
            if (c == ')') {
                cur_.advance();
                break;
            }
            if (c != ',' && c != '|')
                cur_.fail("expected ',', '|' or ')' in content model group");
            if (sep == 0) sep = c;
            else if (sep != c)
                cur_.fail("cannot mix ',' and '|' in one group");
            cur_.advance();
        }
        ParticleKind kind =
            sep == '|' ? ParticleKind::kChoice : ParticleKind::kSequence;
        Particle group;
        group.kind = kind;
        group.children = std::move(members);
        return group;
    }

    /// Parses one content particle: Name or group, plus occurrence.
    Particle parse_cp() {
        Particle p;
        if (cur_.lookahead("(")) {
            p = parse_group();
        } else {
            p = Particle::element(parse_name("content particle"));
        }
        p.occurrence = parse_occurrence(p.occurrence);
        return p;
    }

    Occurrence parse_occurrence(Occurrence current) {
        if (cur_.consume("?")) return compose(Occurrence::kOptional, current);
        if (cur_.consume("*")) return compose(Occurrence::kZeroOrMore, current);
        if (cur_.consume("+")) return compose(Occurrence::kOneOrMore, current);
        return current;
    }

    void parse_attlist_decl() {
        SourceLocation where = cur_.location();
        cur_.consume("<!ATTLIST");
        require_space("after '<!ATTLIST'");
        PendingAttlist pending;
        pending.element_name = parse_name("ATTLIST element name");
        pending.location = where;
        for (;;) {
            cur_.skip_space();
            if (cur_.consume(">")) break;
            if (cur_.at_end()) cur_.fail("unterminated ATTLIST declaration");
            pending.attributes.push_back(parse_attribute_def());
        }
        pending_attlists_.push_back(std::move(pending));
    }

    AttributeDecl parse_attribute_def() {
        AttributeDecl a;
        a.name = parse_name("attribute name");
        require_space("after attribute name");
        cur_.skip_space();

        if (cur_.consume("CDATA")) a.type = AttrType::kCData;
        else if (cur_.consume("IDREFS")) a.type = AttrType::kIdRefs;
        else if (cur_.consume("IDREF")) a.type = AttrType::kIdRef;
        else if (cur_.consume("ID")) a.type = AttrType::kId;
        else if (cur_.consume("ENTITIES")) a.type = AttrType::kEntities;
        else if (cur_.consume("ENTITY")) a.type = AttrType::kEntity;
        else if (cur_.consume("NMTOKENS")) a.type = AttrType::kNmTokens;
        else if (cur_.consume("NMTOKEN")) a.type = AttrType::kNmToken;
        else if (cur_.consume("NOTATION")) {
            a.type = AttrType::kNotation;
            cur_.skip_space();
            a.enumeration = parse_enumeration();
        } else if (cur_.lookahead("(")) {
            // The paper's converted-DTD notation writes distilled attributes
            // as 'name (#PCDATA) ...'; accept that alongside enumerations.
            Cursor probe = cur_;
            probe.consume("(");
            probe.skip_space();
            if (probe.lookahead("#PCDATA")) {
                cur_.consume("(");
                cur_.skip_space();
                cur_.consume("#PCDATA");
                cur_.skip_space();
                if (!cur_.consume(")")) cur_.fail("expected ')' after #PCDATA");
                a.type = AttrType::kPCData;
            } else {
                a.type = AttrType::kEnumeration;
                a.enumeration = parse_enumeration();
            }
        } else {
            cur_.fail("expected attribute type");
        }

        require_space("after attribute type");
        cur_.skip_space();
        if (cur_.consume("#REQUIRED")) {
            a.default_kind = AttrDefaultKind::kRequired;
        } else if (cur_.consume("#IMPLIED") || cur_.consume("#IMPLIES")) {
            // The paper's Example text itself contains the typo '#IMPLIES';
            // accept it as a synonym so the paper's DTDs parse verbatim.
            a.default_kind = AttrDefaultKind::kImplied;
        } else if (cur_.consume("#FIXED")) {
            a.default_kind = AttrDefaultKind::kFixed;
            cur_.skip_space();
            a.default_value = parse_attr_value();
        } else {
            a.default_kind = AttrDefaultKind::kDefault;
            a.default_value = parse_attr_value();
        }
        return a;
    }

    std::vector<std::string> parse_enumeration() {
        if (!cur_.consume("(")) cur_.fail("expected '(' in enumeration");
        std::vector<std::string> out;
        for (;;) {
            cur_.skip_space();
            out.push_back(parse_nmtoken("enumeration value"));
            cur_.skip_space();
            if (cur_.consume(")")) break;
            if (!cur_.consume("|")) cur_.fail("expected '|' or ')' in enumeration");
        }
        return out;
    }

    std::string parse_attr_value() {
        char quote = cur_.peek();
        if (quote != '"' && quote != '\'') cur_.fail("expected quoted default value");
        SourceLocation where = cur_.location();
        cur_.advance();
        std::string raw;
        while (!cur_.at_end() && cur_.peek() != quote) raw += cur_.advance();
        if (!cur_.consume(std::string_view(&quote, 1)))
            cur_.fail("unterminated default value");
        return xml::decode_references(raw, dtd_.general_entities(), where);
    }

    void parse_entity_decl() {
        cur_.consume("<!ENTITY");
        require_space("after '<!ENTITY'");
        EntityDecl decl;
        if (cur_.consume("%")) {
            decl.is_parameter = true;
            require_space("after '%'");
        }
        decl.name = parse_name("entity name");
        require_space("after entity name");
        cur_.skip_space();
        if (cur_.consume("SYSTEM")) {
            cur_.skip_space();
            decl.system_id = parse_quoted("system identifier");
        } else if (cur_.consume("PUBLIC")) {
            cur_.skip_space();
            decl.public_id = parse_quoted("public identifier");
            cur_.skip_space();
            decl.system_id = parse_quoted("system identifier");
        } else {
            SourceLocation where = cur_.location();
            std::string raw = parse_quoted("entity value");
            if (!decl.is_parameter)
                decl.value =
                    xml::decode_references(raw, dtd_.general_entities(), where);
            else
                decl.value = raw;
        }
        cur_.skip_space();
        // NDATA notation for unparsed external entities.
        if (cur_.consume("NDATA")) {
            cur_.skip_space();
            parse_name("notation name");
            cur_.skip_space();
        }
        if (!cur_.consume(">")) cur_.fail("expected '>' to close ENTITY declaration");
        dtd_.add_entity(std::move(decl));
    }

    void parse_notation_decl() {
        cur_.consume("<!NOTATION");
        require_space("after '<!NOTATION'");
        NotationDecl decl;
        decl.name = parse_name("notation name");
        require_space("after notation name");
        cur_.skip_space();
        if (cur_.consume("SYSTEM")) {
            cur_.skip_space();
            decl.system_id = parse_quoted("system identifier");
        } else if (cur_.consume("PUBLIC")) {
            cur_.skip_space();
            decl.public_id = parse_quoted("public identifier");
            cur_.skip_space();
            if (cur_.peek() == '"' || cur_.peek() == '\'')
                decl.system_id = parse_quoted("system identifier");
        } else {
            cur_.fail("expected SYSTEM or PUBLIC in NOTATION declaration");
        }
        cur_.skip_space();
        if (!cur_.consume(">"))
            cur_.fail("expected '>' to close NOTATION declaration");
        dtd_.add_notation(std::move(decl));
    }

    void parse_conditional_section() {
        cur_.consume("<![");
        cur_.skip_space();
        bool include;
        if (cur_.consume("INCLUDE")) include = true;
        else if (cur_.consume("IGNORE")) include = false;
        else cur_.fail("expected INCLUDE or IGNORE");
        cur_.skip_space();
        if (!cur_.consume("[")) cur_.fail("expected '[' in conditional section");

        std::size_t start = cur_.pos();
        int depth = 1;
        while (depth > 0) {
            if (cur_.at_end()) cur_.fail("unterminated conditional section");
            if (cur_.lookahead("<![")) {
                ++depth;
                cur_.consume("<![");
            } else if (cur_.lookahead("]]>")) {
                --depth;
                if (depth == 0) break;
                cur_.consume("]]>");
            } else {
                cur_.advance();
            }
        }
        std::string_view body = cur_.text().substr(start, cur_.pos() - start);
        cur_.consume("]]>");
        if (include) {
            DtdParser sub(body, dtd_);
            sub.run();
            sub.close();
        }
    }

    void parse_comment() {
        cur_.consume("<!--");
        while (!cur_.lookahead("-->")) {
            if (cur_.at_end()) cur_.fail("unterminated comment");
            cur_.advance();
        }
        cur_.consume("-->");
    }

    void parse_processing_instruction() {
        cur_.consume("<?");
        while (!cur_.lookahead("?>")) {
            if (cur_.at_end()) cur_.fail("unterminated processing instruction");
            cur_.advance();
        }
        cur_.consume("?>");
    }

    // -- lexical helpers -------------------------------------------------------

    void require_space(const std::string& context) {
        if (!is_xml_space(cur_.peek())) cur_.fail("expected white space " + context);
        cur_.skip_space();
    }

    std::string parse_name(const std::string& what) {
        std::string name = parse_nmtoken(what);
        if (!is_xml_name(name)) cur_.fail("invalid " + what + " '" + name + "'");
        return name;
    }

    std::string parse_nmtoken(const std::string& what) {
        std::string token;
        while (!cur_.at_end()) {
            char c = cur_.peek();
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
                c == '_' || c == ':')
                token += cur_.advance();
            else
                break;
        }
        if (token.empty()) cur_.fail("expected " + what);
        return token;
    }

    std::string parse_quoted(const std::string& what) {
        char quote = cur_.peek();
        if (quote != '"' && quote != '\'') cur_.fail("expected quoted " + what);
        cur_.advance();
        std::string value;
        while (!cur_.at_end() && cur_.peek() != quote) value += cur_.advance();
        if (cur_.at_end()) cur_.fail("unterminated " + what);
        cur_.advance();
        return value;
    }
};

}  // namespace

Dtd parse_dtd(std::string_view text, const DtdParseOptions& options) {
    PEMap pes = collect_parameter_entities(text);
    std::string expanded;
    std::string_view effective = text;
    if (!pes.empty()) {
        expanded = expand_parameter_entities(text, pes, options.max_expansion);
        effective = expanded;
    }
    Dtd dtd;
    DtdParser parser(effective, dtd);
    parser.run();
    parser.close();
    for (const auto& [name, value] : pes) {
        EntityDecl decl;
        decl.name = name;
        decl.is_parameter = true;
        decl.value = value;
        dtd.add_entity(std::move(decl));
    }
    return dtd;
}

Dtd parse_doctype(const xml::DoctypeDecl& doctype, const DtdParseOptions& options) {
    return parse_dtd(doctype.internal_subset, options);
}

}  // namespace xr::dtd
