#include "validate/validator.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.hpp"

namespace xr::validate {

std::string ValidationResult::to_string() const {
    std::string out;
    for (const auto& i : issues) {
        out += i.to_string();
        out += '\n';
    }
    return out;
}

Validator::Validator(const dtd::Dtd& dtd) : dtd_(dtd) {
    for (const auto& e : dtd.elements()) {
        if (e.content.category == dtd::ContentCategory::kChildren)
            automata_.emplace(e.name, ContentAutomaton(e.content.particle));
    }
}

namespace {

class Pass {
public:
    Pass(const dtd::Dtd& dtd,
         const std::map<std::string, ContentAutomaton, std::less<>>& automata,
         const ValidateOptions& options, ValidationResult& result)
        : dtd_(dtd), automata_(automata), options_(options), result_(result) {}

    void run(xml::Document& doc) {
        if (!doc.doctype().empty() && doc.root() != nullptr &&
            doc.doctype().root_name != doc.root()->name()) {
            add(doc.root()->location(),
                "root element '" + doc.root()->name() +
                    "' does not match DOCTYPE name '" + doc.doctype().root_name +
                    "'");
        }
        if (doc.root() != nullptr) visit_element(*doc.root());
        resolve_idrefs();
    }

private:
    const dtd::Dtd& dtd_;
    const std::map<std::string, ContentAutomaton, std::less<>>& automata_;
    const ValidateOptions& options_;
    ValidationResult& result_;

    std::map<std::string, SourceLocation> ids_;
    struct PendingRef {
        std::string token;
        SourceLocation where;
        std::string context;
    };
    std::vector<PendingRef> idrefs_;

    void add(SourceLocation where, std::string message) {
        if (result_.issues.size() < options_.max_issues)
            result_.issues.push_back({std::move(message), where});
    }

    void visit_element(xml::Element& e) {
        const dtd::ElementDecl* decl = dtd_.element(e.name());
        if (decl == nullptr) {
            if (options_.strict)
                add(e.location(), "undeclared element '" + e.name() + "'");
        } else {
            check_attributes(e, *decl);
            check_content(e, *decl);
        }
        for (const auto& child : e.children()) {
            if (child->is_element())
                visit_element(static_cast<xml::Element&>(*child));
        }
    }

    void check_attributes(xml::Element& e, const dtd::ElementDecl& decl) {
        for (const auto& attr : e.attributes()) {
            const dtd::AttributeDecl* ad = decl.attribute(attr.name);
            if (ad == nullptr) {
                if (options_.strict)
                    add(e.location(), "undeclared attribute '" + attr.name +
                                          "' on element '" + e.name() + "'");
                continue;
            }
            check_attribute_value(e, *ad, attr.value);
        }
        for (const auto& ad : decl.attributes) {
            if (e.has_attribute(ad.name)) continue;
            switch (ad.default_kind) {
                case dtd::AttrDefaultKind::kRequired:
                    add(e.location(), "missing required attribute '" + ad.name +
                                          "' on element '" + e.name() + "'");
                    break;
                case dtd::AttrDefaultKind::kFixed:
                case dtd::AttrDefaultKind::kDefault:
                    if (options_.apply_defaults)
                        e.set_attribute(ad.name, ad.default_value);
                    break;
                case dtd::AttrDefaultKind::kImplied:
                    break;
            }
        }
    }

    void check_attribute_value(const xml::Element& e, const dtd::AttributeDecl& ad,
                               const std::string& value) {
        using dtd::AttrType;
        const std::string normalized =
            ad.type == AttrType::kCData || ad.type == AttrType::kPCData
                ? value
                : normalize_space(value);
        switch (ad.type) {
            case AttrType::kId:
                if (!is_xml_name(normalized)) {
                    add(e.location(), "ID attribute '" + ad.name +
                                          "' has invalid name value '" + normalized +
                                          "'");
                } else if (auto [it, inserted] =
                               ids_.emplace(normalized, e.location());
                           !inserted) {
                    add(e.location(), "duplicate ID value '" + normalized +
                                          "' (first used at " +
                                          it->second.to_string() + ")");
                }
                break;
            case AttrType::kIdRef:
                idrefs_.push_back({normalized, e.location(),
                                   e.name() + "/@" + ad.name});
                break;
            case AttrType::kIdRefs:
                for (const auto& token : split_name_tokens(normalized))
                    idrefs_.push_back({token, e.location(),
                                       e.name() + "/@" + ad.name});
                break;
            case AttrType::kNmToken:
                if (normalized.empty() ||
                    normalized.find(' ') != std::string::npos)
                    add(e.location(), "attribute '" + ad.name +
                                          "' must be a single NMTOKEN");
                break;
            case AttrType::kNmTokens:
                if (split_name_tokens(normalized).empty())
                    add(e.location(), "attribute '" + ad.name +
                                          "' must contain at least one NMTOKEN");
                break;
            case AttrType::kEnumeration:
            case AttrType::kNotation:
                if (std::find(ad.enumeration.begin(), ad.enumeration.end(),
                              normalized) == ad.enumeration.end())
                    add(e.location(), "attribute '" + ad.name + "' value '" +
                                          normalized + "' not in enumeration");
                break;
            case AttrType::kEntity:
            case AttrType::kEntities:
            case AttrType::kCData:
            case AttrType::kPCData:
                break;
        }
        if (ad.default_kind == dtd::AttrDefaultKind::kFixed &&
            value != ad.default_value) {
            add(e.location(), "attribute '" + ad.name + "' must have #FIXED value '" +
                                  ad.default_value + "'");
        }
    }

    void check_content(const xml::Element& e, const dtd::ElementDecl& decl) {
        using dtd::ContentCategory;
        switch (decl.content.category) {
            case ContentCategory::kAny:
                return;
            case ContentCategory::kEmpty:
                for (const auto& c : e.children()) {
                    if (c->is_element() ||
                        (c->is_text() &&
                         !all_space(static_cast<const xml::Text&>(*c).content()))) {
                        add(e.location(),
                            "element '" + e.name() + "' is declared EMPTY");
                        return;
                    }
                }
                return;
            case ContentCategory::kPCData:
                for (const auto& c : e.children()) {
                    if (c->is_element()) {
                        add(e.location(), "element '" + e.name() +
                                              "' allows character data only");
                        return;
                    }
                }
                return;
            case ContentCategory::kMixed: {
                for (const auto& c : e.children()) {
                    if (!c->is_element()) continue;
                    const auto& child = static_cast<const xml::Element&>(*c);
                    if (std::find(decl.content.mixed_names.begin(),
                                  decl.content.mixed_names.end(),
                                  child.name()) == decl.content.mixed_names.end()) {
                        add(child.location(), "element '" + child.name() +
                                                  "' not allowed in mixed content of '" +
                                                  e.name() + "'");
                    }
                }
                return;
            }
            case ContentCategory::kChildren: {
                auto it = automata_.find(e.name());
                if (it == automata_.end()) return;
                ContentAutomaton::Run run(it->second);
                for (const auto& c : e.children()) {
                    if (c->is_text()) {
                        if (!all_space(static_cast<const xml::Text&>(*c).content()))
                            add(c->location(),
                                "character data not allowed in element content of '" +
                                    e.name() + "'");
                        continue;
                    }
                    if (!c->is_element()) continue;
                    const auto& child = static_cast<const xml::Element&>(*c);
                    if (!run.feed(child.name())) {
                        std::string expected = join(run.expected(), ", ");
                        add(child.location(),
                            "unexpected child '" + child.name() + "' in '" +
                                e.name() + "'" +
                                (expected.empty() ? "" : " (no match)"));
                        return;
                    }
                }
                if (!run.accepting()) {
                    add(e.location(),
                        "content of '" + e.name() + "' ends prematurely (expected: " +
                            join(run.expected(), ", ") + ")");
                }
                return;
            }
        }
    }

    void resolve_idrefs() {
        for (const auto& ref : idrefs_) {
            if (!ids_.contains(ref.token))
                add(ref.where, "IDREF '" + ref.token + "' (" + ref.context +
                                   ") does not match any ID in the document");
        }
    }

    static bool all_space(std::string_view s) {
        return std::all_of(s.begin(), s.end(),
                           [](char c) { return is_xml_space(c); });
    }
};

}  // namespace

ValidationResult Validator::validate(xml::Document& doc,
                                     const ValidateOptions& options) const {
    ValidationResult result;
    Pass pass(dtd_, automata_, options, result);
    pass.run(doc);
    return result;
}

void Validator::check(xml::Document& doc, const ValidateOptions& options) const {
    ValidationResult result = validate(doc, options);
    if (!result.ok())
        throw ValidationError(result.issues.front().message,
                              result.issues.front().where);
}

ValidationResult validate(xml::Document& doc, const dtd::Dtd& dtd,
                          const ValidateOptions& options) {
    return Validator(dtd).validate(doc, options);
}

void check_valid(xml::Document& doc, const dtd::Dtd& dtd,
                 const ValidateOptions& options) {
    Validator(dtd).check(doc, options);
}

}  // namespace xr::validate
