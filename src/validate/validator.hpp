// Validates a DOM document against a DTD.
//
// Checks, per XML 1.0 validity constraints relevant to data management:
//   * the root element matches the DOCTYPE name (when present);
//   * every element is declared, and its children match the declared
//     content model (EMPTY / ANY / (#PCDATA) / mixed / element content);
//   * attributes are declared, required ones are present, enumerated and
//     tokenized types hold well-formed values;
//   * ID values are unique document-wide, and every IDREF/IDREFS token
//     resolves to some ID (paper Section 3, Element Referencing).
//
// The validator reports all issues rather than stopping at the first — the
// loader uses it as a gate, the tests as an oracle.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "dtd/dtd.hpp"
#include "validate/automaton.hpp"
#include "xml/dom.hpp"

namespace xr::validate {

struct ValidationIssue {
    std::string message;
    SourceLocation where;

    [[nodiscard]] std::string to_string() const {
        return where.valid() ? where.to_string() + ": " + message : message;
    }
};

struct ValidationResult {
    std::vector<ValidationIssue> issues;

    [[nodiscard]] bool ok() const { return issues.empty(); }
    [[nodiscard]] std::string to_string() const;
};

struct ValidateOptions {
    /// Inject declared default / #FIXED attribute values into elements that
    /// omit them (mutates the document) — the loader relies on this so
    /// defaults reach the database.
    bool apply_defaults = false;
    /// Treat undeclared elements/attributes as errors (XML validity) or
    /// skip them silently (lenient mode for document-centric inputs).
    bool strict = true;
    /// Stop after this many issues.
    std::size_t max_issues = 256;
};

/// Pre-compiled validator: content-model automata are built once per DTD
/// and reused across documents (the loader validates whole corpora).
class Validator {
public:
    explicit Validator(const dtd::Dtd& dtd);

    [[nodiscard]] ValidationResult validate(
        xml::Document& doc, const ValidateOptions& options = {}) const;

    /// Throws xr::ValidationError with the first issue if invalid.
    void check(xml::Document& doc, const ValidateOptions& options = {}) const;

private:
    const dtd::Dtd& dtd_;
    std::map<std::string, ContentAutomaton, std::less<>> automata_;
};

/// One-shot convenience wrappers.
[[nodiscard]] ValidationResult validate(xml::Document& doc, const dtd::Dtd& dtd,
                                        const ValidateOptions& options = {});
void check_valid(xml::Document& doc, const dtd::Dtd& dtd,
                 const ValidateOptions& options = {});

}  // namespace xr::validate
