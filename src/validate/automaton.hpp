// Glushkov automaton over DTD content models.
//
// A 'children' content model is a regular expression over element names;
// validation of an element's child sequence is a regular-language
// membership test.  The Glushkov construction yields one NFA state per
// element occurrence in the model (positions), with no epsilon
// transitions, which keeps simulation simple and fast.  XML 1.0 requires
// deterministic content models; `deterministic()` reports whether the model
// satisfies that rule (we validate nondeterministic ones correctly anyway
// via set simulation).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "dtd/content_model.hpp"

namespace xr::validate {

class ContentAutomaton {
public:
    /// Build from a content-model particle tree.
    explicit ContentAutomaton(const dtd::Particle& particle);

    /// True iff `names` (the child-element sequence) matches the model.
    [[nodiscard]] bool matches(const std::vector<std::string>& names) const;

    /// Incremental interface: a Run consumes one child name at a time, so
    /// the validator can report the exact child where matching fails.
    class Run {
    public:
        explicit Run(const ContentAutomaton& automaton);
        /// Feed one child element name; false = the sequence is already
        /// invalid at this child.
        bool feed(std::string_view name);
        /// True iff the consumed sequence is a complete match.
        [[nodiscard]] bool accepting() const;
        /// Names that would be accepted next (for error messages).
        [[nodiscard]] std::vector<std::string> expected() const;

    private:
        const ContentAutomaton& automaton_;
        std::set<std::uint32_t> states_;
    };

    /// True iff the model satisfies XML 1.0's determinism constraint (no
    /// state has two successors labelled with the same element name).
    [[nodiscard]] bool deterministic() const;

    [[nodiscard]] std::size_t position_count() const { return positions_.size(); }

private:
    friend class Run;

    // Position 0 is the synthetic start state; positions 1..n correspond to
    // element occurrences in the model.
    std::vector<std::string> positions_;  ///< label per position (index 0 unused)
    bool nullable_ = false;
    std::vector<std::set<std::uint32_t>> follow_;  ///< successor positions
    std::set<std::uint32_t> last_;                 ///< accepting positions
};

}  // namespace xr::validate
