#include "validate/automaton.hpp"

#include <algorithm>

namespace xr::validate {

namespace {

/// first/last/nullable/follow computation for one particle subtree.
struct GlushkovBuilder {
    std::vector<std::string>& positions;
    std::vector<std::set<std::uint32_t>>& follow;

    struct Info {
        bool nullable = false;
        std::set<std::uint32_t> first;
        std::set<std::uint32_t> last;
    };

    Info build(const dtd::Particle& p) {
        Info info = build_base(p);
        switch (p.occurrence) {
            case dtd::Occurrence::kOne:
                break;
            case dtd::Occurrence::kOptional:
                info.nullable = true;
                break;
            case dtd::Occurrence::kZeroOrMore:
                info.nullable = true;
                link(info.last, info.first);
                break;
            case dtd::Occurrence::kOneOrMore:
                link(info.last, info.first);
                break;
        }
        return info;
    }

    Info build_base(const dtd::Particle& p) {
        Info info;
        switch (p.kind) {
            case dtd::ParticleKind::kElement: {
                auto pos = static_cast<std::uint32_t>(positions.size());
                positions.push_back(p.name);
                follow.emplace_back();
                info.nullable = false;
                info.first = {pos};
                info.last = {pos};
                return info;
            }
            case dtd::ParticleKind::kSequence: {
                info.nullable = true;
                bool first_fixed = false;
                std::set<std::uint32_t> carry_last;
                for (const auto& child : p.children) {
                    Info ci = build(child);
                    link(carry_last, ci.first);
                    if (!first_fixed) {
                        info.first.insert(ci.first.begin(), ci.first.end());
                        if (!ci.nullable) first_fixed = true;
                    }
                    if (ci.nullable) {
                        carry_last.insert(ci.last.begin(), ci.last.end());
                    } else {
                        carry_last = ci.last;
                    }
                    info.nullable = info.nullable && ci.nullable;
                }
                info.last = carry_last;
                return info;
            }
            case dtd::ParticleKind::kChoice: {
                info.nullable = false;
                for (const auto& child : p.children) {
                    Info ci = build(child);
                    info.nullable = info.nullable || ci.nullable;
                    info.first.insert(ci.first.begin(), ci.first.end());
                    info.last.insert(ci.last.begin(), ci.last.end());
                }
                return info;
            }
        }
        return info;
    }

    void link(const std::set<std::uint32_t>& from,
              const std::set<std::uint32_t>& to) {
        for (auto f : from) follow[f].insert(to.begin(), to.end());
    }
};

}  // namespace

ContentAutomaton::ContentAutomaton(const dtd::Particle& particle) {
    positions_.emplace_back();  // position 0: synthetic start
    follow_.emplace_back();
    GlushkovBuilder builder{positions_, follow_};
    auto info = builder.build(particle);
    nullable_ = info.nullable;
    follow_[0] = info.first;
    last_ = info.last;
}

bool ContentAutomaton::matches(const std::vector<std::string>& names) const {
    Run run(*this);
    for (const auto& n : names)
        if (!run.feed(n)) return false;
    return run.accepting();
}

ContentAutomaton::Run::Run(const ContentAutomaton& automaton)
    : automaton_(automaton), states_{0} {}

bool ContentAutomaton::Run::feed(std::string_view name) {
    std::set<std::uint32_t> next;
    for (auto s : states_) {
        for (auto t : automaton_.follow_[s]) {
            if (automaton_.positions_[t] == name) next.insert(t);
        }
    }
    states_ = std::move(next);
    return !states_.empty();
}

bool ContentAutomaton::Run::accepting() const {
    for (auto s : states_) {
        if (s == 0 ? automaton_.nullable_ : automaton_.last_.contains(s))
            return true;
    }
    return false;
}

std::vector<std::string> ContentAutomaton::Run::expected() const {
    std::set<std::string> names;
    for (auto s : states_)
        for (auto t : automaton_.follow_[s]) names.insert(automaton_.positions_[t]);
    return {names.begin(), names.end()};
}

bool ContentAutomaton::deterministic() const {
    for (const auto& successors : follow_) {
        std::set<std::string_view> seen;
        for (auto t : successors) {
            if (!seen.insert(positions_[t]).second) return false;
        }
    }
    return true;
}

}  // namespace xr::validate
