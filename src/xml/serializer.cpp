#include "xml/serializer.hpp"

#include "common/strings.hpp"

namespace xr::xml {

namespace {

class Serializer {
public:
    explicit Serializer(const SerializeOptions& options) : options_(options) {}

    std::string take() { return std::move(out_); }

    void write_document(const Document& doc) {
        if (options_.declaration) {
            out_ += "<?xml version=\"" + doc.xml_version() + "\"";
            if (!doc.encoding().empty())
                out_ += " encoding=\"" + doc.encoding() + "\"";
            out_ += "?>";
            newline();
        }
        if (options_.doctype && !doc.doctype().empty()) {
            const DoctypeDecl& d = doc.doctype();
            out_ += "<!DOCTYPE " + d.root_name;
            if (!d.public_id.empty())
                out_ += " PUBLIC \"" + d.public_id + "\" \"" + d.system_id + "\"";
            else if (!d.system_id.empty())
                out_ += " SYSTEM \"" + d.system_id + "\"";
            if (!d.internal_subset.empty())
                out_ += " [" + d.internal_subset + "]";
            out_ += ">";
            newline();
        }
        for (const auto& n : doc.prolog()) {
            write_node(*n, 0);
            newline();
        }
        if (doc.root() != nullptr) write_node(*doc.root(), 0);
        newline();
    }

    void write_node(const Node& node, std::size_t depth) {
        switch (node.kind()) {
            case NodeKind::kElement:
                write_element(static_cast<const Element&>(node), depth);
                break;
            case NodeKind::kText:
                out_ += xml_escape_text(static_cast<const Text&>(node).content());
                break;
            case NodeKind::kCData:
                out_ += "<![CDATA[" + static_cast<const Text&>(node).content() + "]]>";
                break;
            case NodeKind::kComment:
                out_ += "<!--" + static_cast<const Comment&>(node).content() + "-->";
                break;
            case NodeKind::kProcessingInstruction: {
                const auto& pi = static_cast<const ProcessingInstruction&>(node);
                out_ += "<?" + pi.target();
                if (!pi.data().empty()) out_ += " " + pi.data();
                out_ += "?>";
                break;
            }
        }
    }

private:
    const SerializeOptions& options_;
    std::string out_;

    void newline() {
        if (!options_.indent.empty()) out_ += '\n';
    }

    void indent(std::size_t depth) {
        if (options_.indent.empty()) return;
        for (std::size_t i = 0; i < depth; ++i) out_ += options_.indent;
    }

    void write_element(const Element& e, std::size_t depth) {
        out_ += "<" + e.name();
        for (const auto& a : e.attributes())
            out_ += " " + a.name + "=\"" + xml_escape_attribute(a.value) + "\"";

        if (e.children().empty()) {
            out_ += "/>";
            return;
        }
        out_ += ">";

        // Mixed or text-only content is written inline to preserve data;
        // element-only content is pretty-printed.
        bool has_text = false;
        for (const auto& c : e.children())
            if (c->is_text()) has_text = true;

        if (has_text || options_.indent.empty()) {
            for (const auto& c : e.children()) write_node(*c, depth + 1);
        } else {
            for (const auto& c : e.children()) {
                newline();
                indent(depth + 1);
                write_node(*c, depth + 1);
            }
            newline();
            indent(depth);
        }
        out_ += "</" + e.name() + ">";
    }
};

}  // namespace

std::string serialize(const Document& doc, const SerializeOptions& options) {
    Serializer s(options);
    s.write_document(doc);
    return s.take();
}

std::string serialize(const Node& node, const SerializeOptions& options) {
    Serializer s(options);
    s.write_node(node, 0);
    return s.take();
}

}  // namespace xr::xml
