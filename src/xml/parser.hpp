// XML 1.0 parser (the subset relevant to data management).
//
// Two entry points are provided:
//   * parse(text, handler, options)  — SAX-style event stream, allocation
//     free apart from attribute buffers; used by streaming consumers.
//   * parse_document(text, options)  — builds a DOM Document on top of the
//     event stream; used by the validator and the data loader.
//
// Supported syntax: XML declaration, DOCTYPE (with the internal subset
// captured verbatim for the DTD parser), elements, attributes, character
// data, CDATA sections, comments, processing instructions, character
// references (decimal and hex), the five predefined entities, and general
// entities supplied via ParseOptions::entities (typically harvested from
// the DTD).  Well-formedness violations raise xr::ParseError.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.hpp"

namespace xr::xml {

struct ParseOptions {
    /// Retain comment nodes in the DOM / report them as events.
    bool keep_comments = true;
    /// Retain processing instructions.
    bool keep_processing_instructions = true;
    /// Retain text nodes consisting solely of white space.  Data-centric
    /// loading does not want indentation noise, so the default drops them.
    bool keep_whitespace_text = false;
    /// Replacement text for general entities beyond the predefined five.
    std::map<std::string, std::string, std::less<>> entities;
    /// Guard against pathological nesting.
    std::size_t max_depth = 2048;
    /// Guard against entity-expansion blowups (billion-laughs).
    std::size_t max_entity_expansion = 1u << 20;
    /// Guard against start tags carrying absurd numbers of attributes.
    std::size_t max_attributes = 4096;
    /// Guard against elements with absurd fan-out (child elements per
    /// parent); wide documents otherwise exhaust memory before depth or
    /// entity guards ever trigger.
    std::size_t max_children = 1u << 20;
};

/// Receiver of parse events, in document order.
class EventHandler {
public:
    virtual ~EventHandler() = default;

    virtual void on_start_document() {}
    virtual void on_end_document() {}
    virtual void on_xml_declaration(std::string_view /*version*/,
                                    std::string_view /*encoding*/) {}
    virtual void on_doctype(const DoctypeDecl& /*doctype*/) {}
    /// Attributes are passed by value: the parser is done with the vector,
    /// so a DOM-building handler can adopt it without copying.  Names are
    /// guaranteed unique (duplicates fail well-formedness).
    virtual void on_start_element(std::string_view /*name*/,
                                  std::vector<Attribute> /*attributes*/,
                                  SourceLocation /*where*/) {}
    virtual void on_end_element(std::string_view /*name*/) {}
    virtual void on_text(std::string_view /*content*/, bool /*cdata*/,
                         SourceLocation /*where*/) {}
    virtual void on_comment(std::string_view /*content*/) {}
    virtual void on_processing_instruction(std::string_view /*target*/,
                                           std::string_view /*data*/) {}
};

/// Stream `text` through `handler`.  Throws xr::ParseError on malformed
/// input; the document is checked for well-formedness as it streams.
void parse(std::string_view text, EventHandler& handler,
           const ParseOptions& options = {});

/// Parse `text` into a DOM document.
[[nodiscard]] std::unique_ptr<Document> parse_document(
    std::string_view text, const ParseOptions& options = {});

/// Decode character and entity references in `raw` (attribute value or
/// character data).  Exposed for the DTD parser, which shares the syntax.
[[nodiscard]] std::string decode_references(
    std::string_view raw,
    const std::map<std::string, std::string, std::less<>>& entities,
    SourceLocation where, std::size_t max_expansion = 1u << 20);

}  // namespace xr::xml
