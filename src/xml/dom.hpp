// Document Object Model for parsed XML.
//
// The paper's data-loading design (Section 5) traverses "the DOM tree to
// download data items into relational tables"; this module provides that
// tree.  Ownership is strictly hierarchical: a Document owns its root
// element, every Element owns its children via unique_ptr.  Non-owning
// navigation uses raw pointers, which never outlive the Document.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace xr::xml {

enum class NodeKind {
    kElement,
    kText,
    kCData,
    kComment,
    kProcessingInstruction,
};

[[nodiscard]] std::string_view to_string(NodeKind kind);

class Element;

/// Base of the DOM node hierarchy.
class Node {
public:
    explicit Node(NodeKind kind) : kind_(kind) {}
    virtual ~Node() = default;

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    [[nodiscard]] NodeKind kind() const { return kind_; }
    [[nodiscard]] bool is_element() const { return kind_ == NodeKind::kElement; }
    [[nodiscard]] bool is_text() const {
        return kind_ == NodeKind::kText || kind_ == NodeKind::kCData;
    }

    [[nodiscard]] Element* parent() const { return parent_; }
    [[nodiscard]] const SourceLocation& location() const { return location_; }
    void set_location(SourceLocation loc) { location_ = loc; }

private:
    friend class Element;
    friend class Document;
    NodeKind kind_;
    Element* parent_ = nullptr;
    SourceLocation location_;
};

/// Character data (kText) or a CDATA section (kCData).
class Text : public Node {
public:
    explicit Text(std::string content, bool cdata = false)
        : Node(cdata ? NodeKind::kCData : NodeKind::kText),
          content_(std::move(content)) {}

    [[nodiscard]] const std::string& content() const { return content_; }
    void set_content(std::string content) { content_ = std::move(content); }

private:
    std::string content_;
};

class Comment : public Node {
public:
    explicit Comment(std::string content)
        : Node(NodeKind::kComment), content_(std::move(content)) {}
    [[nodiscard]] const std::string& content() const { return content_; }

private:
    std::string content_;
};

class ProcessingInstruction : public Node {
public:
    ProcessingInstruction(std::string target, std::string data)
        : Node(NodeKind::kProcessingInstruction),
          target_(std::move(target)),
          data_(std::move(data)) {}
    [[nodiscard]] const std::string& target() const { return target_; }
    [[nodiscard]] const std::string& data() const { return data_; }

private:
    std::string target_;
    std::string data_;
};

/// A name="value" attribute.  Attribute order is preserved as written,
/// although XML assigns it no meaning (paper Section 3, Ordering).
struct Attribute {
    std::string name;
    std::string value;

    friend bool operator==(const Attribute&, const Attribute&) = default;
};

class Element : public Node {
public:
    explicit Element(std::string name)
        : Node(NodeKind::kElement), name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const { return name_; }

    // -- attributes ---------------------------------------------------------
    [[nodiscard]] const std::vector<Attribute>& attributes() const { return attrs_; }
    /// Value of the named attribute, or nullptr if absent.
    [[nodiscard]] const std::string* attribute(std::string_view name) const;
    [[nodiscard]] bool has_attribute(std::string_view name) const {
        return attribute(name) != nullptr;
    }
    /// Sets (or overwrites) an attribute.
    void set_attribute(std::string name, std::string value);
    bool remove_attribute(std::string_view name);
    /// Replace all attributes at once.  The caller vouches for name
    /// uniqueness (the parser enforces it while scanning); this skips the
    /// per-attribute duplicate scan and copies of set_attribute.
    void adopt_attributes(std::vector<Attribute> attrs) {
        attrs_ = std::move(attrs);
    }
    /// Pre-size the attribute vector (parser reserve-ahead).
    void reserve_attributes(std::size_t n) { attrs_.reserve(n); }

    // -- children -----------------------------------------------------------
    [[nodiscard]] const std::vector<std::unique_ptr<Node>>& children() const {
        return children_;
    }
    /// Pre-size the child vector when the count (or a good hint) is known
    /// up front — document generators and the parser's fanout hint use
    /// this to avoid reallocation churn on wide elements.
    void reserve_children(std::size_t n) { children_.reserve(n); }
    Node* append_child(std::unique_ptr<Node> child);
    Element* append_element(std::string name);
    Text* append_text(std::string content);
    /// Detach and return all children (used when splicing parsed fragments).
    [[nodiscard]] std::vector<std::unique_ptr<Node>> take_children();

    /// Child elements only, in document order.
    [[nodiscard]] std::vector<Element*> child_elements() const;
    /// Child elements with the given tag name, in document order.
    [[nodiscard]] std::vector<Element*> child_elements(std::string_view name) const;
    /// First child element with the given name, or nullptr.
    [[nodiscard]] Element* first_child(std::string_view name) const;

    /// Concatenated character data of direct Text/CData children.
    [[nodiscard]] std::string text() const;
    /// Concatenated character data of the whole subtree, document order.
    [[nodiscard]] std::string deep_text() const;

    /// Number of nodes in this subtree (including this element).
    [[nodiscard]] std::size_t subtree_size() const;
    /// Number of element nodes in this subtree (including this element).
    [[nodiscard]] std::size_t subtree_element_count() const;

private:
    std::string name_;
    std::vector<Attribute> attrs_;
    std::vector<std::unique_ptr<Node>> children_;
};

/// The DOCTYPE declaration of a document, as written.
struct DoctypeDecl {
    std::string root_name;
    std::string system_id;         ///< from SYSTEM/PUBLIC, if any
    std::string public_id;         ///< from PUBLIC, if any
    std::string internal_subset;   ///< raw text between '[' and ']', if any

    [[nodiscard]] bool empty() const {
        return root_name.empty() && internal_subset.empty();
    }
};

/// A parsed XML document: prolog, optional DOCTYPE, one root element.
class Document {
public:
    Document() = default;

    [[nodiscard]] Element* root() const { return root_.get(); }
    Element* set_root(std::unique_ptr<Element> root);
    Element* make_root(std::string name);

    [[nodiscard]] const DoctypeDecl& doctype() const { return doctype_; }
    void set_doctype(DoctypeDecl d) { doctype_ = std::move(d); }

    [[nodiscard]] const std::string& xml_version() const { return version_; }
    [[nodiscard]] const std::string& encoding() const { return encoding_; }
    void set_declaration(std::string version, std::string encoding) {
        version_ = std::move(version);
        encoding_ = std::move(encoding);
    }

    /// Comments / PIs appearing before the root element.
    [[nodiscard]] const std::vector<std::unique_ptr<Node>>& prolog() const {
        return prolog_;
    }
    void append_prolog(std::unique_ptr<Node> node) {
        prolog_.push_back(std::move(node));
    }

    [[nodiscard]] std::size_t size() const {
        return root_ ? root_->subtree_size() : 0;
    }

private:
    std::string version_ = "1.0";
    std::string encoding_;
    DoctypeDecl doctype_;
    std::vector<std::unique_ptr<Node>> prolog_;
    std::unique_ptr<Element> root_;
};

/// Depth-first pre-order visit of a subtree; `fn` is called for every node.
void visit(const Node& node, const std::function<void(const Node&)>& fn);

}  // namespace xr::xml
