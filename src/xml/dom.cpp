#include "xml/dom.hpp"

#include <utility>

namespace xr::xml {

std::string_view to_string(NodeKind kind) {
    switch (kind) {
        case NodeKind::kElement: return "element";
        case NodeKind::kText: return "text";
        case NodeKind::kCData: return "cdata";
        case NodeKind::kComment: return "comment";
        case NodeKind::kProcessingInstruction: return "pi";
    }
    return "?";
}

const std::string* Element::attribute(std::string_view name) const {
    for (const auto& a : attrs_)
        if (a.name == name) return &a.value;
    return nullptr;
}

void Element::set_attribute(std::string name, std::string value) {
    for (auto& a : attrs_) {
        if (a.name == name) {
            a.value = std::move(value);
            return;
        }
    }
    attrs_.push_back({std::move(name), std::move(value)});
}

bool Element::remove_attribute(std::string_view name) {
    for (auto it = attrs_.begin(); it != attrs_.end(); ++it) {
        if (it->name == name) {
            attrs_.erase(it);
            return true;
        }
    }
    return false;
}

Node* Element::append_child(std::unique_ptr<Node> child) {
    child->parent_ = this;
    children_.push_back(std::move(child));
    return children_.back().get();
}

Element* Element::append_element(std::string name) {
    return static_cast<Element*>(
        append_child(std::make_unique<Element>(std::move(name))));
}

Text* Element::append_text(std::string content) {
    return static_cast<Text*>(
        append_child(std::make_unique<Text>(std::move(content))));
}

std::vector<std::unique_ptr<Node>> Element::take_children() {
    for (auto& c : children_) c->parent_ = nullptr;
    return std::exchange(children_, {});
}

std::vector<Element*> Element::child_elements() const {
    std::vector<Element*> out;
    for (const auto& c : children_)
        if (c->is_element()) out.push_back(static_cast<Element*>(c.get()));
    return out;
}

std::vector<Element*> Element::child_elements(std::string_view name) const {
    std::vector<Element*> out;
    for (const auto& c : children_) {
        if (!c->is_element()) continue;
        auto* e = static_cast<Element*>(c.get());
        if (e->name() == name) out.push_back(e);
    }
    return out;
}

Element* Element::first_child(std::string_view name) const {
    for (const auto& c : children_) {
        if (!c->is_element()) continue;
        auto* e = static_cast<Element*>(c.get());
        if (e->name() == name) return e;
    }
    return nullptr;
}

std::string Element::text() const {
    std::size_t total = 0;
    for (const auto& c : children_)
        if (c->is_text()) total += static_cast<const Text*>(c.get())->content().size();
    std::string out;
    out.reserve(total);
    for (const auto& c : children_)
        if (c->is_text()) out += static_cast<const Text*>(c.get())->content();
    return out;
}

std::string Element::deep_text() const {
    std::string out;
    visit(*this, [&](const Node& n) {
        if (n.is_text()) out += static_cast<const Text&>(n).content();
    });
    return out;
}

std::size_t Element::subtree_size() const {
    std::size_t count = 0;
    visit(*this, [&](const Node&) { ++count; });
    return count;
}

std::size_t Element::subtree_element_count() const {
    std::size_t count = 0;
    visit(*this, [&](const Node& n) {
        if (n.is_element()) ++count;
    });
    return count;
}

Element* Document::set_root(std::unique_ptr<Element> root) {
    root_ = std::move(root);
    return root_.get();
}

Element* Document::make_root(std::string name) {
    root_ = std::make_unique<Element>(std::move(name));
    return root_.get();
}

void visit(const Node& node, const std::function<void(const Node&)>& fn) {
    fn(node);
    if (node.is_element()) {
        for (const auto& c : static_cast<const Element&>(node).children())
            visit(*c, fn);
    }
}

}  // namespace xr::xml
