#include "xml/parser.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "common/cursor.hpp"
#include "common/fault.hpp"

namespace xr::xml {

namespace {

bool all_space(std::string_view s) {
    return std::all_of(s.begin(), s.end(), [](char c) { return is_xml_space(c); });
}

/// Recursive-descent XML parser emitting events.
class Parser {
public:
    Parser(std::string_view text, EventHandler& handler, const ParseOptions& options)
        : cur_(text), handler_(handler), options_(options) {}

    void run() {
        handler_.on_start_document();
        parse_prolog();
        parse_element();
        parse_misc_trailer();
        if (!cur_.at_end()) cur_.fail("content after root element");
        handler_.on_end_document();
    }

private:
    Cursor cur_;
    EventHandler& handler_;
    const ParseOptions& options_;
    std::size_t depth_ = 0;

    // -- prolog --------------------------------------------------------------

    void parse_prolog() {
        if (cur_.lookahead("<?xml")) parse_xml_declaration();
        for (;;) {
            cur_.skip_space();
            if (cur_.lookahead("<!--")) {
                parse_comment();
            } else if (cur_.lookahead("<!DOCTYPE")) {
                parse_doctype();
            } else if (cur_.lookahead("<?")) {
                parse_processing_instruction();
            } else {
                return;
            }
        }
    }

    void parse_xml_declaration() {
        cur_.consume("<?xml");
        std::string version = "1.0";
        std::string encoding;
        cur_.skip_space();
        while (!cur_.lookahead("?>")) {
            std::string name = parse_name("declaration attribute");
            cur_.skip_space();
            if (!cur_.consume("=")) cur_.fail("expected '=' in XML declaration");
            cur_.skip_space();
            std::string value = parse_quoted("declaration value");
            if (name == "version") version = value;
            else if (name == "encoding") encoding = value;
            else if (name != "standalone")
                cur_.fail("unknown XML declaration attribute '" + name + "'");
            cur_.skip_space();
        }
        cur_.consume("?>");
        handler_.on_xml_declaration(version, encoding);
    }

    void parse_doctype() {
        cur_.consume("<!DOCTYPE");
        cur_.skip_space();
        DoctypeDecl d;
        d.root_name = parse_name("DOCTYPE name");
        cur_.skip_space();
        if (cur_.consume("SYSTEM")) {
            cur_.skip_space();
            d.system_id = parse_quoted("system identifier");
        } else if (cur_.consume("PUBLIC")) {
            cur_.skip_space();
            d.public_id = parse_quoted("public identifier");
            cur_.skip_space();
            d.system_id = parse_quoted("system identifier");
        }
        cur_.skip_space();
        if (cur_.consume("[")) {
            // Capture the internal subset verbatim; the DTD module parses it.
            std::size_t start = cur_.pos();
            int quote = 0;  // 0 = none, otherwise the quote char
            while (!cur_.at_end()) {
                char c = cur_.peek();
                if (quote != 0) {
                    if (c == quote) quote = 0;
                } else if (c == '"' || c == '\'') {
                    quote = c;
                } else if (c == ']') {
                    break;
                }
                cur_.advance();
            }
            d.internal_subset = std::string(
                cur_.text().substr(start, cur_.pos() - start));
            if (!cur_.consume("]")) cur_.fail("unterminated DOCTYPE internal subset");
            cur_.skip_space();
        }
        if (!cur_.consume(">")) cur_.fail("expected '>' to close DOCTYPE");
        handler_.on_doctype(d);
    }

    void parse_misc_trailer() {
        for (;;) {
            cur_.skip_space();
            if (cur_.lookahead("<!--")) parse_comment();
            else if (cur_.lookahead("<?")) parse_processing_instruction();
            else return;
        }
    }

    // -- element content ------------------------------------------------------

    void parse_element() {
        SourceLocation start = cur_.location();
        if (!cur_.consume("<")) cur_.fail("expected element");
        if (++depth_ > options_.max_depth) cur_.fail("maximum element depth exceeded");

        std::string name = parse_name("element name");
        std::vector<Attribute> attrs = parse_attributes();

        cur_.skip_space();
        if (cur_.consume("/>")) {
            handler_.on_start_element(name, std::move(attrs), start);
            handler_.on_end_element(name);
            --depth_;
            return;
        }
        if (!cur_.consume(">")) cur_.fail("expected '>' or '/>' in start tag");
        handler_.on_start_element(name, std::move(attrs), start);

        parse_content();

        // End tag.
        if (!cur_.consume("</")) cur_.fail("expected end tag for <" + name + ">");
        std::string end_name = parse_name("end tag name");
        if (end_name != name) {
            cur_.fail("mismatched end tag </" + end_name + "> (expected </" + name +
                      ">)");
        }
        cur_.skip_space();
        if (!cur_.consume(">")) cur_.fail("expected '>' to close end tag");
        handler_.on_end_element(name);
        --depth_;
    }

    /// First-pass count hint: number of '=' signs outside quotes between
    /// here and the end of the start tag — one per attribute, so the
    /// vector is sized in a single allocation even for wide tags.
    std::size_t count_attributes_ahead() const {
        std::string_view rest = cur_.text().substr(cur_.pos());
        std::size_t n = 0;
        char quote = 0;
        for (char c : rest) {
            if (quote != 0) {
                if (c == quote) quote = 0;
            } else if (c == '"' || c == '\'') {
                quote = c;
            } else if (c == '=') {
                ++n;
            } else if (c == '>') {
                break;
            }
        }
        return n;
    }

    std::vector<Attribute> parse_attributes() {
        std::vector<Attribute> attrs;
        if (std::size_t hint = count_attributes_ahead(); hint > 0)
            attrs.reserve(hint);
        for (;;) {
            // Attributes must be separated from the name and each other by space.
            bool had_space = is_xml_space(cur_.peek());
            cur_.skip_space();
            char c = cur_.peek();
            if (c == '>' || c == '/' || c == '?' || c == '\0') return attrs;
            if (!had_space) cur_.fail("expected white space before attribute");
            SourceLocation where = cur_.location();
            std::string name = parse_name("attribute name");
            cur_.skip_space();
            if (!cur_.consume("=")) cur_.fail("expected '=' after attribute name");
            cur_.skip_space();
            std::string raw = parse_quoted("attribute value");
            if (raw.find('<') != std::string::npos)
                throw ParseError("'<' not allowed in attribute value", where);
            std::string value = decode_references(raw, options_.entities, where,
                                                  options_.max_entity_expansion);
            for (const auto& a : attrs) {
                if (a.name == name)
                    throw ParseError("duplicate attribute '" + name + "'", where);
            }
            attrs.push_back({std::move(name), std::move(value)});
            if (attrs.size() > options_.max_attributes)
                cur_.fail("maximum attribute count exceeded (" +
                          std::to_string(options_.max_attributes) + ")");
        }
    }

    void parse_content() {
        std::string text;
        std::size_t children = 0;
        SourceLocation text_start = cur_.location();

        auto flush_text = [&] {
            if (text.empty()) return;
            if (options_.keep_whitespace_text || !all_space(text))
                handler_.on_text(text, /*cdata=*/false, text_start);
            text.clear();
        };

        for (;;) {
            if (cur_.at_end()) cur_.fail("unexpected end of input inside element");
            if (cur_.lookahead("</")) {
                flush_text();
                return;
            }
            if (cur_.lookahead("<!--")) {
                flush_text();
                parse_comment();
                text_start = cur_.location();
            } else if (cur_.lookahead("<![CDATA[")) {
                flush_text();
                parse_cdata();
                text_start = cur_.location();
            } else if (cur_.lookahead("<?")) {
                flush_text();
                parse_processing_instruction();
                text_start = cur_.location();
            } else if (cur_.peek() == '<') {
                flush_text();
                if (++children > options_.max_children)
                    cur_.fail("maximum child-element count exceeded (" +
                              std::to_string(options_.max_children) + ")");
                parse_element();
                text_start = cur_.location();
            } else {
                if (text.empty()) text_start = cur_.location();
                parse_character_data(text);
            }
        }
    }

    void parse_character_data(std::string& out) {
        while (!cur_.at_end() && cur_.peek() != '<') {
            if (cur_.peek() == '&') {
                SourceLocation where = cur_.location();
                std::string ref = read_reference();
                out += decode_references(ref, options_.entities, where,
                                         options_.max_entity_expansion);
            } else if (cur_.lookahead("]]>")) {
                cur_.fail("']]>' not allowed in character data");
            } else {
                out += cur_.advance();
            }
        }
    }

    /// Reads "&...;" verbatim (including delimiters).
    std::string read_reference() {
        std::string ref;
        ref += cur_.advance();  // '&'
        while (!cur_.at_end() && cur_.peek() != ';') {
            if (cur_.peek() == '<' || is_xml_space(cur_.peek()))
                cur_.fail("unterminated entity reference");
            ref += cur_.advance();
        }
        if (!cur_.consume(";")) cur_.fail("unterminated entity reference");
        ref += ';';
        return ref;
    }

    void parse_comment() {
        cur_.consume("<!--");
        std::size_t start = cur_.pos();
        while (!cur_.lookahead("-->")) {
            if (cur_.at_end()) cur_.fail("unterminated comment");
            if (cur_.lookahead("--") && !cur_.lookahead("-->"))
                cur_.fail("'--' not allowed inside comment");
            cur_.advance();
        }
        std::string_view content = cur_.text().substr(start, cur_.pos() - start);
        cur_.consume("-->");
        if (options_.keep_comments) handler_.on_comment(content);
    }

    void parse_cdata() {
        SourceLocation where = cur_.location();
        cur_.consume("<![CDATA[");
        std::size_t start = cur_.pos();
        while (!cur_.lookahead("]]>")) {
            if (cur_.at_end()) cur_.fail("unterminated CDATA section");
            cur_.advance();
        }
        std::string_view content = cur_.text().substr(start, cur_.pos() - start);
        cur_.consume("]]>");
        handler_.on_text(content, /*cdata=*/true, where);
    }

    void parse_processing_instruction() {
        cur_.consume("<?");
        std::string target = parse_name("processing instruction target");
        if (iequals(target, "xml"))
            cur_.fail("'<?xml' only allowed at document start");
        cur_.skip_space();
        std::size_t start = cur_.pos();
        while (!cur_.lookahead("?>")) {
            if (cur_.at_end()) cur_.fail("unterminated processing instruction");
            cur_.advance();
        }
        std::string_view data = cur_.text().substr(start, cur_.pos() - start);
        cur_.consume("?>");
        if (options_.keep_processing_instructions)
            handler_.on_processing_instruction(target, data);
    }

    // -- lexical helpers -------------------------------------------------------

    std::string parse_name(const std::string& what) {
        std::size_t start = cur_.pos();
        while (!cur_.at_end()) {
            char c = cur_.peek();
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
                c == '_' || c == ':')
                cur_.advance();
            else
                break;
        }
        std::string name(cur_.text().substr(start, cur_.pos() - start));
        if (!is_xml_name(name)) cur_.fail("invalid " + what);
        return name;
    }

    std::string parse_quoted(const std::string& what) {
        char quote = cur_.peek();
        if (quote != '"' && quote != '\'') cur_.fail("expected quoted " + what);
        cur_.advance();
        std::size_t start = cur_.pos();
        while (!cur_.at_end() && cur_.peek() != quote) cur_.advance();
        if (cur_.at_end()) cur_.fail("unterminated " + what);
        std::string value(cur_.text().substr(start, cur_.pos() - start));
        cur_.advance();  // closing quote
        return value;
    }
};

/// Builds a DOM from parse events.
class DomBuilder : public EventHandler {
public:
    explicit DomBuilder(Document& doc) : doc_(doc) {}

    void on_xml_declaration(std::string_view version,
                            std::string_view encoding) override {
        doc_.set_declaration(std::string(version), std::string(encoding));
    }

    void on_doctype(const DoctypeDecl& doctype) override {
        doc_.set_doctype(doctype);
    }

    void on_start_element(std::string_view name,
                          std::vector<Attribute> attributes,
                          SourceLocation where) override {
        auto element = std::make_unique<Element>(std::string(name));
        element->set_location(where);
        // The parser guarantees unique names, so the vector is adopted
        // wholesale — no per-attribute copies or duplicate scans.
        element->adopt_attributes(std::move(attributes));
        // Documents are self-similar: reserve to the widest fanout seen so
        // far for this element name so child vectors allocate once.
        if (auto it = fanout_.find(element->name()); it != fanout_.end())
            element->reserve_children(it->second);
        Element* raw = element.get();
        if (stack_.empty()) {
            if (doc_.root() != nullptr)
                throw ParseError("multiple root elements", where);
            doc_.set_root(std::move(element));
        } else {
            stack_.back()->append_child(std::move(element));
        }
        stack_.push_back(raw);
    }

    void on_end_element(std::string_view) override {
        const Element* done = stack_.back();
        std::size_t n = done->children().size();
        if (n > 0) {
            std::size_t& seen = fanout_[done->name()];
            seen = std::max(seen, std::min<std::size_t>(n, kMaxFanoutHint));
        }
        stack_.pop_back();
    }

    void on_text(std::string_view content, bool cdata,
                 SourceLocation where) override {
        if (stack_.empty()) {
            if (!all_space(content))
                throw ParseError("character data outside root element", where);
            return;
        }
        auto text = std::make_unique<Text>(std::string(content), cdata);
        text->set_location(where);
        stack_.back()->append_child(std::move(text));
    }

    void on_comment(std::string_view content) override {
        auto node = std::make_unique<Comment>(std::string(content));
        if (stack_.empty()) doc_.append_prolog(std::move(node));
        else stack_.back()->append_child(std::move(node));
    }

    void on_processing_instruction(std::string_view target,
                                   std::string_view data) override {
        auto node = std::make_unique<ProcessingInstruction>(std::string(target),
                                                            std::string(data));
        if (stack_.empty()) doc_.append_prolog(std::move(node));
        else stack_.back()->append_child(std::move(node));
    }

private:
    // Cap the fanout hint so one huge element cannot make every later
    // sibling of the same name over-allocate.
    static constexpr std::size_t kMaxFanoutHint = 256;

    Document& doc_;
    std::vector<Element*> stack_;
    std::unordered_map<std::string, std::size_t> fanout_;
};

}  // namespace

void parse(std::string_view text, EventHandler& handler,
           const ParseOptions& options) {
    Parser parser(text, handler, options);
    parser.run();
}

std::unique_ptr<Document> parse_document(std::string_view text,
                                         const ParseOptions& options) {
    fault::maybe_fail("xml.parse");
    auto doc = std::make_unique<Document>();
    DomBuilder builder(*doc);
    parse(text, builder, options);
    if (doc->root() == nullptr)
        throw ParseError("document has no root element");
    return doc;
}

std::string decode_references(
    std::string_view raw,
    const std::map<std::string, std::string, std::less<>>& entities,
    SourceLocation where, std::size_t max_expansion) {
    std::string out;
    out.reserve(raw.size());
    std::size_t budget = max_expansion;

    // Work stack of pending text, so entity replacement text is itself
    // scanned for references (nested entities) without recursion.
    std::vector<std::string> pending;
    pending.emplace_back(raw);

    while (!pending.empty()) {
        std::string chunk = std::move(pending.back());
        pending.pop_back();
        std::size_t i = 0;
        while (i < chunk.size()) {
            char c = chunk[i];
            if (c != '&') {
                out += c;
                ++i;
                continue;
            }
            std::size_t semi = chunk.find(';', i + 1);
            if (semi == std::string::npos)
                throw ParseError("unterminated entity reference", where);
            std::string_view name =
                std::string_view(chunk).substr(i + 1, semi - i - 1);
            if (name.empty())
                throw ParseError("empty entity reference", where);
            if (name[0] == '#') {
                unsigned long code = 0;
                try {
                    code = name[1] == 'x' || name[1] == 'X'
                               ? std::stoul(std::string(name.substr(2)), nullptr, 16)
                               : std::stoul(std::string(name.substr(1)), nullptr, 10);
                } catch (const std::exception&) {
                    throw ParseError("malformed character reference '&" +
                                         std::string(name) + ";'",
                                     where);
                }
                // Encode as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else if (code < 0x10000) {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xF0 | (code >> 18));
                    out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
            } else if (name == "amp") {
                out += '&';
            } else if (name == "lt") {
                out += '<';
            } else if (name == "gt") {
                out += '>';
            } else if (name == "apos") {
                out += '\'';
            } else if (name == "quot") {
                out += '"';
            } else {
                auto it = entities.find(name);
                if (it == entities.end())
                    throw ParseError("undefined entity '&" + std::string(name) + ";'",
                                     where);
                if (it->second.size() > budget)
                    throw ParseError("entity expansion limit exceeded", where);
                budget -= it->second.size();
                // Re-scan the rest of this chunk after the replacement text.
                pending.emplace_back(chunk.substr(semi + 1));
                pending.emplace_back(it->second);
                i = chunk.size();
                semi = chunk.size();
                goto next_chunk;
            }
            i = semi + 1;
        }
    next_chunk:;
    }
    return out;
}

}  // namespace xr::xml
