// Serializes DOM documents back to XML text.
//
// Round-tripping matters for tests (parse → serialize → parse must be a
// fixed point modulo insignificant white space) and for the generators,
// which build documents as DOM trees and emit text corpora.
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace xr::xml {

struct SerializeOptions {
    /// Pretty-print with this indent per nesting level; empty = compact.
    std::string indent = "  ";
    /// Emit the '<?xml ...?>' declaration.
    bool declaration = true;
    /// Emit the DOCTYPE declaration if the document carries one.
    bool doctype = true;
};

/// Serialize a whole document.
[[nodiscard]] std::string serialize(const Document& doc,
                                    const SerializeOptions& options = {});

/// Serialize one subtree (no declaration/doctype).
[[nodiscard]] std::string serialize(const Node& node,
                                    const SerializeOptions& options = {});

}  // namespace xr::xml
