file(REMOVE_RECURSE
  "CMakeFiles/reconstruct_test.dir/reconstruct_test.cpp.o"
  "CMakeFiles/reconstruct_test.dir/reconstruct_test.cpp.o.d"
  "reconstruct_test"
  "reconstruct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconstruct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
