file(REMOVE_RECURSE
  "CMakeFiles/mapping_paper_test.dir/mapping_paper_test.cpp.o"
  "CMakeFiles/mapping_paper_test.dir/mapping_paper_test.cpp.o.d"
  "mapping_paper_test"
  "mapping_paper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_paper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
