# Empty dependencies file for mapping_paper_test.
# This may be replaced when dependencies are built.
