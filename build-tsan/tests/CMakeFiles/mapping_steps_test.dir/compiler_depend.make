# Empty compiler generated dependencies file for mapping_steps_test.
# This may be replaced when dependencies are built.
