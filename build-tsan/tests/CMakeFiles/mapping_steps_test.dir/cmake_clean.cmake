file(REMOVE_RECURSE
  "CMakeFiles/mapping_steps_test.dir/mapping_steps_test.cpp.o"
  "CMakeFiles/mapping_steps_test.dir/mapping_steps_test.cpp.o.d"
  "mapping_steps_test"
  "mapping_steps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_steps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
