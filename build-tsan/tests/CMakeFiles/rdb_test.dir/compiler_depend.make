# Empty compiler generated dependencies file for rdb_test.
# This may be replaced when dependencies are built.
