file(REMOVE_RECURSE
  "CMakeFiles/rdb_test.dir/rdb_test.cpp.o"
  "CMakeFiles/rdb_test.dir/rdb_test.cpp.o.d"
  "rdb_test"
  "rdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
