file(REMOVE_RECURSE
  "CMakeFiles/dtd_parser_test.dir/dtd_parser_test.cpp.o"
  "CMakeFiles/dtd_parser_test.dir/dtd_parser_test.cpp.o.d"
  "dtd_parser_test"
  "dtd_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtd_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
