# Empty dependencies file for bench_fig2_diagram.
# This may be replaced when dependencies are built.
