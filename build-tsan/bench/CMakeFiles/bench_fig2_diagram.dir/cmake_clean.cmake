file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_diagram.dir/bench_fig2_diagram.cpp.o"
  "CMakeFiles/bench_fig2_diagram.dir/bench_fig2_diagram.cpp.o.d"
  "bench_fig2_diagram"
  "bench_fig2_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
