file(REMOVE_RECURSE
  "CMakeFiles/bench_roundtrip.dir/bench_roundtrip.cpp.o"
  "CMakeFiles/bench_roundtrip.dir/bench_roundtrip.cpp.o.d"
  "bench_roundtrip"
  "bench_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
