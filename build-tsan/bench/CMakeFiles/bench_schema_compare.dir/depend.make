# Empty dependencies file for bench_schema_compare.
# This may be replaced when dependencies are built.
