file(REMOVE_RECURSE
  "CMakeFiles/bench_schema_compare.dir/bench_schema_compare.cpp.o"
  "CMakeFiles/bench_schema_compare.dir/bench_schema_compare.cpp.o.d"
  "bench_schema_compare"
  "bench_schema_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
