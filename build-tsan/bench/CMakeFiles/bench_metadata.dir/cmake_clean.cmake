file(REMOVE_RECURSE
  "CMakeFiles/bench_metadata.dir/bench_metadata.cpp.o"
  "CMakeFiles/bench_metadata.dir/bench_metadata.cpp.o.d"
  "bench_metadata"
  "bench_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
