# Empty compiler generated dependencies file for bench_loading.
# This may be replaced when dependencies are built.
