file(REMOVE_RECURSE
  "CMakeFiles/bench_loading.dir/bench_loading.cpp.o"
  "CMakeFiles/bench_loading.dir/bench_loading.cpp.o.d"
  "bench_loading"
  "bench_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
