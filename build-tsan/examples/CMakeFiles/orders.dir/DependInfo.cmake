
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/orders.cpp" "examples/CMakeFiles/orders.dir/orders.cpp.o" "gcc" "examples/CMakeFiles/orders.dir/orders.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/loader/CMakeFiles/xr_loader.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xquery/CMakeFiles/xr_xquery.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gen/CMakeFiles/xr_gen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baseline/CMakeFiles/xr_baseline.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sql/CMakeFiles/xr_sql.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rel/CMakeFiles/xr_rel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/validate/CMakeFiles/xr_validate.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mapping/CMakeFiles/xr_mapping.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/er/CMakeFiles/xr_er.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rdb/CMakeFiles/xr_rdb.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dtd/CMakeFiles/xr_dtd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xml/CMakeFiles/xr_xml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/xr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
