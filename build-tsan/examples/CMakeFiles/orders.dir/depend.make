# Empty dependencies file for orders.
# This may be replaced when dependencies are built.
