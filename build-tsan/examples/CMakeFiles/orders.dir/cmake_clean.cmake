file(REMOVE_RECURSE
  "CMakeFiles/orders.dir/orders.cpp.o"
  "CMakeFiles/orders.dir/orders.cpp.o.d"
  "orders"
  "orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
