file(REMOVE_RECURSE
  "CMakeFiles/query_translation.dir/query_translation.cpp.o"
  "CMakeFiles/query_translation.dir/query_translation.cpp.o.d"
  "query_translation"
  "query_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
