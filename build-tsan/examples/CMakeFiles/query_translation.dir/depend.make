# Empty dependencies file for query_translation.
# This may be replaced when dependencies are built.
