file(REMOVE_RECURSE
  "CMakeFiles/roundtrip.dir/roundtrip.cpp.o"
  "CMakeFiles/roundtrip.dir/roundtrip.cpp.o.d"
  "roundtrip"
  "roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
