# Empty dependencies file for roundtrip.
# This may be replaced when dependencies are built.
