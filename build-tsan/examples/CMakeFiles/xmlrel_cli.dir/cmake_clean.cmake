file(REMOVE_RECURSE
  "CMakeFiles/xmlrel_cli.dir/xmlrel_cli.cpp.o"
  "CMakeFiles/xmlrel_cli.dir/xmlrel_cli.cpp.o.d"
  "xmlrel_cli"
  "xmlrel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
