# Empty compiler generated dependencies file for xmlrel_cli.
# This may be replaced when dependencies are built.
