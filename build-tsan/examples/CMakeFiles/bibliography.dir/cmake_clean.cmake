file(REMOVE_RECURSE
  "CMakeFiles/bibliography.dir/bibliography.cpp.o"
  "CMakeFiles/bibliography.dir/bibliography.cpp.o.d"
  "bibliography"
  "bibliography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
