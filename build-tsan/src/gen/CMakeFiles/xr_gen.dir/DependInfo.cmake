
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/corpora.cpp" "src/gen/CMakeFiles/xr_gen.dir/corpora.cpp.o" "gcc" "src/gen/CMakeFiles/xr_gen.dir/corpora.cpp.o.d"
  "/root/repo/src/gen/doc_gen.cpp" "src/gen/CMakeFiles/xr_gen.dir/doc_gen.cpp.o" "gcc" "src/gen/CMakeFiles/xr_gen.dir/doc_gen.cpp.o.d"
  "/root/repo/src/gen/dtd_gen.cpp" "src/gen/CMakeFiles/xr_gen.dir/dtd_gen.cpp.o" "gcc" "src/gen/CMakeFiles/xr_gen.dir/dtd_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/xr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xml/CMakeFiles/xr_xml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dtd/CMakeFiles/xr_dtd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
