file(REMOVE_RECURSE
  "libxr_gen.a"
)
