# Empty compiler generated dependencies file for xr_gen.
# This may be replaced when dependencies are built.
