file(REMOVE_RECURSE
  "CMakeFiles/xr_gen.dir/corpora.cpp.o"
  "CMakeFiles/xr_gen.dir/corpora.cpp.o.d"
  "CMakeFiles/xr_gen.dir/doc_gen.cpp.o"
  "CMakeFiles/xr_gen.dir/doc_gen.cpp.o.d"
  "CMakeFiles/xr_gen.dir/dtd_gen.cpp.o"
  "CMakeFiles/xr_gen.dir/dtd_gen.cpp.o.d"
  "libxr_gen.a"
  "libxr_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
