file(REMOVE_RECURSE
  "CMakeFiles/xr_xquery.dir/dom_eval.cpp.o"
  "CMakeFiles/xr_xquery.dir/dom_eval.cpp.o.d"
  "CMakeFiles/xr_xquery.dir/materialize.cpp.o"
  "CMakeFiles/xr_xquery.dir/materialize.cpp.o.d"
  "CMakeFiles/xr_xquery.dir/query.cpp.o"
  "CMakeFiles/xr_xquery.dir/query.cpp.o.d"
  "CMakeFiles/xr_xquery.dir/sql_translate.cpp.o"
  "CMakeFiles/xr_xquery.dir/sql_translate.cpp.o.d"
  "libxr_xquery.a"
  "libxr_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
