file(REMOVE_RECURSE
  "libxr_xquery.a"
)
