
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xquery/dom_eval.cpp" "src/xquery/CMakeFiles/xr_xquery.dir/dom_eval.cpp.o" "gcc" "src/xquery/CMakeFiles/xr_xquery.dir/dom_eval.cpp.o.d"
  "/root/repo/src/xquery/materialize.cpp" "src/xquery/CMakeFiles/xr_xquery.dir/materialize.cpp.o" "gcc" "src/xquery/CMakeFiles/xr_xquery.dir/materialize.cpp.o.d"
  "/root/repo/src/xquery/query.cpp" "src/xquery/CMakeFiles/xr_xquery.dir/query.cpp.o" "gcc" "src/xquery/CMakeFiles/xr_xquery.dir/query.cpp.o.d"
  "/root/repo/src/xquery/sql_translate.cpp" "src/xquery/CMakeFiles/xr_xquery.dir/sql_translate.cpp.o" "gcc" "src/xquery/CMakeFiles/xr_xquery.dir/sql_translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/xr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xml/CMakeFiles/xr_xml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mapping/CMakeFiles/xr_mapping.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rel/CMakeFiles/xr_rel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sql/CMakeFiles/xr_sql.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/loader/CMakeFiles/xr_loader.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/er/CMakeFiles/xr_er.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rdb/CMakeFiles/xr_rdb.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/validate/CMakeFiles/xr_validate.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dtd/CMakeFiles/xr_dtd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
