# Empty dependencies file for xr_xquery.
# This may be replaced when dependencies are built.
