# Empty dependencies file for xr_baseline.
# This may be replaced when dependencies are built.
