file(REMOVE_RECURSE
  "libxr_baseline.a"
)
