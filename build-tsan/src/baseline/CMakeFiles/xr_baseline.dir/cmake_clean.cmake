file(REMOVE_RECURSE
  "CMakeFiles/xr_baseline.dir/inline_loader.cpp.o"
  "CMakeFiles/xr_baseline.dir/inline_loader.cpp.o.d"
  "CMakeFiles/xr_baseline.dir/inline_schema.cpp.o"
  "CMakeFiles/xr_baseline.dir/inline_schema.cpp.o.d"
  "CMakeFiles/xr_baseline.dir/simplify.cpp.o"
  "CMakeFiles/xr_baseline.dir/simplify.cpp.o.d"
  "libxr_baseline.a"
  "libxr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
