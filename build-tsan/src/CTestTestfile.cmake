# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("xml")
subdirs("dtd")
subdirs("validate")
subdirs("er")
subdirs("mapping")
subdirs("rel")
subdirs("rdb")
subdirs("loader")
subdirs("sql")
subdirs("xquery")
subdirs("baseline")
subdirs("gen")
