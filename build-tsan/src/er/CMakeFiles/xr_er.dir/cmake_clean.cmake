file(REMOVE_RECURSE
  "CMakeFiles/xr_er.dir/dot.cpp.o"
  "CMakeFiles/xr_er.dir/dot.cpp.o.d"
  "CMakeFiles/xr_er.dir/model.cpp.o"
  "CMakeFiles/xr_er.dir/model.cpp.o.d"
  "libxr_er.a"
  "libxr_er.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_er.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
