file(REMOVE_RECURSE
  "libxr_er.a"
)
