
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/er/dot.cpp" "src/er/CMakeFiles/xr_er.dir/dot.cpp.o" "gcc" "src/er/CMakeFiles/xr_er.dir/dot.cpp.o.d"
  "/root/repo/src/er/model.cpp" "src/er/CMakeFiles/xr_er.dir/model.cpp.o" "gcc" "src/er/CMakeFiles/xr_er.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/xr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dtd/CMakeFiles/xr_dtd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xml/CMakeFiles/xr_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
