# Empty compiler generated dependencies file for xr_er.
# This may be replaced when dependencies are built.
