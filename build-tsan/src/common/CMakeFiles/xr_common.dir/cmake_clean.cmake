file(REMOVE_RECURSE
  "CMakeFiles/xr_common.dir/error.cpp.o"
  "CMakeFiles/xr_common.dir/error.cpp.o.d"
  "CMakeFiles/xr_common.dir/strings.cpp.o"
  "CMakeFiles/xr_common.dir/strings.cpp.o.d"
  "CMakeFiles/xr_common.dir/table_printer.cpp.o"
  "CMakeFiles/xr_common.dir/table_printer.cpp.o.d"
  "libxr_common.a"
  "libxr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
