# Empty dependencies file for xr_common.
# This may be replaced when dependencies are built.
