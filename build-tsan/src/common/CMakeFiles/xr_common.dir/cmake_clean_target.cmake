file(REMOVE_RECURSE
  "libxr_common.a"
)
