# Empty dependencies file for xr_loader.
# This may be replaced when dependencies are built.
