file(REMOVE_RECURSE
  "CMakeFiles/xr_loader.dir/bulk_loader.cpp.o"
  "CMakeFiles/xr_loader.dir/bulk_loader.cpp.o.d"
  "CMakeFiles/xr_loader.dir/loader.cpp.o"
  "CMakeFiles/xr_loader.dir/loader.cpp.o.d"
  "CMakeFiles/xr_loader.dir/plan.cpp.o"
  "CMakeFiles/xr_loader.dir/plan.cpp.o.d"
  "CMakeFiles/xr_loader.dir/reconstruct.cpp.o"
  "CMakeFiles/xr_loader.dir/reconstruct.cpp.o.d"
  "libxr_loader.a"
  "libxr_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
