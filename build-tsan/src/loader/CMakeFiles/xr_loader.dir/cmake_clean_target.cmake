file(REMOVE_RECURSE
  "libxr_loader.a"
)
