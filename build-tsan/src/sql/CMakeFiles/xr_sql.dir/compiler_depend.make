# Empty compiler generated dependencies file for xr_sql.
# This may be replaced when dependencies are built.
