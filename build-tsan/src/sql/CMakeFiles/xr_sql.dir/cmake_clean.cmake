file(REMOVE_RECURSE
  "CMakeFiles/xr_sql.dir/executor.cpp.o"
  "CMakeFiles/xr_sql.dir/executor.cpp.o.d"
  "CMakeFiles/xr_sql.dir/lexer.cpp.o"
  "CMakeFiles/xr_sql.dir/lexer.cpp.o.d"
  "CMakeFiles/xr_sql.dir/parser.cpp.o"
  "CMakeFiles/xr_sql.dir/parser.cpp.o.d"
  "libxr_sql.a"
  "libxr_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
