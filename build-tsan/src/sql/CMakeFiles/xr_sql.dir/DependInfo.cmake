
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/executor.cpp" "src/sql/CMakeFiles/xr_sql.dir/executor.cpp.o" "gcc" "src/sql/CMakeFiles/xr_sql.dir/executor.cpp.o.d"
  "/root/repo/src/sql/lexer.cpp" "src/sql/CMakeFiles/xr_sql.dir/lexer.cpp.o" "gcc" "src/sql/CMakeFiles/xr_sql.dir/lexer.cpp.o.d"
  "/root/repo/src/sql/parser.cpp" "src/sql/CMakeFiles/xr_sql.dir/parser.cpp.o" "gcc" "src/sql/CMakeFiles/xr_sql.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/xr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rdb/CMakeFiles/xr_rdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
