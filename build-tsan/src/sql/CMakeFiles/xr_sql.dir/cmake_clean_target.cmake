file(REMOVE_RECURSE
  "libxr_sql.a"
)
