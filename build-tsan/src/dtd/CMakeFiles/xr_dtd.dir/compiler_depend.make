# Empty compiler generated dependencies file for xr_dtd.
# This may be replaced when dependencies are built.
