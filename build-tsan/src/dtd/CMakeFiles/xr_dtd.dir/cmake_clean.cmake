file(REMOVE_RECURSE
  "CMakeFiles/xr_dtd.dir/content_model.cpp.o"
  "CMakeFiles/xr_dtd.dir/content_model.cpp.o.d"
  "CMakeFiles/xr_dtd.dir/dtd.cpp.o"
  "CMakeFiles/xr_dtd.dir/dtd.cpp.o.d"
  "CMakeFiles/xr_dtd.dir/parser.cpp.o"
  "CMakeFiles/xr_dtd.dir/parser.cpp.o.d"
  "libxr_dtd.a"
  "libxr_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
