file(REMOVE_RECURSE
  "libxr_dtd.a"
)
