
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtd/content_model.cpp" "src/dtd/CMakeFiles/xr_dtd.dir/content_model.cpp.o" "gcc" "src/dtd/CMakeFiles/xr_dtd.dir/content_model.cpp.o.d"
  "/root/repo/src/dtd/dtd.cpp" "src/dtd/CMakeFiles/xr_dtd.dir/dtd.cpp.o" "gcc" "src/dtd/CMakeFiles/xr_dtd.dir/dtd.cpp.o.d"
  "/root/repo/src/dtd/parser.cpp" "src/dtd/CMakeFiles/xr_dtd.dir/parser.cpp.o" "gcc" "src/dtd/CMakeFiles/xr_dtd.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/xr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xml/CMakeFiles/xr_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
