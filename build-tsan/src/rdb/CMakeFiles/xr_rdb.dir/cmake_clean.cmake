file(REMOVE_RECURSE
  "CMakeFiles/xr_rdb.dir/database.cpp.o"
  "CMakeFiles/xr_rdb.dir/database.cpp.o.d"
  "CMakeFiles/xr_rdb.dir/table.cpp.o"
  "CMakeFiles/xr_rdb.dir/table.cpp.o.d"
  "CMakeFiles/xr_rdb.dir/value.cpp.o"
  "CMakeFiles/xr_rdb.dir/value.cpp.o.d"
  "libxr_rdb.a"
  "libxr_rdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_rdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
