# Empty compiler generated dependencies file for xr_rdb.
# This may be replaced when dependencies are built.
