file(REMOVE_RECURSE
  "libxr_rdb.a"
)
