
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdb/database.cpp" "src/rdb/CMakeFiles/xr_rdb.dir/database.cpp.o" "gcc" "src/rdb/CMakeFiles/xr_rdb.dir/database.cpp.o.d"
  "/root/repo/src/rdb/table.cpp" "src/rdb/CMakeFiles/xr_rdb.dir/table.cpp.o" "gcc" "src/rdb/CMakeFiles/xr_rdb.dir/table.cpp.o.d"
  "/root/repo/src/rdb/value.cpp" "src/rdb/CMakeFiles/xr_rdb.dir/value.cpp.o" "gcc" "src/rdb/CMakeFiles/xr_rdb.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/xr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
