file(REMOVE_RECURSE
  "libxr_mapping.a"
)
