# Empty compiler generated dependencies file for xr_mapping.
# This may be replaced when dependencies are built.
