
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/converted_dtd.cpp" "src/mapping/CMakeFiles/xr_mapping.dir/converted_dtd.cpp.o" "gcc" "src/mapping/CMakeFiles/xr_mapping.dir/converted_dtd.cpp.o.d"
  "/root/repo/src/mapping/metadata.cpp" "src/mapping/CMakeFiles/xr_mapping.dir/metadata.cpp.o" "gcc" "src/mapping/CMakeFiles/xr_mapping.dir/metadata.cpp.o.d"
  "/root/repo/src/mapping/pipeline.cpp" "src/mapping/CMakeFiles/xr_mapping.dir/pipeline.cpp.o" "gcc" "src/mapping/CMakeFiles/xr_mapping.dir/pipeline.cpp.o.d"
  "/root/repo/src/mapping/steps.cpp" "src/mapping/CMakeFiles/xr_mapping.dir/steps.cpp.o" "gcc" "src/mapping/CMakeFiles/xr_mapping.dir/steps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/xr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dtd/CMakeFiles/xr_dtd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/er/CMakeFiles/xr_er.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xml/CMakeFiles/xr_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
