file(REMOVE_RECURSE
  "CMakeFiles/xr_mapping.dir/converted_dtd.cpp.o"
  "CMakeFiles/xr_mapping.dir/converted_dtd.cpp.o.d"
  "CMakeFiles/xr_mapping.dir/metadata.cpp.o"
  "CMakeFiles/xr_mapping.dir/metadata.cpp.o.d"
  "CMakeFiles/xr_mapping.dir/pipeline.cpp.o"
  "CMakeFiles/xr_mapping.dir/pipeline.cpp.o.d"
  "CMakeFiles/xr_mapping.dir/steps.cpp.o"
  "CMakeFiles/xr_mapping.dir/steps.cpp.o.d"
  "libxr_mapping.a"
  "libxr_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
