
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/materialize.cpp" "src/rel/CMakeFiles/xr_rel.dir/materialize.cpp.o" "gcc" "src/rel/CMakeFiles/xr_rel.dir/materialize.cpp.o.d"
  "/root/repo/src/rel/schema.cpp" "src/rel/CMakeFiles/xr_rel.dir/schema.cpp.o" "gcc" "src/rel/CMakeFiles/xr_rel.dir/schema.cpp.o.d"
  "/root/repo/src/rel/translate.cpp" "src/rel/CMakeFiles/xr_rel.dir/translate.cpp.o" "gcc" "src/rel/CMakeFiles/xr_rel.dir/translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/xr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mapping/CMakeFiles/xr_mapping.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rdb/CMakeFiles/xr_rdb.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/er/CMakeFiles/xr_er.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dtd/CMakeFiles/xr_dtd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xml/CMakeFiles/xr_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
