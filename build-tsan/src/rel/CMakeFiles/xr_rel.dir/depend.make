# Empty dependencies file for xr_rel.
# This may be replaced when dependencies are built.
