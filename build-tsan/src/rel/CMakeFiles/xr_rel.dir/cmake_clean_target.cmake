file(REMOVE_RECURSE
  "libxr_rel.a"
)
