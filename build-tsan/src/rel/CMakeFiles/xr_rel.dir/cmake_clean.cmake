file(REMOVE_RECURSE
  "CMakeFiles/xr_rel.dir/materialize.cpp.o"
  "CMakeFiles/xr_rel.dir/materialize.cpp.o.d"
  "CMakeFiles/xr_rel.dir/schema.cpp.o"
  "CMakeFiles/xr_rel.dir/schema.cpp.o.d"
  "CMakeFiles/xr_rel.dir/translate.cpp.o"
  "CMakeFiles/xr_rel.dir/translate.cpp.o.d"
  "libxr_rel.a"
  "libxr_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
