# Empty dependencies file for xr_validate.
# This may be replaced when dependencies are built.
