file(REMOVE_RECURSE
  "libxr_validate.a"
)
