file(REMOVE_RECURSE
  "CMakeFiles/xr_validate.dir/automaton.cpp.o"
  "CMakeFiles/xr_validate.dir/automaton.cpp.o.d"
  "CMakeFiles/xr_validate.dir/validator.cpp.o"
  "CMakeFiles/xr_validate.dir/validator.cpp.o.d"
  "libxr_validate.a"
  "libxr_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
