# Empty compiler generated dependencies file for xr_xml.
# This may be replaced when dependencies are built.
