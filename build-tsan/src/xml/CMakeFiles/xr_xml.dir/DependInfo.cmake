
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/dom.cpp" "src/xml/CMakeFiles/xr_xml.dir/dom.cpp.o" "gcc" "src/xml/CMakeFiles/xr_xml.dir/dom.cpp.o.d"
  "/root/repo/src/xml/parser.cpp" "src/xml/CMakeFiles/xr_xml.dir/parser.cpp.o" "gcc" "src/xml/CMakeFiles/xr_xml.dir/parser.cpp.o.d"
  "/root/repo/src/xml/serializer.cpp" "src/xml/CMakeFiles/xr_xml.dir/serializer.cpp.o" "gcc" "src/xml/CMakeFiles/xr_xml.dir/serializer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/xr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
