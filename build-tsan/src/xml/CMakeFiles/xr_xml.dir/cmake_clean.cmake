file(REMOVE_RECURSE
  "CMakeFiles/xr_xml.dir/dom.cpp.o"
  "CMakeFiles/xr_xml.dir/dom.cpp.o.d"
  "CMakeFiles/xr_xml.dir/parser.cpp.o"
  "CMakeFiles/xr_xml.dir/parser.cpp.o.d"
  "CMakeFiles/xr_xml.dir/serializer.cpp.o"
  "CMakeFiles/xr_xml.dir/serializer.cpp.o.d"
  "libxr_xml.a"
  "libxr_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
