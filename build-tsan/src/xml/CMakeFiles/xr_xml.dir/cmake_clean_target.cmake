file(REMOVE_RECURSE
  "libxr_xml.a"
)
