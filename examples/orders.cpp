// E-commerce orders: the data-centric exchange scenario from the paper's
// motivation ("book orders ... designed mainly for processing by
// machines").  Maps the orders DTD, loads a corpus of purchase orders and
// runs business queries over the resulting relational schema.
//
// Usage: orders [order_count]
#include <iostream>

#include "gen/corpora.hpp"
#include "loader/loader.hpp"
#include "mapping/pipeline.hpp"
#include "rel/materialize.hpp"
#include "rel/translate.hpp"
#include "sql/executor.hpp"
#include "xml/serializer.hpp"

int main(int argc, char** argv) {
    using namespace xr;
    std::size_t order_count = argc > 1 ? std::stoul(argv[1]) : 100;

    dtd::Dtd logical = gen::orders_dtd();
    std::cout << "=== Orders DTD ===\n" << logical.to_string() << "\n";

    mapping::MappingResult mapping = mapping::map_dtd(logical);
    std::cout << "=== Converted DTD ===\n"
              << mapping.converted.to_string() << "\n";

    rel::RelationalSchema schema = rel::translate(mapping);
    rdb::Database db;
    rel::materialize(schema, mapping, db);
    loader::Loader loader(logical, mapping, schema, db);

    auto corpus = gen::orders_corpus(order_count, 120, 2026);
    std::cout << "=== A sample order document ===\n"
              << xml::serialize(*corpus.front()) << "\n";
    for (auto& doc : corpus) loader.load(*doc);

    std::cout << "Loaded " << loader.stats().documents << " orders ("
              << loader.stats().total_rows() << " rows)\n\n";

    auto run = [&](const std::string& label, const std::string& sql_text) {
        std::cout << "-- " << label << "\n   " << sql_text << "\n";
        std::cout << sql::execute(db, sql_text).to_string() << "\n";
    };

    // 'order' is a SQL keyword, so its table is sanitized to 'order_'.
    run("orders by status",
        "SELECT status, COUNT(*) AS n FROM order_ GROUP BY status "
        "ORDER BY n DESC, 1");
    run("line items per order (top 5)",
        "SELECT o.id, COUNT(*) AS line_items FROM order_ o "
        "JOIN nitem ON nitem.parent_pk = o.pk "
        "GROUP BY o.id ORDER BY line_items DESC, 1 LIMIT 5");
    run("orders with shipping information",
        "SELECT COUNT(DISTINCT o.pk) AS with_shipping FROM order_ o "
        "JOIN nshipping ON nshipping.parent_pk = o.pk");
    run("zip vs postcode usage (the (zip | postcode) choice group)",
        "SELECT COUNT(zip_pk) AS zips, COUNT(postcode_pk) AS postcodes "
        "FROM ng1");
    run("customers with an email on file",
        "SELECT COUNT(*) AS with_email FROM customer "
        "WHERE email IS NOT NULL");
    run("distinct product names (top 5 by frequency)",
        "SELECT item.product, COUNT(*) AS n FROM item "
        "GROUP BY item.product ORDER BY n DESC, 1 LIMIT 5");
    return 0;
}
