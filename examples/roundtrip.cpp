// Round trip: XML → relational → XML.
//
// Loads documents into the mapped schema, then rebuilds them *purely from
// the database* (entity rows, ord columns, distilled provenance, metadata
// tables) and diffs against the originals — demonstrating that the
// metadata the paper proposes really does compensate for what the
// relational model drops.
//
// Usage: roundtrip [doc_count]
#include <iostream>

#include "gen/corpora.hpp"
#include "loader/loader.hpp"
#include "loader/reconstruct.hpp"
#include "mapping/pipeline.hpp"
#include "rel/materialize.hpp"
#include "rel/translate.hpp"
#include "validate/validator.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

int main(int argc, char** argv) {
    using namespace xr;
    std::size_t doc_count = argc > 1 ? std::stoul(argv[1]) : 25;

    dtd::Dtd logical = gen::paper_dtd();
    mapping::MappingResult mapping = mapping::map_dtd(logical);
    rel::RelationalSchema schema = rel::translate(mapping);
    rdb::Database db;
    rel::materialize(schema, mapping, db);
    loader::Loader loader(logical, mapping, schema, db);

    std::vector<std::unique_ptr<xml::Document>> corpus;
    corpus.push_back(xml::parse_document(gen::paper_sample_document()));
    for (auto& doc : gen::bibliography_corpus(doc_count, 250, 99))
        corpus.push_back(std::move(doc));

    std::vector<std::int64_t> doc_ids;
    for (auto& doc : corpus) doc_ids.push_back(loader.load(*doc));

    loader::Reconstructor reconstructor(mapping, schema, db);
    validate::Validator validator(logical);

    xml::SerializeOptions compact;
    compact.indent.clear();
    compact.declaration = false;
    compact.doctype = false;

    std::size_t exact = 0, valid = 0;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        auto rebuilt = reconstructor.reconstruct(doc_ids[i]);
        if (validator.validate(*rebuilt).ok()) ++valid;
        std::string original = xml::serialize(*corpus[i], compact);
        std::string roundtripped = xml::serialize(*rebuilt, compact);
        if (original == roundtripped) {
            ++exact;
        } else if (i == 0) {
            std::cout << "First differing document:\n--- original ---\n"
                      << original << "\n--- reconstructed ---\n"
                      << roundtripped << "\n";
        }
    }

    std::cout << "Round-tripped " << corpus.size() << " documents through "
              << db.total_rows() << " relational rows:\n"
              << "  byte-exact reconstructions: " << exact << "/"
              << corpus.size() << "\n"
              << "  DTD-valid reconstructions:  " << valid << "/"
              << corpus.size() << "\n";

    std::cout << "\nThe paper's sample article, rebuilt from tables:\n"
              << xml::serialize(*reconstructor.reconstruct(doc_ids[0]),
                                {.declaration = false, .doctype = false});
    return exact == corpus.size() ? 0 : 1;
}
