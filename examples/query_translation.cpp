// Query translation: the paper's Section 5 question made concrete — path
// queries over XML evaluated two ways, directly against the DOM and as
// automatically generated SQL over the mapped schema, side by side.
//
// Usage: query_translation [doc_count] ["/custom/path/query" ...]
#include <chrono>
#include <iostream>

#include "common/table_printer.hpp"
#include "gen/corpora.hpp"
#include "loader/loader.hpp"
#include "mapping/pipeline.hpp"
#include "rel/materialize.hpp"
#include "rel/translate.hpp"
#include "sql/executor.hpp"
#include "xml/parser.hpp"
#include "loader/reconstruct.hpp"
#include "xml/serializer.hpp"
#include "xquery/dom_eval.hpp"
#include "xquery/materialize.hpp"
#include "xquery/sql_translate.hpp"

int main(int argc, char** argv) {
    using namespace xr;
    using Clock = std::chrono::steady_clock;

    std::size_t doc_count = argc > 1 ? std::stoul(argv[1]) : 100;

    dtd::Dtd logical = gen::paper_dtd();
    mapping::MappingResult mapping = mapping::map_dtd(logical);
    rel::RelationalSchema schema = rel::translate(mapping);
    rdb::Database db;
    rel::materialize(schema, mapping, db);
    loader::Loader loader(logical, mapping, schema, db);

    std::vector<std::unique_ptr<xml::Document>> corpus;
    corpus.push_back(xml::parse_document(gen::paper_sample_document()));
    for (auto& doc : gen::bibliography_corpus(doc_count, 200, 7))
        corpus.push_back(std::move(doc));
    std::vector<const xml::Document*> docs;
    for (auto& doc : corpus) {
        loader.load(*doc);
        docs.push_back(doc.get());
    }
    std::cout << "Corpus: " << docs.size() << " documents, "
              << loader.stats().elements_visited << " elements, "
              << loader.stats().total_rows() << " rows.\n\n";

    std::vector<std::string> queries = {
        "/article/author",
        "/article[title = 'XML RDBMS']/author",
        "/article/author[name/lastname = 'Smith']/name",
        "/article/contactauthor/@authorid",
        "count(/article/author)",
        "/article/author[2]",  // positional: DOM only
    };
    for (int i = 2; i < argc; ++i) queries.emplace_back(argv[i]);

    xquery::SqlTranslator translator(mapping, schema);
    TablePrinter table({"query", "dom results", "dom us", "sql results",
                        "sql us", "joins"});

    for (const auto& text : queries) {
        xquery::PathQuery q = xquery::parse_query(text);

        auto d0 = Clock::now();
        xquery::DomResult dom = xquery::evaluate(docs, q);
        auto d1 = Clock::now();
        double dom_us = std::chrono::duration<double, std::micro>(d1 - d0).count();

        std::string sql_count = "-", sql_us = "-", joins = "-";
        std::string sql_text;
        try {
            xquery::Translation t = translator.translate(q);
            sql_text = t.sql;
            auto s0 = Clock::now();
            auto rs = sql::execute(db, t.sql);
            auto s1 = Clock::now();
            std::size_t n = t.yield == xquery::Translation::Yield::kCount
                                ? static_cast<std::size_t>(
                                      rs.scalar().as_integer())
                                : rs.row_count();
            sql_count = std::to_string(n);
            sql_us = format_double(
                std::chrono::duration<double, std::micro>(s1 - s0).count(), 1);
            joins = std::to_string(t.join_count);
        } catch (const QueryError& e) {
            sql_text = std::string("-- not translatable: ") + e.what();
        }

        table.add_row({text, std::to_string(dom.size()),
                       format_double(dom_us, 1), sql_count, sql_us, joins});
        std::cout << text << "\n  =>  " << sql_text << "\n\n";
    }

    std::cout << table.to_string();

    // Close the loop: an XML query whose answer leaves as XML again, with
    // matched subtrees reconstructed from the relational store.
    std::cout << "\n== Materialized result of "
                 "/article/author[name/lastname = 'Smith'] ==\n";
    loader::Reconstructor reconstructor(mapping, schema, db);
    xquery::Translation t = translator.translate(
        xquery::parse_query("/article/author[name/lastname = 'Smith']"));
    auto results = xquery::materialize_results(db, t, reconstructor);
    std::cout << xml::serialize(*results, {.declaration = false});
    return 0;
}
