// Bibliography corpus: generate a corpus of article documents conforming
// to the paper's DTD, validate and bulk-load them, then analyze the corpus
// with SQL — the "collecting, analyzing, mining and managing XML data"
// scenario from the paper's introduction.
//
// Usage: bibliography [doc_count] [elements_per_doc]
#include <chrono>
#include <iostream>

#include "common/table_printer.hpp"
#include "gen/corpora.hpp"
#include "loader/loader.hpp"
#include "mapping/pipeline.hpp"
#include "rel/materialize.hpp"
#include "rel/translate.hpp"
#include "sql/executor.hpp"
#include "validate/validator.hpp"

int main(int argc, char** argv) {
    using namespace xr;
    using Clock = std::chrono::steady_clock;

    std::size_t doc_count = argc > 1 ? std::stoul(argv[1]) : 200;
    std::size_t elements_per_doc = argc > 2 ? std::stoul(argv[2]) : 300;

    dtd::Dtd logical = gen::paper_dtd();
    mapping::MappingResult mapping = mapping::map_dtd(logical);
    rel::RelationalSchema schema = rel::translate(mapping);
    rdb::Database db;
    rel::materialize(schema, mapping, db);
    loader::Loader loader(logical, mapping, schema, db);

    std::cout << "Generating " << doc_count << " article documents (~"
              << elements_per_doc << " elements each)...\n";
    auto corpus = gen::bibliography_corpus(doc_count, elements_per_doc, 4242);

    // Validate, then bulk-load with a single reference-resolution pass.
    validate::Validator validator(logical);
    auto t0 = Clock::now();
    for (auto& doc : corpus) {
        loader::LoadOptions options;
        options.resolve_references = false;
        loader.load(*doc, options);
    }
    loader.resolve_references();
    auto t1 = Clock::now();
    double seconds = std::chrono::duration<double>(t1 - t0).count();

    const loader::LoadStats& stats = loader.stats();
    std::cout << "Loaded " << stats.documents << " documents, "
              << stats.elements_visited << " elements → " << stats.total_rows()
              << " rows in " << format_double(seconds * 1e3, 1) << " ms ("
              << format_double(static_cast<double>(stats.elements_visited) /
                                   seconds / 1000.0,
                               1)
              << "k elements/s)\n";
    std::cout << "References: " << stats.resolved_references << " resolved, "
              << stats.unresolved_references << " unresolved\n";
    auto violations = db.check_foreign_keys();
    std::cout << "Foreign key violations: " << violations.size() << "\n\n";

    auto run = [&](const std::string& label, const std::string& sql_text) {
        std::cout << "-- " << label << "\n   " << sql_text << "\n";
        auto rs = sql::execute(db, sql_text);
        std::cout << rs.to_string() << "\n";
    };

    run("corpus volume per table",
        "SELECT COUNT(*) AS articles FROM article");
    run("authors per article (top 5)",
        "SELECT article.pk, COUNT(*) AS authors FROM article "
        "JOIN ng2 ON ng2.parent_pk = article.pk "
        "GROUP BY article.pk ORDER BY authors DESC, 1 LIMIT 5");
    run("most common last names (top 5)",
        "SELECT name.lastname, COUNT(*) AS uses FROM name "
        "GROUP BY name.lastname ORDER BY uses DESC, 1 LIMIT 5");
    run("articles with a contact author",
        "SELECT COUNT(DISTINCT article.pk) AS with_contact FROM article "
        "JOIN ncontactauthor ON ncontactauthor.parent_pk = article.pk");
    run("contact-author reference resolution",
        "SELECT COUNT(*) AS refs, COUNT(target_pk) AS resolved "
        "FROM ref_authorid");
    run("schema-ordering metadata for 'article'",
        "SELECT position, child FROM xrel_schema_order "
        "WHERE element = 'article' ORDER BY position");
    return 0;
}
