// Quickstart: the paper's running example end to end.
//
//   1. Parse the books/articles/authors DTD (paper Example 1).
//   2. Run the four-step mapping (paper Figure 1), printing each stage:
//      the grouped DTD, the distilled DTD, the converted DTD (Example 2)
//      and the ER diagram (Figure 2, as text and Graphviz DOT).
//   3. Translate the ER model to a relational schema and print the DDL.
//   4. Load the paper's sample article and run a first SQL query.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "er/dot.hpp"
#include "gen/corpora.hpp"
#include "loader/loader.hpp"
#include "mapping/pipeline.hpp"
#include "rel/materialize.hpp"
#include "rel/translate.hpp"
#include "sql/executor.hpp"
#include "xml/parser.hpp"

int main() {
    using namespace xr;

    // 1. The logical DTD (entity/notation declarations already expanded).
    dtd::Dtd logical = gen::paper_dtd();
    std::cout << "=== Input DTD (paper Example 1) ===\n"
              << logical.to_string() << "\n";

    // 2. DTD → ER (paper Figure 1, four steps).
    mapping::MappingResult result = mapping::map_dtd(logical);
    std::cout << "=== Step 1: groups become virtual elements ===\n"
              << result.grouped.to_string() << "\n";
    std::cout << "=== Step 2: #PCDATA subelements distilled ===\n"
              << result.distilled.to_string() << "\n";
    std::cout << "=== Step 3: converted DTD (paper Example 2) ===\n"
              << result.converted.to_string() << "\n";
    std::cout << "=== Step 4: ER model (paper Figure 2) ===\n"
              << result.model.to_string() << "\n";
    std::cout << "=== Figure 2 as Graphviz DOT ===\n"
              << er::to_dot(result.model, {.title = "Paper Figure 2"}) << "\n";
    std::cout << "=== Captured metadata ===\n"
              << result.metadata.to_string() << "\n";

    // 3. ER → relational.
    rel::RelationalSchema schema = rel::translate(result);
    std::cout << "=== Relational DDL ===\n" << schema.ddl();

    // 4. Load the paper's sample document and query it.
    rdb::Database db;
    rel::materialize(schema, result, db);
    loader::Loader loader(logical, result, schema, db);
    auto doc = xml::parse_document(gen::paper_sample_document());
    loader.load(*doc);

    std::cout << "=== Loaded rows ===\n";
    for (const auto& name : db.table_names()) {
        const rdb::Table& t = db.require(name);
        if (t.row_count() > 0)
            std::cout << "  " << name << ": " << t.row_count() << " rows\n";
    }

    std::cout << "\n=== SQL: authors of 'XML RDBMS', in document order ===\n";
    auto rs = sql::execute(db,
                           "SELECT name.firstname, name.lastname FROM article "
                           "JOIN ng2 ON ng2.parent_pk = article.pk "
                           "JOIN author ON author.pk = ng2.author_pk "
                           "JOIN nname ON nname.parent_pk = author.pk "
                           "JOIN name ON name.pk = nname.child_pk "
                           "WHERE article.title = 'XML RDBMS' "
                           "ORDER BY ng2.ord");
    std::cout << rs.to_string();
    return 0;
}
