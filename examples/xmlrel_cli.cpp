// xmlrel_cli — a small command-line front end over the whole library, the
// shape of tool a downstream user would wrap around the paper's system.
//
//   xmlrel_cli map <dtd-file>
//       Print the converted DTD (Example 2 form), the ER diagram, the
//       Graphviz DOT and the relational DDL for a DTD.
//
//   xmlrel_cli load <dtd-file> <xml-file>... [--jobs N]
//                               [--on-error fail|skip|quarantine]
//                               [--data-dir DIR] [--checkpoint-every N]
//                               [--no-wal] [--max-depth N]
//                               [--sql "SELECT ..."]... [--query "/path"]...
//                               [--reconstruct N]
//                               [--serve-threads N] [--cache-mb M]
//       Map the DTD, validate and load the documents, then run SQL
//       statements and/or path queries (shown with their generated SQL),
//       and optionally reconstruct document N back to XML.  With
//       --jobs N (N != 1) the corpus goes through the parallel bulk-load
//       pipeline: N shredding workers (0 = one per hardware thread),
//       batched appends, one index rebuild, one IDREF resolution pass.
//       --on-error picks the failure policy: fail (default) rolls the
//       whole load back on the first bad document, skip drops bad
//       documents and keeps the rest, quarantine additionally records
//       each rejected document's text and error in xrel_quarantine.
//       --data-dir makes the database durable: the directory is recovered
//       on startup (checksummed snapshot + write-ahead-log replay, with
//       the recovery report printed), every committed load survives a
//       crash, and queries run against the recovered state.
//       --checkpoint-every N writes a fresh snapshot after every N
//       documents, bounding WAL replay time; --no-wal skips per-commit
//       logging and persists through a single final snapshot instead
//       (faster, but a crash mid-run loses the whole run).  --max-depth
//       caps element nesting during parsing (a malformed-input guard;
//       over-limit documents fail document-scoped under skip/quarantine).
//       --serve-threads N runs the --sql/--query workload through the
//       concurrent query service instead of inline: N worker threads,
//       snapshot-isolated reads, plan + result caches (sized by
//       --cache-mb, default 16), with cache statistics printed at the
//       end.  Serve mode prints result rows rather than materialized
//       XML for path queries.  --deadline-ms bounds each served query
//       (expired queries report "deadline exceeded"), --max-queue bounds
//       the admission queue (excess submissions are shed with a
//       retry-after hint), and --row-budget caps the rows any one query
//       may materialize; the end-of-run statistics include the
//       admitted/shed/expired counts and queue-wait percentiles.  --no-struct-index disables the structural
//       (pre, post) interval index for '//' / [ancestor::] translation,
//       falling back to the legacy join-chain expansion; --explain prints
//       an EXPLAIN line per path query: the translation summary plus the
//       cost-based plan (per-stage access path, estimated rows and cost).
//       --analyze rebuilds table statistics (ANALYZE) after loading and
//       prints the report; --no-planner disables the cost-based join
//       reordering so statements run exactly as translated/written.
//       --verify runs the online integrity checker after loading and
//       prints the report (exit 1 if it finds errors); --salvage opens
//       --data-dir in salvage mode — corrupt snapshot sections and WAL
//       records are skipped instead of failing recovery, documents they
//       damaged are quarantined in xrel_quarantine, and the repaired
//       state is re-checkpointed.  With --data-dir the <xml-file> list
//       may be empty, so `load schema.dtd --data-dir d --verify` checks
//       an existing database and `... --salvage --verify` repairs one.
//
//   xmlrel_cli validate <dtd-file> <xml-file>...
//       Validate documents against the DTD and report every issue.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <optional>
#include <sstream>

#include "dtd/parser.hpp"
#include "er/dot.hpp"
#include "loader/bulk_loader.hpp"
#include "loader/loader.hpp"
#include "loader/reconstruct.hpp"
#include "mapping/pipeline.hpp"
#include "query/service.hpp"
#include "rdb/integrity.hpp"
#include "rdb/snapshot.hpp"
#include "rel/materialize.hpp"
#include "rel/translate.hpp"
#include "sql/executor.hpp"
#include "sql/parser.hpp"
#include "sql/planner.hpp"
#include "validate/validator.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xquery/dom_eval.hpp"
#include "xquery/materialize.hpp"
#include "xquery/sql_translate.hpp"

namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw xr::Error("cannot open file: " + path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

int usage() {
    std::cerr << "usage:\n"
              << "  xmlrel_cli map <dtd-file>\n"
              << "  xmlrel_cli validate <dtd-file> <xml-file>...\n"
              << "  xmlrel_cli load <dtd-file> <xml-file>... [--jobs N] "
                 "[--on-error fail|skip|quarantine] "
                 "[--data-dir DIR] [--checkpoint-every N] [--no-wal] "
                 "[--max-depth N] "
                 "[--sql STMT]... [--query PATH]... [--reconstruct N] "
                 "[--serve-threads N] [--cache-mb M] "
                 "[--deadline-ms N] [--max-queue N] [--row-budget N] "
                 "[--no-struct-index] [--explain] [--analyze] "
                 "[--no-planner] [--verify] [--salvage]\n"
              << "    (with --data-dir the <xml-file> list may be empty: "
                 "--verify checks an\n"
              << "     existing database, --salvage repairs a corrupted "
                 "one)\n";
    return 2;
}

int cmd_map(const std::string& dtd_path) {
    xr::dtd::Dtd dtd = xr::dtd::parse_dtd(read_file(dtd_path));
    for (const auto& issue : dtd.lint())
        std::cerr << "lint: " << issue << "\n";
    xr::mapping::MappingResult m = xr::mapping::map_dtd(dtd);
    std::cout << "-- converted DTD --------------------------------------\n"
              << m.converted.to_string()
              << "-- ER model -------------------------------------------\n"
              << m.model.to_string()
              << "-- Graphviz DOT ---------------------------------------\n"
              << xr::er::to_dot(m.model)
              << "-- relational DDL -------------------------------------\n"
              << xr::rel::translate(m).ddl();
    return 0;
}

int cmd_validate(const std::string& dtd_path,
                 const std::vector<std::string>& xml_paths) {
    xr::dtd::Dtd dtd = xr::dtd::parse_dtd(read_file(dtd_path));
    xr::validate::Validator validator(dtd);
    int bad = 0;
    for (const auto& path : xml_paths) {
        auto doc = xr::xml::parse_document(read_file(path));
        auto result = validator.validate(*doc);
        if (result.ok()) {
            std::cout << path << ": valid\n";
        } else {
            ++bad;
            std::cout << path << ": INVALID\n";
            for (const auto& issue : result.issues)
                std::cout << "  " << issue.to_string() << "\n";
        }
    }
    return bad == 0 ? 0 : 1;
}

int cmd_load(const std::vector<std::string>& args) {
    std::string dtd_path;
    std::vector<std::string> xml_paths;
    std::vector<std::string> sql_statements;
    std::vector<std::string> path_queries;
    std::int64_t reconstruct_doc = -1;
    std::int64_t jobs = 1;  // 1 = serial loader; 0 = all hardware threads
    xr::loader::FailurePolicy on_error = xr::loader::FailurePolicy::kFailFast;
    std::string data_dir;
    std::int64_t checkpoint_every = 0;  // 0 = only where --no-wal requires one
    bool use_wal = true;
    std::int64_t max_depth = 0;   // 0 = parser default
    std::int64_t serve_threads = 0;  // 0 = inline execution (no service)
    std::int64_t cache_mb = 16;
    std::int64_t deadline_ms = 0;  // 0 = no per-query deadline
    std::int64_t max_queue = 0;    // 0 = unbounded admission
    std::int64_t row_budget = 0;   // 0 = unlimited materialization
    bool use_struct_index = true;
    bool explain = false;
    bool analyze = false;
    bool use_planner = true;
    bool verify = false;
    bool salvage = false;

    auto parse_policy = [&](const std::string& name) {
        if (name == "fail")
            on_error = xr::loader::FailurePolicy::kFailFast;
        else if (name == "skip")
            on_error = xr::loader::FailurePolicy::kSkip;
        else if (name == "quarantine")
            on_error = xr::loader::FailurePolicy::kQuarantine;
        else
            return false;
        return true;
    };

    // Integer option value; nullopt (→ usage) on missing or non-numeric.
    auto int_arg = [&](std::size_t& i) -> std::optional<std::int64_t> {
        if (i + 1 >= args.size()) return std::nullopt;
        try {
            return std::stoll(args[++i]);
        } catch (const std::exception&) {
            return std::nullopt;
        }
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--sql" && i + 1 < args.size()) {
            sql_statements.push_back(args[++i]);
        } else if (args[i] == "--query" && i + 1 < args.size()) {
            path_queries.push_back(args[++i]);
        } else if (args[i] == "--reconstruct") {
            auto v = int_arg(i);
            if (!v) return usage();
            reconstruct_doc = *v;
        } else if (args[i] == "--jobs") {
            auto v = int_arg(i);
            if (!v || *v < 0) return usage();
            jobs = *v;
        } else if (args[i] == "--data-dir" && i + 1 < args.size()) {
            data_dir = args[++i];
        } else if (args[i] == "--checkpoint-every") {
            auto v = int_arg(i);
            if (!v || *v <= 0) return usage();
            checkpoint_every = *v;
        } else if (args[i] == "--no-wal") {
            use_wal = false;
        } else if (args[i] == "--max-depth") {
            auto v = int_arg(i);
            if (!v || *v <= 0) return usage();
            max_depth = *v;
        } else if (args[i] == "--serve-threads") {
            auto v = int_arg(i);
            if (!v || *v <= 0) return usage();
            serve_threads = *v;
        } else if (args[i] == "--cache-mb") {
            auto v = int_arg(i);
            if (!v || *v < 0) return usage();
            cache_mb = *v;
        } else if (args[i] == "--deadline-ms") {
            auto v = int_arg(i);
            if (!v || *v <= 0) return usage();
            deadline_ms = *v;
        } else if (args[i] == "--max-queue") {
            auto v = int_arg(i);
            if (!v || *v <= 0) return usage();
            max_queue = *v;
        } else if (args[i] == "--row-budget") {
            auto v = int_arg(i);
            if (!v || *v <= 0) return usage();
            row_budget = *v;
        } else if (args[i] == "--no-struct-index") {
            use_struct_index = false;
        } else if (args[i] == "--explain") {
            explain = true;
        } else if (args[i] == "--analyze") {
            analyze = true;
        } else if (args[i] == "--no-planner") {
            use_planner = false;
        } else if (args[i] == "--verify") {
            verify = true;
        } else if (args[i] == "--salvage") {
            salvage = true;
        } else if (args[i] == "--on-error" && i + 1 < args.size()) {
            if (!parse_policy(args[++i])) return usage();
        } else if (args[i].rfind("--on-error=", 0) == 0) {
            if (!parse_policy(args[i].substr(sizeof("--on-error=") - 1)))
                return usage();
        } else if (args[i].rfind("--", 0) == 0) {
            return usage();  // unknown flag, not a file path
        } else if (dtd_path.empty()) {
            dtd_path = args[i];
        } else {
            xml_paths.push_back(args[i]);
        }
    }
    // Without --data-dir there is nothing to do but load, so documents
    // are required; with one, a document-less run can still recover,
    // verify or salvage an existing database.
    if (dtd_path.empty()) return usage();
    if (xml_paths.empty() && data_dir.empty()) return usage();

    if ((checkpoint_every > 0 || !use_wal) && data_dir.empty()) {
        std::cerr << "error: --checkpoint-every and --no-wal require "
                     "--data-dir\n";
        return 2;
    }
    if (salvage && data_dir.empty()) {
        std::cerr << "error: --salvage requires --data-dir\n";
        return 2;
    }

    xr::dtd::Dtd dtd = xr::dtd::parse_dtd(read_file(dtd_path));
    xr::mapping::MappingResult m = xr::mapping::map_dtd(dtd);
    xr::rel::RelationalSchema schema = xr::rel::translate(m);
    xr::rdb::Database db;
    if (!data_dir.empty()) {
        xr::rdb::DurabilityOptions dopts;
        dopts.use_wal = use_wal;
        if (salvage) dopts.recovery = xr::rdb::RecoveryMode::kSalvage;
        xr::rdb::RecoveryReport recovery = db.open(data_dir, dopts);
        std::cout << recovery.to_string() << "\n";
        if (db.table_count() == 0) {
            xr::rel::materialize(schema, m, db);
            db.flush_wal();
        }
    } else {
        xr::rel::materialize(schema, m, db);
    }
    std::vector<std::string> texts;
    texts.reserve(xml_paths.size());
    for (const auto& path : xml_paths) texts.push_back(read_file(path));

    // One load per --checkpoint-every chunk, snapshotting between chunks
    // so recovery never replays more than a chunk's worth of WAL.
    std::size_t chunk = checkpoint_every > 0
                            ? static_cast<std::size_t>(checkpoint_every)
                            : texts.size();
    xr::loader::LoadReport report;
    report.policy = on_error;
    auto merge_chunk = [&](xr::loader::LoadReport&& part, std::size_t base) {
        report.stats.merge(part.stats);
        report.stats.unresolved_references = part.stats.unresolved_references;
        report.attempted += part.attempted;
        report.loaded += part.loaded;
        report.failed += part.failed;
        report.quarantined += part.quarantined;
        report.retryable += part.retryable;
        report.leaked_pks += part.leaked_pks;
        for (auto& o : part.outcomes) {
            o.index += base;
            report.outcomes.push_back(std::move(o));
        }
        for (auto& e : part.errors) report.errors.push_back(std::move(e));
    };

    xr::loader::Loader serial_loader(dtd, m, schema, db);
    xr::loader::BulkLoader bulk_loader(dtd, m, schema, db);
    for (std::size_t base = 0; base < texts.size(); base += chunk) {
        std::vector<std::string> part(
            texts.begin() + static_cast<std::ptrdiff_t>(base),
            texts.begin() + static_cast<std::ptrdiff_t>(
                                std::min(base + chunk, texts.size())));
        if (jobs == 1) {
            xr::loader::LoadOptions opt;
            opt.on_error = on_error;
            if (max_depth > 0)
                opt.parse.max_depth = static_cast<std::size_t>(max_depth);
            merge_chunk(serial_loader.load_texts(part, opt), base);
        } else {
            xr::loader::BulkLoadOptions opt;
            opt.jobs = static_cast<std::size_t>(jobs);
            opt.validate = true;
            opt.on_error = on_error;
            if (max_depth > 0)
                opt.parse.max_depth = static_cast<std::size_t>(max_depth);
            merge_chunk(bulk_loader.load_texts(part, opt), base);
        }
        if (checkpoint_every > 0 && base + chunk < texts.size()) {
            xr::rdb::SnapshotStats snap = db.checkpoint();
            std::cout << "checkpoint: " << snap.tables << " table(s), "
                      << snap.rows << " row(s), " << snap.bytes << " bytes\n";
        }
    }
    if (jobs != 1)
        std::cout << "bulk-loaded " << report.loaded << " document(s) with "
                  << (jobs == 0 ? "all hardware threads"
                                : std::to_string(jobs) + " worker(s)")
                  << "\n";
    // Without a WAL nothing has reached disk yet; with --checkpoint-every
    // the final chunk's WAL tail is folded into a last snapshot too.
    if (!data_dir.empty() && (!use_wal || checkpoint_every > 0)) {
        xr::rdb::SnapshotStats snap = db.checkpoint();
        std::cout << "final snapshot: " << snap.rows << " row(s), "
                  << snap.bytes << " bytes\n";
    }
    for (const auto& o : report.outcomes) {
        using Status = xr::loader::DocumentOutcome::Status;
        if (o.status == Status::kLoaded) {
            std::cout << "loaded " << xml_paths[o.index] << " as doc " << o.doc
                      << "\n";
        } else {
            std::cout << (o.status == Status::kQuarantined ? "quarantined "
                                                           : "skipped ")
                      << xml_paths[o.index] << ": [" << o.error_type << "] "
                      << o.error << "\n";
        }
    }
    const xr::loader::LoadStats& st = report.stats;
    std::cout << st.documents << " documents, " << st.elements_visited
              << " elements, " << st.total_rows() << " rows, "
              << st.resolved_references << " references resolved";
    if (report.failed > 0)
        std::cout << " (" << report.failed << " document(s) rejected under "
                  << xr::loader::to_string(report.policy) << ")";
    std::cout << "\n";

    if (analyze) std::cout << db.analyze().to_string() << "\n";

    if (verify) {
        xr::rdb::IntegrityReport integrity = db.verify();
        std::cout << "\n" << integrity.to_string() << "\n";
        if (!integrity.clean()) return 1;
    }

    // EXPLAIN rendering for a translated path query: the translation
    // summary plus the cost-based plan over the generated SQL.
    auto print_explain = [&](const xr::xquery::Translation& t) {
        std::cout << "  plan: "
                  << (t.interval_plan ? "interval" : "navigational") << ", "
                  << t.join_count << " join(s)"
                  << (t.plan_notes.empty() ? "" : "; " + t.plan_notes) << "\n";
        try {
            xr::sql::SelectStmt stmt = xr::sql::parse_select(t.sql);
            xr::sql::PlannerOptions popts;
            popts.enable = use_planner;
            xr::sql::PlanInfo info = xr::sql::plan_select(db, stmt, popts);
            std::cout << "  " << info.to_string() << "\n";
        } catch (const xr::Error& e) {
            std::cout << "  plan: (not costed: " << e.what() << ")\n";
        }
    };

    // Parsed DOM views back the --query DOM-evaluation fallback; under
    // skip/quarantine a rejected document may not parse at all.
    std::vector<std::unique_ptr<xr::xml::Document>> docs;
    if (!path_queries.empty()) {
        for (const auto& text : texts) {
            try {
                docs.push_back(xr::xml::parse_document(text));
            } catch (const xr::Error&) {
            }
        }
    }

    if (serve_threads > 0) {
        // Serve mode: the whole --sql/--query workload goes through the
        // query service — submitted up front, drained by the worker pool,
        // results printed in submission order.
        xr::query::ServiceOptions sopts;
        sopts.threads = static_cast<std::size_t>(serve_threads);
        sopts.result_cache_bytes = static_cast<std::size_t>(cache_mb) << 20;
        sopts.use_struct_index = use_struct_index;
        sopts.use_planner = use_planner;
        sopts.default_deadline = std::chrono::milliseconds(deadline_ms);
        sopts.max_queue = static_cast<std::size_t>(max_queue);
        sopts.row_budget = static_cast<std::size_t>(row_budget);
        xr::query::QueryService service(db, m, schema, sopts);
        // A shed submission never yields a handle; keep slots aligned
        // with the workload so results print in submission order.
        std::vector<std::optional<xr::query::QueryService::Submission>>
            sql_subs;
        std::vector<std::optional<xr::query::QueryService::Submission>>
            path_subs;
        auto submit = [&](auto&& fn) {
            try {
                return std::optional<xr::query::QueryService::Submission>(
                    fn());
            } catch (const xr::Overloaded& e) {
                std::cout << "  shed: " << e.what() << "\n";
                return std::optional<xr::query::QueryService::Submission>();
            }
        };
        for (const auto& stmt : sql_statements)
            sql_subs.push_back(submit([&] { return service.submit_sql(stmt); }));
        for (const auto& text : path_queries)
            path_subs.push_back(
                submit([&] { return service.submit_path(text); }));
        for (std::size_t i = 0; i < sql_subs.size(); ++i) {
            std::cout << "\nsql> " << sql_statements[i] << "\n";
            if (!sql_subs[i]) {
                std::cout << "  shed at admission\n";
                continue;
            }
            try {
                std::cout << sql_subs[i]->get()->to_string();
            } catch (const xr::Error& e) {
                std::cout << "  error: " << e.what() << "\n";
            }
        }
        for (std::size_t i = 0; i < path_subs.size(); ++i) {
            std::cout << "\nquery> " << path_queries[i] << "\n";
            if (!path_subs[i]) {
                std::cout << "  shed at admission\n";
                continue;
            }
            try {
                xr::xquery::Translation t = service.translate(path_queries[i]);
                std::cout << "  sql: " << t.sql << "\n";
                if (explain) {
                    // Plan under a read snapshot: statistics and tables
                    // stay stable while the service is draining writes.
                    xr::rdb::ReadSnapshot snap = db.read_snapshot();
                    print_explain(t);
                }
                std::cout << path_subs[i]->get()->to_string();
            } catch (const xr::QueryError& e) {
                std::cout << "  not translatable (" << e.what() << ")\n";
            } catch (const xr::CancelledError& e) {
                std::cout << "  " << e.what() << "\n";
            }
        }
        xr::query::ServiceStats sst = service.stats();
        std::cout << "\nserved " << sst.sql_queries << " sql + "
                  << sst.path_queries << " path queries on " << serve_threads
                  << " thread(s); result cache " << sst.result_cache.hits
                  << " hit(s) / " << sst.result_cache.misses
                  << " miss(es); plan cache " << sst.plan_cache.hits
                  << " hit(s) / " << sst.plan_cache.misses << " miss(es)\n";
        const xr::query::OverloadStats& ov = sst.overload;
        std::cout << "admission: " << ov.admitted << " admitted, " << ov.shed
                  << " shed, " << ov.expired << " expired, " << ov.cancelled
                  << " cancelled; queue high-water " << ov.queue_high_water
                  << ", wait p50 " << ov.p50_queue_wait_us << "us / p99 "
                  << ov.p99_queue_wait_us << "us\n";
    }

    xr::sql::PlannerOptions planner_opts;
    planner_opts.enable = use_planner;
    if (serve_threads == 0)
        for (const auto& stmt : sql_statements) {
            std::cout << "\nsql> " << stmt << "\n";
            std::cout << xr::sql::execute(db, stmt, nullptr, {}, &planner_opts)
                             .to_string();
        }

    if (serve_threads == 0 && !path_queries.empty()) {
        xr::xquery::SqlTranslator translator(m, schema);
        xr::loader::Reconstructor reconstructor(m, schema, db);
        for (const auto& text : path_queries) {
            std::cout << "\nquery> " << text << "\n";
            auto q = xr::xquery::parse_query(text);
            try {
                xr::xquery::TranslateOptions topts;
                topts.use_struct_index = use_struct_index;
                auto t = translator.translate(q, topts);
                std::cout << "  sql: " << t.sql << "\n";
                if (explain) print_explain(t);
                auto results =
                    xr::xquery::materialize_results(db, t, reconstructor);
                std::cout << xr::xml::serialize(*results,
                                                {.declaration = false});
            } catch (const xr::QueryError& e) {
                std::cout << "  not translatable (" << e.what()
                          << "); DOM evaluation:\n";
                std::vector<const xr::xml::Document*> views;
                for (auto& d : docs) views.push_back(d.get());
                auto dom = xr::xquery::evaluate(views, q);
                std::cout << "  " << dom.size() << " result(s)\n";
            }
        }
    }

    if (reconstruct_doc > 0) {
        xr::loader::Reconstructor reconstructor(m, schema, db);
        std::cout << "\n-- reconstructed doc " << reconstruct_doc
                  << " ----------------------------\n"
                  << xr::xml::serialize(*reconstructor.reconstruct(reconstruct_doc),
                                        {.declaration = false});
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) return usage();
    try {
        if (args[0] == "map" && args.size() == 2) return cmd_map(args[1]);
        if (args[0] == "validate" && args.size() >= 3)
            return cmd_validate(args[1], {args.begin() + 2, args.end()});
        if (args[0] == "load" && args.size() >= 3)
            return cmd_load({args.begin() + 1, args.end()});
        return usage();
    } catch (const xr::Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
