// Golden reproduction of the paper's running example:
//   * step 1 output (grouped DTD, Section 4 example),
//   * step 2 output (distilled attributes),
//   * the converted DTD of Example 2 — checked verbatim,
//   * the ER diagram of Figure 2 — checked structurally,
//   * the captured metadata.
#include <gtest/gtest.h>

#include "er/dot.hpp"
#include "gen/corpora.hpp"
#include "mapping/pipeline.hpp"

namespace xr::mapping {
namespace {

class PaperMapping : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        result_ = new MappingResult(map_dtd(gen::paper_dtd()));
    }
    static void TearDownTestSuite() {
        delete result_;
        result_ = nullptr;
    }
    static MappingResult* result_;
};

MappingResult* PaperMapping::result_ = nullptr;

TEST_F(PaperMapping, Step1DefinesGroupElementsExactlyAsSection4) {
    const dtd::Dtd& g = result_->grouped;
    // "<!ELEMENT book (booktitle, (author* | editor))> is replaced by
    //  <!ELEMENT book (booktitle, G1)> <!ELEMENT G1 (author* | editor)>"
    EXPECT_EQ(g.element("book")->content.particle.to_string(),
              "(booktitle, G1)");
    EXPECT_EQ(g.element("G1")->content.particle.to_string(),
              "(author* | editor)");
    EXPECT_EQ(g.element("article")->content.particle.to_string(),
              "(title, G2+, contactauthor?)");
    EXPECT_EQ(g.element("G2")->content.particle.to_string(),
              "(author, affiliation?)");
    EXPECT_EQ(g.element("editor")->content.particle.to_string(), "(G3*)");
    EXPECT_EQ(g.element("G3")->content.particle.to_string(),
              "(book | monograph)");
    // monograph contains no group and is untouched.
    EXPECT_EQ(g.element("monograph")->content.particle.to_string(),
              "(title, author, editor)");
}

TEST_F(PaperMapping, Step2DistillsAttributes) {
    const dtd::Dtd& d = result_->distilled;
    // "<!ELEMENT book (G1)> <!ATTLIST book booktitle (#PCDATA) #REQUIRED>"
    EXPECT_EQ(d.element("book")->content.particle.to_string(), "(G1)");
    const dtd::AttributeDecl* bt = d.element("book")->attribute("booktitle");
    ASSERT_NE(bt, nullptr);
    EXPECT_EQ(bt->type, dtd::AttrType::kPCData);
    EXPECT_EQ(bt->default_kind, dtd::AttrDefaultKind::kRequired);

    // name (firstname?, lastname) → firstname #IMPLIED, lastname #REQUIRED.
    const dtd::ElementDecl* name = d.element("name");
    EXPECT_EQ(name->attribute("firstname")->default_kind,
              dtd::AttrDefaultKind::kImplied);
    EXPECT_EQ(name->attribute("lastname")->default_kind,
              dtd::AttrDefaultKind::kRequired);

    // The distilled #PCDATA declarations are gone.
    for (const char* gone : {"booktitle", "title", "firstname", "lastname"})
        EXPECT_FALSE(d.has_element(gone)) << gone;
    // Undistilled elements remain.
    EXPECT_TRUE(d.has_element("affiliation"));
    EXPECT_TRUE(d.has_element("contactauthor"));
}

TEST_F(PaperMapping, ConvertedDtdMatchesExample2) {
    const char* kExample2 =
        "<!ELEMENT book ()>\n"
        "<!ATTLIST book booktitle (#PCDATA) #REQUIRED>\n"
        "<!NESTED_GROUP NG1 book (author* | editor)>\n"
        "<!ELEMENT article ()>\n"
        "<!ATTLIST article title (#PCDATA) #REQUIRED>\n"
        "<!NESTED_GROUP NG2 article (author, affiliation?)>\n"
        "<!NESTED Ncontactauthor article contactauthor>\n"
        "<!ELEMENT contactauthor EMPTY>\n"
        "<!REFERENCE authorid contactauthor (author)>\n"
        "<!ELEMENT monograph ()>\n"
        "<!ATTLIST monograph title (#PCDATA) #REQUIRED>\n"
        "<!NESTED Nauthor monograph author>\n"
        "<!NESTED Neditor monograph editor>\n"
        "<!ELEMENT editor ()>\n"
        "<!ATTLIST editor name CDATA #REQUIRED>\n"
        "<!NESTED_GROUP NG3 editor (book | monograph)>\n"
        "<!ELEMENT author ()>\n"
        "<!ATTLIST author id ID #REQUIRED>\n"
        "<!NESTED Nname author name>\n"
        "<!ELEMENT name ()>\n"
        "<!ATTLIST name\n"
        "    firstname (#PCDATA) #IMPLIED\n"
        "    lastname (#PCDATA) #REQUIRED>\n"
        "<!ELEMENT affiliation ANY>\n";
    EXPECT_EQ(result_->converted.to_string(), kExample2);
}

TEST_F(PaperMapping, Figure2Entities) {
    const er::Model& m = result_->model;
    ASSERT_EQ(m.entities().size(), 8u);
    std::vector<std::string> names;
    for (const auto& e : m.entities()) names.push_back(e.name);
    EXPECT_EQ(names, (std::vector<std::string>{"book", "article", "contactauthor",
                                               "monograph", "editor", "author",
                                               "name", "affiliation"}));
    EXPECT_EQ(m.entity("contactauthor")->origin,
              er::EntityOrigin::kEmptyElement);
    EXPECT_EQ(m.entity("affiliation")->origin, er::EntityOrigin::kAnyElement);
}

TEST_F(PaperMapping, Figure2Attributes) {
    const er::Model& m = result_->model;
    EXPECT_NE(m.entity("book")->attribute("booktitle"), nullptr);
    EXPECT_NE(m.entity("article")->attribute("title"), nullptr);
    EXPECT_NE(m.entity("monograph")->attribute("title"), nullptr);
    EXPECT_NE(m.entity("editor")->attribute("name"), nullptr);
    EXPECT_NE(m.entity("author")->attribute("id"), nullptr);
    EXPECT_NE(m.entity("name")->attribute("firstname"), nullptr);
    EXPECT_NE(m.entity("name")->attribute("lastname"), nullptr);
    // Distillation provenance is preserved.
    EXPECT_EQ(m.entity("book")->attribute("booktitle")->origin,
              er::AttributeOrigin::kDistilled);
    EXPECT_EQ(m.entity("editor")->attribute("name")->origin,
              er::AttributeOrigin::kDeclared);
    // Figure 2 total: 7 attribute ovals.
    EXPECT_EQ(m.attribute_count(), 7u);
}

TEST_F(PaperMapping, Figure2RelationshipNodes) {
    const er::Model& m = result_->model;
    ASSERT_EQ(m.relationships().size(), 8u);

    const er::Relationship* ng1 = m.relationship("NG1");
    ASSERT_NE(ng1, nullptr);
    EXPECT_EQ(ng1->kind, er::RelationshipKind::kNestedGroup);
    EXPECT_EQ(ng1->parent, "book");
    ASSERT_EQ(ng1->members.size(), 2u);
    EXPECT_EQ(ng1->members[0].entity, "author");
    EXPECT_TRUE(ng1->members[0].choice);  // circled-plus arcs
    EXPECT_EQ(ng1->members[0].occurrence, dtd::Occurrence::kZeroOrMore);
    EXPECT_EQ(ng1->members[1].entity, "editor");
    EXPECT_TRUE(ng1->members[1].choice);

    const er::Relationship* ng2 = m.relationship("NG2");
    ASSERT_NE(ng2, nullptr);
    EXPECT_EQ(ng2->parent, "article");
    EXPECT_EQ(ng2->occurrence, dtd::Occurrence::kOneOrMore);
    ASSERT_EQ(ng2->members.size(), 2u);
    EXPECT_FALSE(ng2->members[0].choice);  // sequence group
    EXPECT_EQ(ng2->members[1].entity, "affiliation");
    EXPECT_EQ(ng2->members[1].occurrence, dtd::Occurrence::kOptional);

    const er::Relationship* ng3 = m.relationship("NG3");
    ASSERT_NE(ng3, nullptr);
    EXPECT_EQ(ng3->parent, "editor");
    EXPECT_EQ(ng3->occurrence, dtd::Occurrence::kZeroOrMore);
    EXPECT_TRUE(ng3->members[0].choice);

    for (const char* nested : {"Ncontactauthor", "Nauthor", "Neditor", "Nname"}) {
        const er::Relationship* r = m.relationship(nested);
        ASSERT_NE(r, nullptr) << nested;
        EXPECT_EQ(r->kind, er::RelationshipKind::kNested) << nested;
        EXPECT_EQ(r->members.size(), 1u) << nested;
    }
    EXPECT_EQ(m.relationship("Ncontactauthor")->parent, "article");
    EXPECT_EQ(m.relationship("Nauthor")->parent, "monograph");
    EXPECT_EQ(m.relationship("Nname")->parent, "author");

    const er::Relationship* ref = m.relationship("authorid");
    ASSERT_NE(ref, nullptr);
    EXPECT_EQ(ref->kind, er::RelationshipKind::kReference);
    EXPECT_EQ(ref->parent, "contactauthor");
    ASSERT_EQ(ref->members.size(), 1u);
    EXPECT_EQ(ref->members[0].entity, "author");
    EXPECT_TRUE(ref->members[0].choice);
}

TEST_F(PaperMapping, Figure2DotExportContainsAllNodes) {
    std::string dot = er::to_dot(result_->model, {.title = "Figure 2"});
    for (const char* node :
         {"book", "article", "contactauthor", "monograph", "editor", "author",
          "name", "affiliation", "NG1", "NG2", "NG3", "Ncontactauthor",
          "Nauthor", "Neditor", "Nname", "authorid"})
        EXPECT_NE(dot.find("\"" + std::string(node) + "\""), std::string::npos)
            << node;
    EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
    EXPECT_NE(dot.find("(+)"), std::string::npos);
}

TEST_F(PaperMapping, MetadataSchemaOrdering) {
    auto find = [&](const std::string& element) {
        for (const auto& o : result_->metadata.schema_order)
            if (o.element == element) return o.children_in_order;
        return std::vector<std::string>{};
    };
    EXPECT_EQ(find("book"),
              (std::vector<std::string>{"booktitle", "author", "editor"}));
    EXPECT_EQ(find("article"), (std::vector<std::string>{
                                   "title", "author", "affiliation",
                                   "contactauthor"}));
    EXPECT_EQ(find("name"), (std::vector<std::string>{"firstname", "lastname"}));
}

TEST_F(PaperMapping, MetadataOccurrences) {
    const Metadata& meta = result_->metadata;
    EXPECT_EQ(meta.occurrence_of("article", "G2"), dtd::Occurrence::kOneOrMore);
    EXPECT_EQ(meta.occurrence_of("NG1", "author"), dtd::Occurrence::kZeroOrMore);
    EXPECT_EQ(meta.occurrence_of("NG2", "affiliation"),
              dtd::Occurrence::kOptional);
    EXPECT_EQ(meta.occurrence_of("editor", "G3"), dtd::Occurrence::kZeroOrMore);
    EXPECT_EQ(meta.occurrence_of("article", "contactauthor"),
              dtd::Occurrence::kOptional);
    EXPECT_FALSE(meta.occurrence_of("article", "nope").has_value());
}

TEST_F(PaperMapping, MetadataDistilledAttributes) {
    const Metadata& meta = result_->metadata;
    ASSERT_EQ(meta.distilled.size(), 5u);
    auto of = meta.distilled_of("name");
    ASSERT_EQ(of.size(), 2u);
    EXPECT_EQ(of[0]->attribute, "firstname");
    EXPECT_TRUE(of[0]->optional);
    EXPECT_EQ(of[1]->attribute, "lastname");
    EXPECT_FALSE(of[1]->optional);
    // title distilled into two different owners.
    EXPECT_EQ(meta.distilled_of("article").size(), 1u);
    EXPECT_EQ(meta.distilled_of("monograph").size(), 1u);
}

TEST_F(PaperMapping, MetadataGroups) {
    const Metadata& meta = result_->metadata;
    ASSERT_EQ(meta.groups.size(), 3u);
    const GroupElement* g1 = meta.group("G1");
    ASSERT_NE(g1, nullptr);
    EXPECT_EQ(g1->parent, "book");
    EXPECT_EQ(g1->kind, dtd::ParticleKind::kChoice);
    const GroupElement* g2 = meta.group("G2");
    EXPECT_EQ(g2->occurrence, dtd::Occurrence::kOneOrMore);
    EXPECT_EQ(g2->kind, dtd::ParticleKind::kSequence);
    const GroupElement* g3 = meta.group("G3");
    EXPECT_EQ(g3->occurrence, dtd::Occurrence::kZeroOrMore);
}

TEST_F(PaperMapping, PipelineIsDeterministic) {
    MappingResult again = map_dtd(gen::paper_dtd());
    EXPECT_EQ(again.converted.to_string(), result_->converted.to_string());
    EXPECT_EQ(again.model.to_string(), result_->model.to_string());
}

}  // namespace
}  // namespace xr::mapping
