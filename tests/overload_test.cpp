// Overload-resilience tests (ctest label `overload`): admission control
// shedding with typed Overloaded, deadline expiry at the queue and inside
// the executor, cooperative cancellation of abandoned submissions while a
// retrying write holds the write latch, bounded write retry (success and
// exhaustion), typed shutdown rejection racing submitters, and exactness
// of the OverloadStats accounting under concurrency.  Runs in both
// sanitizer lanes driven by scripts/sanitize_lane.sh.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "gen/corpora.hpp"
#include "helpers.hpp"
#include "query/service.hpp"

namespace xr {
namespace {

using test::Stack;

constexpr const char* kCount = "SELECT COUNT(*) FROM article";

/// A disarmed-on-exit guard so a failing test never leaks an armed fault
/// point into the next one.
struct FaultGuard {
    ~FaultGuard() { fault::disarm(); }
};

// A service with no workers never drains its queue, which makes the
// admission bound exactly observable: max_queue submissions are admitted,
// the next is shed with the typed Overloaded carrying the observed depth
// and a non-zero retry-after hint.
TEST(Overload, QueueFullShedsWithTypedOverloaded) {
    Stack stack(gen::paper_dtd());
    query::ServiceOptions opts;
    opts.threads = 0;
    opts.max_queue = 2;
    query::QueryService service(stack.db, stack.mapping, stack.schema, opts);

    query::QueryService::Submission a = service.submit_sql(kCount);
    query::QueryService::Submission b = service.submit_sql(kCount);
    try {
        query::QueryService::Submission c = service.submit_sql(kCount);
        FAIL() << "third submission should have been shed";
    } catch (const Overloaded& e) {
        EXPECT_EQ(e.queue_depth(), 2u);
        EXPECT_GE(e.retry_after_ms(), 1u);
    }

    // The `service.admit` fault point sheds exactly like a full queue —
    // how the bench and ops drills provoke Overloaded on demand.
    FaultGuard guard;
    fault::arm("service.admit");
    EXPECT_THROW((void)service.submit_sql(kCount), Overloaded);
    EXPECT_TRUE(fault::fired());

    query::ServiceStats st = service.stats();
    EXPECT_EQ(st.overload.admitted, 2u);
    EXPECT_EQ(st.overload.shed, 2u);
    EXPECT_EQ(st.overload.queue_high_water, 2u);
    // a and b are abandoned on scope exit; their tokens get cancelled and
    // the never-started tasks are dropped at service destruction.
}

// An already-expired deadline terminates a legacy ('//' join chain) path
// query with DeadlineExceeded before any row is produced, and a healthy
// query on the same service is unaffected — a dead query never blocks
// the pool.
TEST(Overload, DeadlineExpiresLegacyChainQuery) {
    Stack stack(gen::paper_dtd());
    auto corpus = gen::bibliography_corpus(8, 60, 11);
    for (auto& doc : corpus) stack.loader->load(*doc);

    query::ServiceOptions opts;
    opts.threads = 2;
    opts.use_struct_index = false;  // legacy join-chain translation
    opts.result_cache_bytes = 0;    // always execute, never serve cached
    query::QueryService service(stack.db, stack.mapping, stack.schema, opts);

    CancelToken dead = CancelToken::make(
        {Deadline::after(std::chrono::microseconds(1)), 0, 0});
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_THROW((void)service.path("//author", dead), DeadlineExceeded);

    query::QueryService::Submission healthy =
        service.submit_path("count(//author)");
    EXPECT_GT(healthy.get()->scalar().as_integer(), 0);
}

// The executor really polls its token mid-join: a huge-countdown arm on
// `exec.cancel_poll` never fires but records every checkpoint reached,
// and the service-level ExecStats counter agrees.
TEST(Overload, ExecutorReachesCancelCheckpointsMidJoin) {
    Stack stack(gen::paper_dtd());
    auto corpus = gen::bibliography_corpus(8, 60, 13);
    for (auto& doc : corpus) stack.loader->load(*doc);

    query::ServiceOptions opts;
    opts.threads = 0;
    opts.result_cache_bytes = 0;
    query::QueryService service(stack.db, stack.mapping, stack.schema, opts);

    FaultGuard guard;
    fault::arm("exec.cancel_poll", 1000000000L);
    (void)service.path("/article/author");
    EXPECT_GT(fault::hits(), 0) << "no cancellation checkpoint was reached";
    EXPECT_FALSE(fault::fired());
    fault::disarm();
    EXPECT_GT(service.stats().exec.cancel_polls, 0u);
}

// Materialization budgets cut a query off deterministically: a row budget
// smaller than the result raises ResourceExhausted, as does a byte budget
// smaller than one fat text row.
TEST(Overload, MaterializationBudgetsBound) {
    Stack stack(gen::paper_dtd());
    auto corpus = gen::bibliography_corpus(12, 30, 17);  // 12 article rows
    for (auto& doc : corpus) stack.loader->load(*doc);

    query::ServiceOptions opts;
    opts.threads = 0;
    opts.result_cache_bytes = 0;
    opts.row_budget = 5;
    query::QueryService service(stack.db, stack.mapping, stack.schema, opts);
    EXPECT_THROW((void)service.sql("SELECT * FROM article"),
                 ResourceExhausted);
    // Under the budget nothing fires.
    EXPECT_EQ(service.sql(kCount)->scalar().as_integer() > 0, true);

    query::ServiceOptions bopts;
    bopts.threads = 0;
    bopts.result_cache_bytes = 0;
    bopts.byte_budget = 64;
    query::QueryService bytes_svc(stack.db, stack.mapping, stack.schema,
                                  bopts);
    EXPECT_THROW((void)bytes_svc.sql("SELECT * FROM article"),
                 ResourceExhausted);
}

// A deadline stamped at admission keeps counting through the queue wait:
// while the single worker is stuck in write-retry backoff (the injected
// transient fault — the write latch is held the whole time), a queued
// SELECT's deadline lapses and it terminates with DeadlineExceeded
// without ever executing.
TEST(Overload, DeadlineExpiresInQueueBehindRetryingWrite) {
    Stack stack(gen::paper_dtd());
    query::ServiceOptions opts;
    opts.threads = 1;
    opts.default_deadline = std::chrono::milliseconds(5);
    opts.write_retry_limit = 3;
    opts.write_retry_backoff = std::chrono::milliseconds(25);
    query::QueryService service(stack.db, stack.mapping, stack.schema, opts);
    service.execute_write("CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)",
                          CancelToken{});

    FaultGuard guard;
    fault::arm("write.retry", 1);
    query::QueryService::Submission write =
        service.submit_sql("INSERT INTO kv (k, v) VALUES (1, 'a')");
    query::QueryService::Submission read = service.submit_sql(kCount);

    // The write faults once, sleeps its 25ms backoff, and then trips its
    // own 5ms deadline; the read sat queued past its deadline either way.
    EXPECT_THROW((void)write.get(), DeadlineExceeded);
    EXPECT_THROW((void)read.get(), DeadlineExceeded);
    fault::disarm();

    query::ServiceStats st = service.stats();
    EXPECT_EQ(st.overload.expired, 2u);
    EXPECT_EQ(st.overload.shed, 0u);
    EXPECT_LE(st.overload.write_retries, 1u);
    EXPECT_GE(st.overload.queue_high_water, 1u);
    EXPECT_GT(st.overload.p99_queue_wait_us, 0u);

    // The faulted write rolled back: no partial row became visible.
    EXPECT_EQ(service.sql("SELECT COUNT(*) FROM kv", CancelToken{})
                  ->scalar()
                  .as_integer(),
              0);
}

// Abandoning a Submission cancels the query it names: a read queued
// behind a slow (retrying, latch-holding) write is dropped before its
// handle's destruction resolves it, and the worker classifies it as
// cancelled without executing it.  The write itself retries to success.
TEST(Overload, AbandonedSubmissionIsCancelledWhileWriteHoldsLatch) {
    Stack stack(gen::paper_dtd());
    query::ServiceOptions opts;
    opts.threads = 1;
    opts.write_retry_limit = 3;
    opts.write_retry_backoff = std::chrono::milliseconds(25);
    query::QueryService service(stack.db, stack.mapping, stack.schema, opts);
    service.execute_write("CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)",
                          CancelToken{});

    FaultGuard guard;
    fault::arm("write.retry", 1, false, 2);  // two transient faults
    query::QueryService::Submission write =
        service.submit_sql("INSERT INTO kv (k, v) VALUES (1, 'a')");
    {
        // Queued behind ≥75ms of retry backoff, then abandoned.
        query::QueryService::Submission dropped =
            service.submit_sql(kCount);
        EXPECT_TRUE(dropped.valid());
    }
    (void)write.get();  // the write survives its transient faults
    fault::disarm();

    // FIFO: once this resolves, the abandoned job was already classified.
    query::QueryService::Submission after = service.submit_sql(kCount);
    EXPECT_GE(after.get()->scalar().as_integer(), 0);

    query::ServiceStats st = service.stats();
    EXPECT_EQ(st.overload.cancelled, 1u);
    EXPECT_EQ(st.overload.write_retries, 2u);
    EXPECT_EQ(service.sql("SELECT COUNT(*) FROM kv")->scalar().as_integer(),
              1);
}

// Retry exhaustion: when the fault keeps firing past write_retry_limit,
// the last error surfaces to the caller and every attempt rolled back.
TEST(Overload, WriteRetryExhaustionSurfacesAndRollsBack) {
    Stack stack(gen::paper_dtd());
    query::ServiceOptions opts;
    opts.threads = 0;
    opts.write_retry_limit = 2;
    opts.write_retry_backoff = std::chrono::milliseconds(1);
    query::QueryService service(stack.db, stack.mapping, stack.schema, opts);
    service.execute_write("CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)");

    FaultGuard guard;
    fault::arm("write.retry", 1, false, 100);  // never stops failing
    EXPECT_THROW(
        service.execute_write("INSERT INTO kv (k, v) VALUES (1, 'a')"),
        fault::InjectedFault);
    fault::disarm();

    query::ServiceStats st = service.stats();
    EXPECT_EQ(st.overload.write_retries, 2u);
    EXPECT_EQ(service.sql("SELECT COUNT(*) FROM kv")->scalar().as_integer(),
              0);
}

// The shutdown race (TSan regression): submitters hammering the service
// while another thread shuts it down either get their result (admitted
// before the stop, drained by the workers) or the typed ShuttingDown —
// never a future that hangs.  shutdown() is idempotent and the service
// keeps rejecting with the typed error afterwards.
TEST(Overload, ShutdownRacingSubmittersRejectsTyped) {
    Stack stack(gen::paper_dtd());
    query::ServiceOptions opts;
    opts.threads = 2;
    query::QueryService service(stack.db, stack.mapping, stack.schema, opts);

    constexpr int kSubmitters = 4;
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> rejected{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int i = 0; i < kSubmitters; ++i)
        submitters.emplace_back([&] {
            for (int n = 0; n < 100000; ++n) {
                try {
                    query::QueryService::Submission s =
                        service.submit_sql(kCount);
                    (void)s.get();
                    served.fetch_add(1, std::memory_order_relaxed);
                } catch (const ShuttingDown&) {
                    rejected.fetch_add(1, std::memory_order_relaxed);
                    return;
                }
            }
        });

    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    service.shutdown();
    for (auto& t : submitters) t.join();
    service.shutdown();  // idempotent

    EXPECT_THROW((void)service.submit_sql(kCount), ShuttingDown);
    EXPECT_GT(served.load(), 0u);
    EXPECT_EQ(rejected.load(), kSubmitters);
}

// OverloadStats bookkeeping is exact under concurrency: across racing
// submitters every attempt is classified exactly once, so
// admitted == completed and shed == observed Overloaded throws.
TEST(Overload, StatsExactUnderConcurrentShedding) {
    Stack stack(gen::paper_dtd());
    auto corpus = gen::bibliography_corpus(2, 30, 19);
    for (auto& doc : corpus) stack.loader->load(*doc);

    query::ServiceOptions opts;
    opts.threads = 2;
    opts.max_queue = 4;
    query::QueryService service(stack.db, stack.mapping, stack.schema, opts);

    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 200;
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> shed{0};
    std::vector<std::thread> submitters;
    for (int i = 0; i < kSubmitters; ++i)
        submitters.emplace_back([&] {
            for (int n = 0; n < kPerThread; ++n) {
                try {
                    query::QueryService::Submission s =
                        service.submit_path("count(/article/author)");
                    (void)s.get();
                    ok.fetch_add(1, std::memory_order_relaxed);
                } catch (const Overloaded& e) {
                    EXPECT_LE(e.queue_depth(), 4u);
                    shed.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    for (auto& t : submitters) t.join();

    EXPECT_EQ(ok.load() + shed.load(),
              static_cast<std::uint64_t>(kSubmitters) * kPerThread);
    query::ServiceStats st = service.stats();
    EXPECT_EQ(st.overload.admitted, ok.load());
    EXPECT_EQ(st.overload.shed, shed.load());
    EXPECT_EQ(st.overload.expired, 0u);
    EXPECT_EQ(st.overload.cancelled, 0u);
    EXPECT_LE(st.overload.queue_high_water, 4u);
}

// Cancellation reaches translation too: with the structural index off,
// the legacy '//' chain-expansion DFS polls the token, so even a query
// that would explode at *translation* time respects its deadline.
TEST(Overload, TranslationHonoursCancelToken) {
    Stack stack(gen::paper_dtd());
    query::ServiceOptions opts;
    opts.threads = 0;
    opts.use_struct_index = false;
    opts.plan_cache_entries = 0;  // force real translation every time
    query::QueryService service(stack.db, stack.mapping, stack.schema, opts);

    CancelToken cancelled = CancelToken::make();
    cancelled.request_cancel();
    EXPECT_THROW((void)service.path("//author", cancelled), QueryCancelled);
}

}  // namespace
}  // namespace xr
