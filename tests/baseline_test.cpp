// VLDB'99 inlining baselines: DTD simplification, tabled-set rules per
// mode, schema shapes, loading, and path-join accounting.
#include <gtest/gtest.h>

#include "baseline/inline_loader.hpp"
#include "baseline/inline_schema.hpp"
#include "dtd/parser.hpp"
#include "gen/corpora.hpp"
#include "xml/parser.hpp"

namespace xr::baseline {
namespace {

TEST(Simplify, QuantityWeakening) {
    EXPECT_EQ(weaken(Quantity::kOne, dtd::Occurrence::kOne, false), Quantity::kOne);
    EXPECT_EQ(weaken(Quantity::kOne, dtd::Occurrence::kOptional, false),
              Quantity::kOptional);
    EXPECT_EQ(weaken(Quantity::kOne, dtd::Occurrence::kOneOrMore, false),
              Quantity::kMany);
    EXPECT_EQ(weaken(Quantity::kOne, dtd::Occurrence::kOne, true),
              Quantity::kOptional);
    EXPECT_EQ(weaken(Quantity::kMany, dtd::Occurrence::kOne, false),
              Quantity::kMany);
}

TEST(Simplify, FlattensGroupsAndFoldsMentions) {
    dtd::Dtd d = dtd::parse_dtd(
        "<!ELEMENT a (b, (c | d)*, b?)>"
        "<!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>");
    SimplifiedDtd s = simplify(d);
    const SimplifiedElement* a = s.element("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->quantity_of("b"), Quantity::kMany);  // two mentions fold
    EXPECT_EQ(a->quantity_of("c"), Quantity::kMany);  // under '*'
    EXPECT_EQ(a->quantity_of("d"), Quantity::kMany);
}

TEST(Simplify, PaperDtdFacts) {
    SimplifiedDtd s = simplify(gen::paper_dtd());
    const SimplifiedElement* article = s.element("article");
    EXPECT_EQ(article->quantity_of("title"), Quantity::kOne);
    EXPECT_EQ(article->quantity_of("author"), Quantity::kMany);
    EXPECT_EQ(article->quantity_of("affiliation"), Quantity::kMany);
    EXPECT_EQ(article->quantity_of("contactauthor"), Quantity::kOptional);
    const SimplifiedElement* book = s.element("book");
    EXPECT_EQ(book->quantity_of("booktitle"), Quantity::kOne);
    // choice members weaken to optional; author under '*' is many.
    EXPECT_EQ(book->quantity_of("author"), Quantity::kMany);
    EXPECT_EQ(book->quantity_of("editor"), Quantity::kOptional);
}

TEST(Simplify, RecursionDetected) {
    SimplifiedDtd s = simplify(gen::paper_dtd());
    auto recursive = s.recursive_elements();
    // editor ↔ book / monograph cycle.
    EXPECT_NE(std::find(recursive.begin(), recursive.end(), "editor"),
              recursive.end());
    EXPECT_NE(std::find(recursive.begin(), recursive.end(), "book"),
              recursive.end());
    EXPECT_EQ(std::find(recursive.begin(), recursive.end(), "name"),
              recursive.end());
}

TEST(Inline, BasicCreatesRelationPerElement) {
    InliningResult r = inline_dtd(gen::paper_dtd(), InliningMode::kBasic);
    EXPECT_EQ(r.schema.tables().size(), 12u);
    for (const auto& e : r.simplified.elements)
        EXPECT_TRUE(r.has_table(e.name)) << e.name;
}

TEST(Inline, SharedTabledSetFollowsRules) {
    InliningResult r = inline_dtd(gen::paper_dtd(), InliningMode::kShared);
    // Roots: article.  Shared (in-degree≥2): author, editor, title, name?
    // Set-valued: author (under *), book/monograph (under *).  Recursive:
    // editor, book, monograph.
    EXPECT_TRUE(r.has_table("article"));
    EXPECT_TRUE(r.has_table("author"));
    EXPECT_TRUE(r.has_table("editor"));
    EXPECT_TRUE(r.has_table("book"));
    EXPECT_TRUE(r.has_table("monograph"));
    // Single-parent, single-valued leaves are inlined.
    EXPECT_FALSE(r.has_table("booktitle"));
    EXPECT_FALSE(r.has_table("name"));
    EXPECT_FALSE(r.has_table("firstname"));
}

TEST(Inline, HybridInlinesSharedNonRepeatedElements) {
    InliningResult shared = inline_dtd(gen::paper_dtd(), InliningMode::kShared);
    InliningResult hybrid = inline_dtd(gen::paper_dtd(), InliningMode::kHybrid);
    // title has two parents (article, monograph) but is single-valued:
    // shared gives it a table, hybrid inlines it into both parents.
    EXPECT_TRUE(shared.has_table("title"));
    EXPECT_FALSE(hybrid.has_table("title"));
    EXPECT_LE(hybrid.schema.tables().size(), shared.schema.tables().size());
}

TEST(Inline, InlinedColumnsCarryPaths) {
    InliningResult r = inline_dtd(gen::paper_dtd(), InliningMode::kShared);
    const std::string& author_table = r.table_of.at("author");
    const auto& columns = r.columns_of.at(author_table);
    // author inlines name/firstname and name/lastname.
    EXPECT_TRUE(columns.contains("name/firstname"));
    EXPECT_TRUE(columns.contains("name/lastname"));
    EXPECT_TRUE(columns.contains("@id"));
}

TEST(Inline, ParentLinkColumnsPresent) {
    InliningResult r = inline_dtd(gen::paper_dtd(), InliningMode::kShared);
    const rel::TableSchema* author =
        r.schema.table(r.table_of.at("author"));
    EXPECT_NE(author->column("parent_id"), nullptr);
    EXPECT_NE(author->column("parent_table"), nullptr);
    const rel::TableSchema* article =
        r.schema.table(r.table_of.at("article"));
    EXPECT_EQ(article->column("parent_id"), nullptr);  // root
}

TEST(Inline, PathJoinAccounting) {
    InliningResult shared = inline_dtd(gen::paper_dtd(), InliningMode::kShared);
    // /article/author: author is tabled → 1 join.
    EXPECT_EQ(shared.path_joins({"article", "author"}), 1u);
    // /article/author/name/lastname: name+lastname inlined into author.
    EXPECT_EQ(shared.path_joins({"article", "author", "name", "lastname"}), 1u);
    // /article/title: title tabled under shared → 1 join...
    EXPECT_EQ(shared.path_joins({"article", "title"}), 1u);
    // ...but free under hybrid (inlined).
    InliningResult hybrid = inline_dtd(gen::paper_dtd(), InliningMode::kHybrid);
    EXPECT_EQ(hybrid.path_joins({"article", "title"}), 0u);
}

TEST(InlineLoader, LoadsPaperSample) {
    InliningResult r = inline_dtd(gen::paper_dtd(), InliningMode::kShared);
    rdb::Database db;
    InlineLoader loader(r, db);
    auto doc = xml::parse_document(gen::paper_sample_document());
    loader.load(*doc);

    const rdb::Table& article = db.require(r.table_of.at("article"));
    ASSERT_EQ(article.row_count(), 1u);
    const rdb::Table& author = db.require(r.table_of.at("author"));
    ASSERT_EQ(author.row_count(), 2u);

    // Inlined name values landed in the author relation.
    int first = author.def().column_index(
        r.columns_of.at(author.name()).at("name/firstname"));
    ASSERT_GE(first, 0);
    EXPECT_EQ(author.row(0)[first].as_text(), "John");
    EXPECT_EQ(author.row(1)[first].as_text(), "Dave");

    // parent links point at the article row.
    int parent = author.def().column_index("parent_id");
    EXPECT_EQ(author.row(0)[parent].as_integer(), 1);
    int ptable = author.def().column_index("parent_table");
    EXPECT_EQ(author.row(0)[ptable].as_text(), article.name());
}

TEST(InlineLoader, CorpusLoadAllModes) {
    auto corpus = gen::bibliography_corpus(10, 120, 13);
    for (InliningMode mode :
         {InliningMode::kBasic, InliningMode::kShared, InliningMode::kHybrid}) {
        InliningResult r = inline_dtd(gen::paper_dtd(), mode);
        rdb::Database db;
        InlineLoader loader(r, db);
        for (const auto& doc : corpus) loader.load(*doc);
        EXPECT_EQ(loader.stats().documents, 10u) << to_string(mode);
        EXPECT_GT(db.total_rows(), 0u) << to_string(mode);
    }
}

TEST(Inline, SchemaShapeComparisonHoldsOnPaperDtd) {
    // The qualitative claim of the schema-comparison experiment: basic
    // produces at least as many tables as shared, shared at least as many
    // as hybrid.
    std::size_t basic =
        inline_dtd(gen::paper_dtd(), InliningMode::kBasic).schema.tables().size();
    std::size_t shared =
        inline_dtd(gen::paper_dtd(), InliningMode::kShared).schema.tables().size();
    std::size_t hybrid =
        inline_dtd(gen::paper_dtd(), InliningMode::kHybrid).schema.tables().size();
    EXPECT_GE(basic, shared);
    EXPECT_GE(shared, hybrid);
}

}  // namespace
}  // namespace xr::baseline
