// Reconstruction (the inverse mapping): structure, ordering and value
// round trips out of the relational store.
#include <gtest/gtest.h>

#include "gen/dtd_gen.hpp"
#include "helpers.hpp"
#include "loader/reconstruct.hpp"
#include "validate/validator.hpp"
#include "xml/serializer.hpp"

namespace xr::loader {
namespace {

using test::Stack;

std::string compact(const xml::Document& doc) {
    xml::SerializeOptions options;
    options.indent.clear();
    options.declaration = false;
    options.doctype = false;
    return xml::serialize(doc, options);
}

TEST(Reconstruct, PaperSampleIsByteExact) {
    Stack stack(gen::paper_dtd());
    auto doc = xml::parse_document(gen::paper_sample_document());
    std::int64_t id = stack.loader->load(*doc);

    Reconstructor reconstructor(stack.mapping, stack.schema, stack.db);
    auto rebuilt = reconstructor.reconstruct(id);
    EXPECT_EQ(compact(*rebuilt), compact(*doc));
}

TEST(Reconstruct, PreservesAuthorOrder) {
    // Paper Section 3 (Ordering): John before Dave must survive the trip.
    Stack stack(gen::paper_dtd());
    auto doc = xml::parse_document(gen::paper_sample_document());
    std::int64_t id = stack.loader->load(*doc);
    Reconstructor reconstructor(stack.mapping, stack.schema, stack.db);
    auto rebuilt = reconstructor.reconstruct(id);

    auto authors = rebuilt->root()->child_elements("author");
    ASSERT_EQ(authors.size(), 2u);
    EXPECT_EQ(authors[0]->first_child("name")->first_child("firstname")->text(),
              "John");
    EXPECT_EQ(authors[1]->first_child("name")->first_child("firstname")->text(),
              "Dave");
}

TEST(Reconstruct, IdrefAttributesRestored) {
    Stack stack(gen::paper_dtd());
    auto doc = xml::parse_document(gen::paper_sample_document());
    std::int64_t id = stack.loader->load(*doc);
    Reconstructor reconstructor(stack.mapping, stack.schema, stack.db);
    auto rebuilt = reconstructor.reconstruct(id);
    auto* contact = rebuilt->root()->first_child("contactauthor");
    ASSERT_NE(contact, nullptr);
    EXPECT_EQ(*contact->attribute("authorid"), "a1");
}

TEST(Reconstruct, UnknownDocRejected) {
    Stack stack(gen::paper_dtd());
    Reconstructor reconstructor(stack.mapping, stack.schema, stack.db);
    EXPECT_THROW(reconstructor.reconstruct(42), SchemaError);
}

TEST(Reconstruct, SubtreeReconstruction) {
    Stack stack(gen::paper_dtd());
    auto doc = xml::parse_document(gen::paper_sample_document());
    stack.loader->load(*doc);
    Reconstructor reconstructor(stack.mapping, stack.schema, stack.db);
    // Rebuild just the first author row.
    auto author = reconstructor.reconstruct_element("author", 1);
    EXPECT_EQ(author->name(), "author");
    EXPECT_EQ(*author->attribute("id"), "a1");
    EXPECT_EQ(author->first_child("name")->first_child("lastname")->text(),
              "Smith");
}

TEST(Reconstruct, MixedContentInterleavingExact) {
    // Text segments are stored as ordered rows (xrel_text), so even mixed
    // content round-trips exactly.
    Stack stack(
        "<!ELEMENT p (#PCDATA | em | code)*>"
        "<!ELEMENT em (#PCDATA)><!ELEMENT code (#PCDATA)>");
    xml::ParseOptions popt;
    popt.keep_whitespace_text = true;
    auto doc = xml::parse_document(
        "<p>alpha <em>beta</em> gamma <code>delta</code> omega</p>", popt);
    std::int64_t id = stack.loader->load(*doc);
    ASSERT_NE(stack.db.table("xrel_text"), nullptr);
    EXPECT_EQ(stack.db.require("xrel_text").row_count(), 3u);

    Reconstructor reconstructor(stack.mapping, stack.schema, stack.db);
    auto rebuilt = reconstructor.reconstruct(id);
    EXPECT_EQ(compact(*rebuilt), compact(*doc));
}

TEST(Reconstruct, MixedContentElementFirst) {
    Stack stack(
        "<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)>");
    xml::ParseOptions popt;
    popt.keep_whitespace_text = true;
    auto doc = xml::parse_document("<p><em>lead</em> tail</p>", popt);
    std::int64_t id = stack.loader->load(*doc);
    Reconstructor reconstructor(stack.mapping, stack.schema, stack.db);
    EXPECT_EQ(compact(*reconstructor.reconstruct(id)), compact(*doc));
}

TEST(Reconstruct, NoTextSegmentTableWithoutMixedContent) {
    Stack stack(gen::paper_dtd());
    EXPECT_EQ(stack.db.table("xrel_text"), nullptr);
}

class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTrip, BibliographyCorpusIsByteExact) {
    Stack stack(gen::paper_dtd());
    gen::DocGenParams params;
    params.seed = GetParam();
    params.max_elements = 200;
    dtd::Dtd dtd = gen::paper_dtd();
    auto doc = gen::generate_document(dtd, "article", params);
    std::string original = compact(*doc);
    std::int64_t id = stack.loader->load(*doc);

    Reconstructor reconstructor(stack.mapping, stack.schema, stack.db);
    auto rebuilt = reconstructor.reconstruct(id);
    EXPECT_EQ(compact(*rebuilt), original);

    validate::Validator validator(stack.logical);
    EXPECT_TRUE(validator.validate(*rebuilt).ok());
}

TEST_P(RoundTrip, OrdersCorpusIsByteExact) {
    Stack stack(gen::orders_dtd());
    gen::DocGenParams params;
    params.seed = GetParam() + 1000;
    params.max_elements = 150;
    dtd::Dtd dtd = gen::orders_dtd();
    auto doc = gen::generate_document(dtd, "order", params);
    // Apply defaults before taking the reference serialization — loading
    // materializes them.
    validate::Validator validator(stack.logical);
    validate::ValidateOptions vopt;
    vopt.apply_defaults = true;
    ASSERT_TRUE(validator.validate(*doc, vopt).ok());
    std::string original = compact(*doc);
    std::int64_t id = stack.loader->load(*doc);

    Reconstructor reconstructor(stack.mapping, stack.schema, stack.db);
    EXPECT_EQ(compact(*reconstructor.reconstruct(id)), original);
}

TEST_P(RoundTrip, GeneratedDtdsStructurallyExact) {
    gen::DtdGenParams dtd_params;
    dtd_params.seed = GetParam();
    dtd_params.element_count = 20;
    // Mixed content interleaving is a documented approximation; the
    // generator does not emit mixed models, so exactness is expected.
    dtd::Dtd dtd = gen::generate_dtd(dtd_params);
    Stack stack(dtd);

    gen::DocGenParams params;
    params.seed = GetParam() * 7 + 3;
    params.max_elements = 150;
    auto doc = gen::generate_document(stack.logical, "e0", params);
    validate::Validator validator(stack.logical);
    validate::ValidateOptions vopt;
    vopt.apply_defaults = true;
    ASSERT_TRUE(validator.validate(*doc, vopt).ok());
    std::string original = compact(*doc);
    std::int64_t id = stack.loader->load(*doc);

    Reconstructor reconstructor(stack.mapping, stack.schema, stack.db);
    EXPECT_EQ(compact(*reconstructor.reconstruct(id)), original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Range<std::uint64_t>(1, 20));

TEST(Reconstruct, MultipleDocumentsIndependent) {
    Stack stack(gen::paper_dtd());
    auto corpus = gen::bibliography_corpus(5, 120, 55);
    std::vector<std::string> originals;
    std::vector<std::int64_t> ids;
    for (auto& doc : corpus) {
        originals.push_back(compact(*doc));
        ids.push_back(stack.loader->load(*doc));
    }
    Reconstructor reconstructor(stack.mapping, stack.schema, stack.db);
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(compact(*reconstructor.reconstruct(ids[i])), originals[i])
            << "doc " << i;
}

}  // namespace
}  // namespace xr::loader
