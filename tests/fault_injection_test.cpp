// Deterministic fault-injection coverage (DESIGN.md §7): every named
// fault point is armed in turn and the database must come out either
// untouched (kFailFast, or any corpus-scoped point) or row-for-row
// equivalent to loading only the documents that survived (kSkip /
// kQuarantine).  The hook itself — countdown, one-shot disarm, env
// parsing — is covered first.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "helpers.hpp"
#include "loader/bulk_loader.hpp"
#include "rdb/snapshot.hpp"
#include "rel/translate.hpp"
#include "sql/executor.hpp"
#include "xquery/query.hpp"
#include "xquery/sql_translate.hpp"

namespace xr {
namespace {

/// Arms on construction, disarms on destruction so a failing assertion
/// can't leak an armed fault into the next test.
struct ArmedFault {
    explicit ArmedFault(std::string_view point, long countdown = 1) {
        fault::arm(point, countdown);
    }
    ~ArmedFault() { fault::disarm(); }
};

/// A small fixed-shape article with one same-document IDREF, so both the
/// loader.shred and loader.resolve points are exercised.
std::string article(int n) {
    std::string i = std::to_string(n);
    return "<article><title>t" + i + "</title><author id=\"a" + i +
           "\"><name><lastname>L" + i +
           "</lastname></name></author><contactauthor authorid=\"a" + i +
           "\"/></article>";
}

std::vector<std::string> corpus(int n) {
    std::vector<std::string> out;
    for (int i = 0; i < n; ++i) out.push_back(article(i));
    return out;
}

// -- the hook itself ---------------------------------------------------------

TEST(FaultInjection, FiresOnceThenDisarms) {
    ArmedFault armed("xml.parse");
    EXPECT_TRUE(fault::armed());
    EXPECT_THROW((void)xml::parse_document("<a/>"), fault::InjectedFault);
    EXPECT_FALSE(fault::armed());
    EXPECT_TRUE(fault::fired());
    EXPECT_EQ(fault::hits(), 1);
    // Disarmed now: the same call succeeds.
    EXPECT_NO_THROW((void)xml::parse_document("<a/>"));
}

TEST(FaultInjection, CountdownTargetsTheNthHit) {
    ArmedFault armed("xml.parse", 3);
    EXPECT_NO_THROW((void)xml::parse_document("<a/>"));
    EXPECT_NO_THROW((void)xml::parse_document("<a/>"));
    EXPECT_THROW((void)xml::parse_document("<a/>"), fault::InjectedFault);
    EXPECT_EQ(fault::hits(), 3);
}

TEST(FaultInjection, UnarmedPointsAreFree) {
    ArmedFault armed("xml.parse");
    fault::disarm();
    EXPECT_NO_THROW((void)xml::parse_document("<a/>"));
    EXPECT_FALSE(fault::fired());
}

TEST(FaultInjection, UnknownPointIsRejectedWithoutArming) {
    // A typo'd XMLREL_FAULT_INJECT used to arm a point nothing ever hits
    // — the test run silently measured nothing.  arm() now refuses.
    EXPECT_FALSE(fault::arm("some.other.point"));
    EXPECT_FALSE(fault::armed());
    EXPECT_NO_THROW((void)xml::parse_document("<a/>"));
    EXPECT_FALSE(fault::fired());
    // And rejecting clears any stale arming instead of inheriting it.
    EXPECT_TRUE(fault::arm("xml.parse"));
    EXPECT_TRUE(fault::armed());
    EXPECT_FALSE(fault::arm("another.typo"));
    EXPECT_FALSE(fault::armed());
}

TEST(FaultInjection, KnownPointsCatalogueIsSortedAndArmable) {
    const auto& points = fault::known_points();
    ASSERT_FALSE(points.empty());
    EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
    for (std::string_view p : points) {
        EXPECT_TRUE(fault::arm(p)) << p;
        EXPECT_TRUE(fault::armed()) << p;
    }
    fault::disarm();
}

TEST(FaultInjection, InjectedFaultIsClassifiedRetryable) {
    test::Stack stack(gen::paper_dtd());
    loader::LoadOptions options;
    options.on_error = loader::FailurePolicy::kSkip;
    ArmedFault armed("loader.shred");
    loader::LoadReport report =
        stack.loader->load_texts({article(0)}, options);
    ASSERT_EQ(report.failed, 1u);
    EXPECT_EQ(report.retryable, 1u);
    EXPECT_EQ(report.outcomes[0].error_type, "fault");
    EXPECT_TRUE(report.outcomes[0].retryable);
}

// -- serial loader matrix ----------------------------------------------------

/// loader.shred hits per article(): fires once per load_element call, and
/// how many of the article's elements get their own call depends on the
/// mapping (distilled children do not).  Probe once instead of guessing.
long shred_hits_per_doc() {
    static long hits = [] {
        test::Stack probe(gen::paper_dtd());
        fault::arm("loader.shred", 1 << 30);  // count without firing
        probe.loader->load_texts({article(0)}, {});
        long h = fault::hits();
        fault::disarm();
        return h;
    }();
    return hits;
}

struct SerialPoint {
    const char* point;
    long countdown;
    std::size_t failing_index;
};

/// Countdowns landing inside document 1: the other documents survive.
/// The shred countdown deliberately lands mid-document, after some of
/// document 1's rows are already written.
std::vector<SerialPoint> serial_doc_points() {
    long per_doc = shred_hits_per_doc();
    return {
        {"xml.parse", 2, 1},  // parse of document 1
        {"loader.shred", per_doc + std::max<long>(per_doc / 2, 1), 1},
    };
}

TEST(FaultInjection, SerialFailFastLeavesDatabaseUntouched) {
    for (const auto& p : serial_doc_points()) {
        test::Stack stack(gen::paper_dtd());
        auto before = test::db_fingerprint(stack.db);
        ArmedFault armed(p.point, p.countdown);
        EXPECT_THROW(stack.loader->load_texts(corpus(5), {}),
                     fault::InjectedFault)
            << p.point;
        EXPECT_TRUE(fault::fired()) << p.point;
        EXPECT_EQ(test::db_fingerprint(stack.db), before) << p.point;
        EXPECT_EQ(stack.loader->stats().documents, 0u);
    }
}

TEST(FaultInjection, SerialSkipMatchesGoodOnlyLoadByteForByte) {
    for (const auto& p : serial_doc_points()) {
        test::Stack stack(gen::paper_dtd());
        loader::LoadOptions options;
        options.on_error = loader::FailurePolicy::kSkip;
        ArmedFault armed(p.point, p.countdown);
        loader::LoadReport report =
            stack.loader->load_texts(corpus(5), options);
        fault::disarm();
        EXPECT_EQ(report.loaded, 4u) << p.point;
        ASSERT_EQ(report.failed, 1u) << p.point;
        EXPECT_EQ(report.outcomes[p.failing_index].error_type, "fault");

        std::vector<std::string> good = corpus(5);
        good.erase(good.begin() + static_cast<std::ptrdiff_t>(p.failing_index));
        test::Stack reference(gen::paper_dtd());
        reference.loader->load_texts(good, {});
        EXPECT_EQ(test::db_fingerprint(stack.db),
                  test::db_fingerprint(reference.db))
            << p.point;
    }
}

TEST(FaultInjection, SerialQuarantineKeepsFaultedDocumentText) {
    test::Stack stack(gen::paper_dtd());
    loader::LoadOptions options;
    options.on_error = loader::FailurePolicy::kQuarantine;
    ArmedFault armed("loader.shred", shred_hits_per_doc() + 1);
    loader::LoadReport report = stack.loader->load_texts(corpus(3), options);
    fault::disarm();
    EXPECT_EQ(report.quarantined, 1u);
    const rdb::Table* q = stack.db.table(loader::kQuarantineTable);
    ASSERT_NE(q, nullptr);
    ASSERT_EQ(q->row_count(), 1u);
    EXPECT_EQ(q->row(0)[q->def().column_index("raw_xml")].to_string(),
              article(1));
    EXPECT_EQ(q->row(0)[q->def().column_index("error_type")].to_string(),
              "fault");
}

TEST(FaultInjection, QuarantineRowsSurviveRestart) {
    // Quarantine writes go through their own WAL-flushed unit, so a
    // reopened data directory still knows which document was rejected and
    // why — the round trip covers both the WAL replay path and (after a
    // checkpoint) the snapshot path.
    test::TempDir dir;
    {
        test::DurableStack stack(gen::paper_dtd(), dir.path());
        loader::LoadOptions options;
        options.on_error = loader::FailurePolicy::kQuarantine;
        ArmedFault armed("loader.shred", shred_hits_per_doc() + 1);
        loader::LoadReport report =
            stack.loader->load_texts(corpus(3), options);
        fault::disarm();
        ASSERT_EQ(report.quarantined, 1u);
    }
    for (bool checkpoint : {false, true}) {
        test::DurableStack reopened(gen::paper_dtd(), dir.path());
        const rdb::Table* q = reopened.db.table(loader::kQuarantineTable);
        ASSERT_NE(q, nullptr) << "checkpoint=" << checkpoint;
        ASSERT_EQ(q->row_count(), 1u) << "checkpoint=" << checkpoint;
        EXPECT_EQ(q->row(0)[q->def().column_index("raw_xml")].to_string(),
                  article(1));
        EXPECT_EQ(q->row(0)[q->def().column_index("error_type")].to_string(),
                  "fault");
        // Second pass reopens from a snapshot instead of pure WAL replay.
        if (!checkpoint) reopened.db.checkpoint();
    }
}

TEST(FaultInjection, SerialResolveFaultRollsBackWholeCorpus) {
    // Reference resolution is corpus-scoped: a fault there aborts the
    // load under every policy, undoing the in-place row updates the
    // resolver already made.
    for (auto policy : {loader::FailurePolicy::kFailFast,
                        loader::FailurePolicy::kSkip,
                        loader::FailurePolicy::kQuarantine}) {
        test::Stack stack(gen::paper_dtd());
        auto before = test::db_fingerprint(stack.db);
        loader::LoadOptions options;
        options.on_error = policy;
        ArmedFault armed("loader.resolve", 2);  // after one row resolved
        EXPECT_THROW(stack.loader->load_texts(corpus(4), options),
                     fault::InjectedFault);
        fault::disarm();
        EXPECT_EQ(test::db_fingerprint(stack.db), before);
    }
}

TEST(FaultInjection, SingleLoadResolveFaultUndoesRowUpdates) {
    // Same through Loader::load, where resolution runs per document.
    test::Stack stack(gen::paper_dtd());
    auto before = test::db_fingerprint(stack.db);
    auto doc = xml::parse_document(article(0));
    ArmedFault armed("loader.resolve");
    EXPECT_THROW(stack.loader->load(*doc), fault::InjectedFault);
    EXPECT_EQ(test::db_fingerprint(stack.db), before);
}

// -- bulk loader matrix ------------------------------------------------------

void expect_bulk_equivalent(const rdb::Database& a, const rdb::Database& b) {
    ASSERT_EQ(a.table_names(), b.table_names());
    for (const auto& name : a.table_names())
        EXPECT_EQ(a.require(name).row_count(), b.require(name).row_count())
            << "table " << name;
    auto registry = [](const rdb::Database& db) {
        std::vector<std::string> out;
        const rdb::Table* reg = db.table(rel::kIdRegistryTable);
        if (reg == nullptr) return out;
        int doc = reg->def().column_index("doc");
        int idval = reg->def().column_index("idval");
        for (rdb::RowId id = 0; id < reg->row_count(); ++id) {
            const auto& row = reg->row(id);
            out.push_back(row[doc].to_string() + "|" + row[idval].to_string());
        }
        std::sort(out.begin(), out.end());
        return out;
    };
    EXPECT_EQ(registry(a), registry(b));
}

TEST(FaultInjection, BulkFailFastLeavesDatabaseUntouched) {
    for (const char* point :
         {"xml.parse", "loader.shred", "bulk.merge", "rdb.index_rebuild",
          "loader.resolve"}) {
        for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
            test::Stack stack(gen::paper_dtd());
            loader::BulkLoader bl(stack.logical, stack.mapping, stack.schema,
                                  stack.db);
            auto before = test::db_fingerprint(stack.db);
            loader::BulkLoadOptions options;
            options.jobs = jobs;
            ArmedFault armed(point, 2);
            EXPECT_THROW(bl.load_texts(corpus(6), options),
                         fault::InjectedFault)
                << point << " jobs " << jobs;
            fault::disarm();
            EXPECT_EQ(test::db_fingerprint(stack.db), before)
                << point << " jobs " << jobs;
            EXPECT_EQ(bl.stats().documents, 0u);
        }
    }
}

TEST(FaultInjection, BulkSkipMatchesLoadingOnlySurvivors) {
    // With several workers the fault lands in a nondeterministic document;
    // the report says which one, and loading the others into a fresh
    // database must be equivalent.
    for (const char* point : {"xml.parse", "loader.shred"}) {
        for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
            test::Stack stack(gen::paper_dtd());
            loader::BulkLoader bl(stack.logical, stack.mapping, stack.schema,
                                  stack.db);
            loader::BulkLoadOptions options;
            options.jobs = jobs;
            options.on_error = loader::FailurePolicy::kSkip;
            ArmedFault armed(point, 2);
            loader::LoadReport report = bl.load_texts(corpus(6), options);
            fault::disarm();
            ASSERT_EQ(report.failed, 1u) << point << " jobs " << jobs;
            EXPECT_EQ(report.loaded, 5u);
            // A single worker's chunk tail is always returnable; with
            // several workers a tail below another live reservation
            // legitimately becomes a gap (reported, not asserted zero).
            if (jobs == 1) EXPECT_EQ(report.leaked_pks, 0u);

            std::vector<std::string> good;
            std::vector<std::string> all = corpus(6);
            for (const auto& outcome : report.outcomes)
                if (outcome.status ==
                    loader::DocumentOutcome::Status::kLoaded)
                    good.push_back(all[outcome.index]);
            test::Stack reference(gen::paper_dtd());
            loader::BulkLoader br(reference.logical, reference.mapping,
                                  reference.schema, reference.db);
            loader::BulkLoadOptions ropt;
            ropt.jobs = jobs;
            loader::LoadReport ref_report = br.load_texts(good, ropt);
            EXPECT_TRUE(ref_report.ok());
            expect_bulk_equivalent(stack.db, reference.db);
        }
    }
}

TEST(FaultInjection, BulkCorpusScopedFaultsAbortUnderEveryPolicy) {
    for (const char* point :
         {"bulk.merge", "rdb.index_rebuild", "loader.resolve"}) {
        for (auto policy : {loader::FailurePolicy::kSkip,
                            loader::FailurePolicy::kQuarantine}) {
            test::Stack stack(gen::paper_dtd());
            loader::BulkLoader bl(stack.logical, stack.mapping, stack.schema,
                                  stack.db);
            auto before = test::db_fingerprint(stack.db);
            loader::BulkLoadOptions options;
            options.jobs = 4;
            options.on_error = policy;
            ArmedFault armed(point, 2);
            EXPECT_THROW(bl.load_texts(corpus(6), options),
                         fault::InjectedFault)
                << point;
            fault::disarm();
            EXPECT_EQ(test::db_fingerprint(stack.db), before) << point;
        }
    }
}

TEST(FaultInjection, BulkQuarantineRecordsFaultedDocument) {
    test::Stack stack(gen::paper_dtd());
    loader::BulkLoader bl(stack.logical, stack.mapping, stack.schema,
                          stack.db);
    loader::BulkLoadOptions options;
    options.jobs = 4;
    options.on_error = loader::FailurePolicy::kQuarantine;
    ArmedFault armed("loader.shred", 2);
    loader::LoadReport report = bl.load_texts(corpus(6), options);
    fault::disarm();
    ASSERT_EQ(report.quarantined, 1u);
    const rdb::Table* q = stack.db.table(loader::kQuarantineTable);
    ASSERT_NE(q, nullptr);
    ASSERT_EQ(q->row_count(), 1u);
    std::size_t failed_index = report.outcomes.size();
    for (const auto& outcome : report.outcomes)
        if (outcome.status == loader::DocumentOutcome::Status::kQuarantined)
            failed_index = outcome.index;
    ASSERT_LT(failed_index, 6u);
    EXPECT_EQ(q->row(0)[q->def().column_index("raw_xml")].to_string(),
              article(static_cast<int>(failed_index)));
}

// Quarantined / rolled-back documents must not corrupt the structural
// interval labels (DESIGN.md §10): the survivors' (pre, post) intervals
// stay unique, well formed, and properly nested — a failed document only
// leaves a harmless gap in the label space — and interval descendant
// plans keep counting exactly the surviving rows.
TEST(FaultInjection, FaultedDocumentsPreserveIntervalLabelOrdering) {
    for (auto policy : {loader::FailurePolicy::kSkip,
                        loader::FailurePolicy::kQuarantine}) {
        for (int jobs : {1, 4}) {
            test::Stack stack(gen::paper_dtd());
            loader::BulkLoader bl(stack.logical, stack.mapping, stack.schema,
                                  stack.db);
            loader::BulkLoadOptions options;
            options.jobs = jobs;
            options.on_error = policy;
            ArmedFault armed("loader.shred", 2);
            loader::LoadReport report = bl.load_texts(corpus(6), options);
            fault::disarm();
            ASSERT_EQ(report.loaded, 5u) << "jobs " << jobs;

            // Collect every entity row's labels and re-check the Dietz
            // invariants across the gap the faulted document left behind.
            struct Interval {
                std::int64_t pre, post, level;
            };
            std::vector<Interval> ivs;
            for (const auto& t : stack.schema.tables()) {
                if (t.kind != rel::TableKind::kEntity) continue;
                const rdb::Table& table = stack.db.require(t.name);
                int pre = table.def().column_index("pre");
                int post = table.def().column_index("post");
                int level = table.def().column_index("level");
                if (pre < 0) continue;
                for (rdb::RowId id = 0; id < table.row_count(); ++id) {
                    const auto& row = table.row(id);
                    ivs.push_back(
                        {row[static_cast<std::size_t>(pre)].as_integer(),
                         row[static_cast<std::size_t>(post)].as_integer(),
                         row[static_cast<std::size_t>(level)].as_integer()});
                }
            }
            ASSERT_FALSE(ivs.empty());
            std::sort(ivs.begin(), ivs.end(),
                      [](const Interval& a, const Interval& b) {
                          return a.pre < b.pre;
                      });
            std::set<std::int64_t> labels;
            std::vector<Interval> open;
            for (const auto& iv : ivs) {
                EXPECT_LT(iv.pre, iv.post);
                EXPECT_TRUE(labels.insert(iv.pre).second);
                EXPECT_TRUE(labels.insert(iv.post).second);
                while (!open.empty() && open.back().post < iv.pre)
                    open.pop_back();
                if (!open.empty()) EXPECT_LT(iv.post, open.back().post);
                EXPECT_EQ(iv.level, static_cast<std::int64_t>(open.size()));
                open.push_back(iv);
            }

            // The interval descendant plan sees only survivors, and a
            // follow-up load continues cleanly past the gap.
            xquery::SqlTranslator tr(stack.mapping, stack.schema);
            xquery::Translation t =
                tr.translate(xquery::parse_query("count(//author)"));
            EXPECT_EQ(sql::execute(stack.db, t.sql).scalar().as_integer(), 5);
            ASSERT_NO_THROW(bl.load_texts({article(7)}, {}));
            EXPECT_EQ(sql::execute(stack.db, t.sql).scalar().as_integer(), 6);
        }
    }
}

}  // namespace
}  // namespace xr
