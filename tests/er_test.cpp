// ER model and DOT export unit tests.
#include <gtest/gtest.h>

#include "er/dot.hpp"
#include "er/model.hpp"

namespace xr::er {
namespace {

Model tiny_model() {
    Model m;
    Entity a;
    a.name = "a";
    a.attributes.push_back({"x", dtd::AttrType::kCData, true,
                            AttributeOrigin::kDeclared, {}});
    m.add_entity(std::move(a));
    Entity b;
    b.name = "b";
    b.has_text = true;
    m.add_entity(std::move(b));

    Relationship r;
    r.name = "Nb";
    r.kind = RelationshipKind::kNested;
    r.parent = "a";
    r.members.push_back({"b", false, dtd::Occurrence::kZeroOrMore, 0});
    m.add_relationship(std::move(r));
    return m;
}

TEST(ErModel, Lookups) {
    Model m = tiny_model();
    ASSERT_NE(m.entity("a"), nullptr);
    EXPECT_EQ(m.entity("zz"), nullptr);
    ASSERT_NE(m.relationship("Nb"), nullptr);
    EXPECT_EQ(m.relationship("zz"), nullptr);
    EXPECT_NE(m.entity("a")->attribute("x"), nullptr);
    EXPECT_EQ(m.entity("a")->attribute("y"), nullptr);
    EXPECT_NE(m.relationship("Nb")->member("b"), nullptr);
    EXPECT_EQ(m.relationship("Nb")->member("a"), nullptr);
}

TEST(ErModel, DuplicatesRejected) {
    Model m = tiny_model();
    Entity dup;
    dup.name = "a";
    EXPECT_THROW(m.add_entity(std::move(dup)), SchemaError);
    Relationship rdup;
    rdup.name = "Nb";
    EXPECT_THROW(m.add_relationship(std::move(rdup)), SchemaError);
}

TEST(ErModel, RelationshipsOfCoversBothEnds) {
    Model m = tiny_model();
    EXPECT_EQ(m.relationships_of("a").size(), 1u);
    EXPECT_EQ(m.relationships_of("b").size(), 1u);
    EXPECT_TRUE(m.relationships_of("zz").empty());
}

TEST(ErModel, AttributeCount) {
    EXPECT_EQ(tiny_model().attribute_count(), 1u);
}

TEST(ErModel, ToStringMentionsEverything) {
    std::string s = tiny_model().to_string();
    EXPECT_NE(s.find("entity a"), std::string::npos);
    EXPECT_NE(s.find("attr x required"), std::string::npos);
    EXPECT_NE(s.find("[text]"), std::string::npos);
    EXPECT_NE(s.find("NESTED Nb: a -> b*"), std::string::npos);
}

TEST(ErDot, WellFormedGraph) {
    std::string dot = to_dot(tiny_model(), {.title = "tiny"});
    EXPECT_EQ(dot.find("digraph"), std::string::npos);  // undirected
    EXPECT_NE(dot.find("graph er {"), std::string::npos);
    EXPECT_NE(dot.find("label=\"tiny\""), std::string::npos);
    EXPECT_NE(dot.find("\"a\" [shape=box]"), std::string::npos);
    EXPECT_NE(dot.find("\"Nb\" [shape=diamond]"), std::string::npos);
    EXPECT_NE(dot.find("\"a\" -- \"Nb\""), std::string::npos);
    // Attribute ellipse attached to its entity.
    EXPECT_NE(dot.find("\"a.x\" [shape=ellipse"), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');
}

TEST(ErDot, AttributesSuppressible) {
    DotOptions options;
    options.attributes = false;
    std::string dot = to_dot(tiny_model(), options);
    EXPECT_EQ(dot.find("ellipse"), std::string::npos);
}

TEST(ErDot, QuotesAndEscapes) {
    Model m;
    Entity e;
    e.name = "we\"ird";
    m.add_entity(std::move(e));
    std::string dot = to_dot(m);
    EXPECT_NE(dot.find("\"we\\\"ird\""), std::string::npos);
}

TEST(ErDot, OccurrenceLabels) {
    Model m = tiny_model();
    std::string dot = to_dot(m);
    // b is a '*' member: the arc carries the indicator.
    EXPECT_NE(dot.find("label=\"*\""), std::string::npos);
}

}  // namespace
}  // namespace xr::er
