// Agreement property between the two independent content-model engines:
// the validator's Glushkov automaton (set simulation, no events) and the
// loader's backtracking matcher (events, group segmentation).  Both decide
// the same regular language, so they must accept exactly the same child
// sequences — including the hoisted-group view of the model.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "gen/dtd_gen.hpp"
#include "helpers.hpp"
#include "loader/plan.hpp"
#include "validate/automaton.hpp"

namespace xr {
namespace {

class MatcherAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherAgreement, AutomatonAndMatcherAcceptSameSequences) {
    gen::DtdGenParams params;
    params.seed = GetParam();
    params.element_count = 15;
    dtd::Dtd dtd = gen::generate_dtd(params);
    mapping::MappingResult m = mapping::map_dtd(dtd);

    SplitMix64 rng(GetParam() * 13 + 1);

    for (const auto& decl : dtd.elements()) {
        if (decl.content.category != dtd::ContentCategory::kChildren) continue;
        validate::ContentAutomaton automaton(decl.content.particle);
        const dtd::ElementDecl* grouped = m.grouped.element(decl.name);
        ASSERT_NE(grouped, nullptr);
        loader::PlanNode plan =
            loader::build_plan(m.grouped, m.metadata, *grouped);

        // Candidate alphabet: names the model mentions (plus a stranger).
        std::vector<std::string> alphabet =
            decl.content.referenced_names();
        std::sort(alphabet.begin(), alphabet.end());
        alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                       alphabet.end());
        alphabet.push_back("zz_stranger");

        // Random sequences over the alphabet: some valid, most invalid —
        // both engines must agree on every one.
        for (int trial = 0; trial < 60; ++trial) {
            std::vector<std::string> sequence;
            std::size_t length = rng.below(8);
            for (std::size_t i = 0; i < length; ++i)
                sequence.push_back(alphabet[rng.below(alphabet.size())]);

            bool automaton_accepts = automaton.matches(sequence);
            std::vector<std::string_view> views(sequence.begin(),
                                                sequence.end());
            std::vector<loader::MatchEvent> events;
            bool matcher_accepts =
                loader::match_children(plan, views, events);

            ASSERT_EQ(matcher_accepts, automaton_accepts)
                << decl.name << " model " << decl.content.to_string()
                << " sequence [" << xr::join(sequence, " ") << "]";

            if (matcher_accepts) {
                // Sanity on the event stream: one kMatchChild per input
                // child, positions strictly increasing, balanced groups.
                std::size_t matched = 0;
                int depth = 0;
                std::size_t last_pos = 0;
                for (const auto& e : events) {
                    switch (e.type) {
                        case loader::MatchEvent::Type::kMatchChild:
                            EXPECT_GE(e.pos, last_pos);
                            last_pos = e.pos + 1;
                            ++matched;
                            break;
                        case loader::MatchEvent::Type::kEnterGroup:
                            ++depth;
                            break;
                        case loader::MatchEvent::Type::kExitGroup:
                            --depth;
                            EXPECT_GE(depth, 0);
                            break;
                    }
                }
                EXPECT_EQ(matched, sequence.size());
                EXPECT_EQ(depth, 0);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherAgreement,
                         ::testing::Range<std::uint64_t>(1, 20));

TEST(MatcherAgreement, PaperModelsExhaustiveShortSequences) {
    // Exhaustively enumerate all sequences up to length 4 over each paper
    // model's alphabet and compare engines.
    dtd::Dtd dtd = gen::paper_dtd();
    mapping::MappingResult m = mapping::map_dtd(dtd);

    for (const char* name : {"book", "article", "monograph", "editor", "name"}) {
        const dtd::ElementDecl* decl = dtd.element(name);
        validate::ContentAutomaton automaton(decl->content.particle);
        loader::PlanNode plan =
            loader::build_plan(m.grouped, m.metadata, *m.grouped.element(name));
        std::vector<std::string> alphabet = decl->content.referenced_names();
        std::sort(alphabet.begin(), alphabet.end());
        alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                       alphabet.end());

        std::size_t checked = 0;
        std::function<void(std::vector<std::string>&)> enumerate =
            [&](std::vector<std::string>& seq) {
                std::vector<std::string_view> views(seq.begin(), seq.end());
                std::vector<loader::MatchEvent> events;
                ASSERT_EQ(loader::match_children(plan, views, events),
                          automaton.matches(seq))
                    << name << " [" << xr::join(seq, " ") << "]";
                ++checked;
                if (seq.size() >= 4) return;
                for (const auto& a : alphabet) {
                    seq.push_back(a);
                    enumerate(seq);
                    seq.pop_back();
                }
            };
        std::vector<std::string> seq;
        enumerate(seq);
        EXPECT_GT(checked, 10u) << name;
    }
}

}  // namespace
}  // namespace xr
